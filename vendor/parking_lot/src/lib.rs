//! Offline stand-in for `parking_lot`: a [`Mutex`] with the non-poisoning
//! `lock()` signature, backed by `std::sync::Mutex`. A poisoned std lock is
//! recovered transparently (parking_lot has no poisoning at all).

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
