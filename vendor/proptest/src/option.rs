//! Option strategies (`proptest::option::of`).

use rand::rngs::StdRng;

use crate::strategy::{weighted_bool, Strategy};

/// Yields `Some(inner sample)` three times out of four, `None` otherwise
/// (matching upstream's Some-biased default).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        if weighted_bool(rng, 0.75) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;
    use rand::SeedableRng;

    #[test]
    fn of_yields_both_variants() {
        let strat = of(Just(1u8));
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<_> = (0..200).map(|_| strat.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_some));
        assert!(samples.iter().any(Option::is_none));
    }
}
