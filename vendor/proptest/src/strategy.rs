//! Value-generation strategies: the sampling core of the mini-proptest.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;

use crate::test_runner::{below, unit};

/// How many resamples `prop_filter` attempts before giving up.
const FILTER_MAX_TRIES: usize = 1_000;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred`, resampling until one passes.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a branch case. Recursion nests at most
    /// `depth` levels; `_desired_size` and `_expected_branch` are accepted
    /// for upstream signature compatibility but unused by this sampler.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(level).boxed();
            level = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        level
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng| this.sample(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..FILTER_MAX_TRIES {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_MAX_TRIES} consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among several strategies of the same value type.
/// Built by the `prop_oneof!` macro.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires >= 1 strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = below(rng, self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Strategy for the full domain of a primitive type; see [`any`].
#[derive(Debug)]
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The full-domain strategy for a primitive type.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t as Arbitrary>::arbitrary(rng);
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy: `"[A-Za-z][A-Za-z0-9_]{0,6}"` etc.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .expect("unterminated [class] in regex strategy");
        match c {
            ']' => break,
            '-' if prev.is_some() && chars.peek().is_some_and(|n| *n != ']') => {
                let lo = prev.take().expect("range start");
                let hi = chars.next().expect("range end");
                assert!(lo <= hi, "descending range in regex class");
                for ch in lo..=hi {
                    set.push(ch);
                }
            }
            _ => {
                if let Some(p) = prev.replace(c) {
                    set.push(p);
                }
            }
        }
    }
    if let Some(p) = prev {
        set.push(p);
    }
    assert!(!set.is_empty(), "empty [class] in regex strategy");
    set
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} quantifier"),
                    hi.trim().parse().expect("bad {m,n} quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

/// Parses the regex subset used by the workspace's property tests:
/// literal characters and `[..]` classes (with ranges), each optionally
/// followed by `{n}`, `{m,n}`, `*`, `+`, or `?`.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars),
            '\\' => vec![chars.next().expect("dangling escape in regex strategy")],
            _ => vec![c],
        };
        let (min, max) = parse_quantifier(&mut chars);
        assert!(min <= max, "descending quantifier in regex strategy");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        // Parsing per sample keeps the impl stateless; patterns are tiny.
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min + below(rng, (atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                let idx = below(rng, atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

/// `true` with probability `p`; used by `crate::bool::weighted`.
pub(crate) fn weighted_bool(rng: &mut StdRng, p: f64) -> bool {
    unit(rng) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn just_yields_value() {
        assert_eq!(Just(7u32).sample(&mut rng()), 7);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u64..17).sample(&mut r);
            assert!((3..17).contains(&v));
            let w = (-50i64..50).sample(&mut r);
            assert!((-50..50).contains(&w));
            let x = (1u8..=4).sample(&mut r);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let strat = (0u32..100)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |x| *x != 0);
        let mut r = rng();
        for _ in 0..200 {
            let v = strat.sample(&mut r);
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let strat = "[A-Za-z][A-Za-z0-9_]{0,6}";
        let mut r = rng();
        for _ in 0..200 {
            let s = Strategy::sample(&strat, &mut r);
            assert!(!s.is_empty() && s.len() <= 7, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn union_covers_all_options() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..100 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategy_bounds_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut r)) <= 4);
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut r = rng();
        let (a, b, c) = ((0u8..4), (10u8..14), Just(99u8)).sample(&mut r);
        assert!((0..4).contains(&a));
        assert!((10..14).contains(&b));
        assert_eq!(c, 99);
    }
}
