//! Configuration, error type, and per-test runner state.

use rand::{RngCore, SeedableRng};

/// Controls how many sampled cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this sampling stand-in keeps the same
        // order of magnitude but trims it so crypto-heavy properties stay
        // fast in CI. Tests that need more set it explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case. Produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Upstream-compatible alias for [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-property driver: owns the deterministic RNG strategies sample from.
pub struct TestRunner {
    rng: rand::rngs::StdRng,
}

impl TestRunner {
    /// Seeds the runner from the property's name so every run of a given
    /// test samples the same sequence of inputs (reproducible failures).
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The RNG used to sample strategy values.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.rng
    }
}

/// Uniform `u64` in `[0, bound)`. Bound must be nonzero.
pub(crate) fn below(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Modulo bias is irrelevant at test-sampling fidelity.
    rng.next_u64() % bound
}

/// Uniform `f64` in `[0, 1)`.
pub(crate) fn unit(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new(&cfg, "alpha");
        let mut b = TestRunner::new(&cfg, "alpha");
        let mut c = TestRunner::new(&cfg, "beta");
        let xa: Vec<u64> = (0..4).map(|_| a.rng().next_u64()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.rng().next_u64()).collect();
        let xc: Vec<u64> = (0..4).map(|_| c.rng().next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_stays_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = unit(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
