//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic *sampling* property tester: strategies generate random
//! values from a seed derived from the test name, and the `proptest!` macro
//! runs each property for `ProptestConfig::cases` samples. There is no
//! shrinking — a failing case reports the sampled inputs via the assertion
//! message instead.

pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs a property across sampled inputs; see the crate docs.
///
/// Accepts the same surface syntax as upstream `proptest!`: an optional
/// `#![proptest_config(..)]` attribute followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($cfg:expr); ) => {};
    ( config = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), runner.rng());
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?} ({})",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current property case unless both sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}
