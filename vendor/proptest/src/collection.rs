//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;

use crate::strategy::Strategy;
use crate::test_runner::below;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + below(rng, span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_and_element_strategy() {
        let strat = vec(Just(5u8), 2..6);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 5));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let strat = vec(Just(0u8), 3usize);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(strat.sample(&mut rng).len(), 3);
    }
}
