//! Boolean strategies (`proptest::bool::weighted`).

use rand::rngs::StdRng;

use crate::strategy::{weighted_bool, Strategy};

/// `true` with probability `p` (clamped to `[0, 1]`).
pub fn weighted(p: f64) -> Weighted {
    Weighted {
        p: p.clamp(0.0, 1.0),
    }
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        weighted_bool(rng, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_tracks_probability() {
        let strat = weighted(0.9);
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..1000).filter(|_| strat.sample(&mut rng)).count();
        assert!((850..=950).contains(&trues), "got {trues} trues");
    }

    #[test]
    fn degenerate_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| weighted(1.0).sample(&mut rng)));
        assert!((0..100).all(|_| !weighted(0.0).sample(&mut rng)));
    }
}
