//! Offline placeholder for `serde`.
//!
//! The workspace's `serde` features are disabled by default and no code in
//! this repository enables them; this crate exists only so dependency
//! resolution succeeds without network access. Enabling a `serde` feature
//! against this placeholder is a compile error by design.
