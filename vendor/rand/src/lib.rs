//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.9: the [`RngCore`] and
//! [`SeedableRng`] traits, a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ seeded via SplitMix64, and an [`rngs::OsRng`] entropy
//! source (with [`SeedableRng::from_os_rng`]) for seeds that must be
//! unpredictable — security-parameter draws such as batch-verification
//! weights seed from it, never from a constant. `StdRng`'s statistical
//! quality is more than adequate for simulation and for Miller–Rabin
//! candidate generation; it is NOT a cryptographically secure generator,
//! which matches the repository's existing "research reproduction, not
//! production crypto" caveat (DESIGN.md §7).

/// A source of random `u32`/`u64` values and byte fills.
///
/// Object-safe so call sites can take `&mut dyn RngCore`.
pub trait RngCore {
    /// The next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// The next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from operating-system entropy
    /// ([`rngs::OsRng`]), matching upstream `rand` 0.9's
    /// `SeedableRng::from_os_rng`. Use this whenever the seed must be
    /// unpredictable to an adversary (e.g. batch-verification weights);
    /// `seed_from_u64` is for reproducible simulation only.
    fn from_os_rng() -> Self {
        let mut seed = Self::Seed::default();
        rngs::OsRng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Operating-system entropy source: reads `/dev/urandom`, falling
    /// back to process-local entropy (`RandomState`'s per-process random
    /// keys mixed with the clock and a call counter) on platforms or
    /// sandboxes where the device is unavailable. Never blocks, never
    /// panics. Unlike [`StdRng`] the output is not reproducible — that is
    /// the point: use it to seed generators whose stream must be
    /// unpredictable to an adversary.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    impl OsRng {
        fn fill(dest: &mut [u8]) {
            use std::io::Read;
            if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
                if f.read_exact(dest).is_ok() {
                    return;
                }
            }
            // Fallback: each `RandomState` draws fresh per-process OS
            // entropy for its keys; hashing a monotone counter and the
            // wall clock through it yields a distinct unpredictable
            // stream per call without the device.
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hasher};
            use std::sync::atomic::{AtomicU64, Ordering};
            static CALLS: AtomicU64 = AtomicU64::new(0);
            let state = RandomState::new();
            let nonce = CALLS.fetch_add(1, Ordering::Relaxed);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0);
            for (i, chunk) in dest.chunks_mut(8).enumerate() {
                let mut h = state.build_hasher();
                h.write_u64(nonce);
                h.write_u64(nanos);
                h.write_u64(i as u64);
                let word = h.finish().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut buf = [0u8; 8];
            Self::fill(&mut buf);
            u64::from_le_bytes(buf)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            Self::fill(dest);
        }
    }

    /// Deterministic standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut limb = [0u8; 8];
                limb.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(limb);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_object_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynref: &mut dyn RngCore = &mut rng;
        let _ = dynref.next_u32();
        let _ = dynref.next_u64();
    }

    #[test]
    fn os_rng_streams_diverge() {
        use super::rngs::OsRng;
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        OsRng.fill_bytes(&mut a);
        OsRng.fill_bytes(&mut b);
        assert_ne!(a, b, "two entropy draws must not repeat");
        assert_ne!(a, [0u8; 32]);
    }

    #[test]
    fn from_os_rng_instances_diverge() {
        let mut a = StdRng::from_os_rng();
        let mut b = StdRng::from_os_rng();
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "entropy-seeded generators must diverge");
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let ones: u32 = (0..256).map(|_| rng.next_u64().count_ones()).sum();
        // 256 * 64 / 2 = 8192 expected; allow a wide band.
        assert!((7600..8800).contains(&ones), "ones = {ones}");
    }
}
