//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use (`criterion_group!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`) as a simple wall-clock timing
//! harness: each benchmark is warmed up once, then timed over a bounded
//! batch of iterations, and mean time per iteration is printed. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::hint;
use std::time::{Duration, Instant};

/// Upper bound on how long one benchmark's measurement loop runs.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for upstream compatibility; command-line filtering and
    /// criterion flags are ignored by this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream prints the summary report here; the stand-in prints
    /// per-benchmark lines eagerly, so this is a no-op.
    pub fn final_summary(self) {}

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function(&mut self, id: impl ToString, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&id.to_string(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints mean wall-clock time per iteration.
    pub fn bench_function(&mut self, id: impl ToString, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.to_string()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; collects timing via [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly — one warm-up call, then up to the group's
    /// sample count (bounded by a global time budget) — timing each call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        hint::black_box(routine()); // warm-up, untimed
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if budget_start.elapsed() > MEASURE_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {id:<40} (no timed iterations)");
    } else {
        let mean = b.total / b.iters as u32;
        println!("bench {id:<40} mean {mean:>12?} over {} iters", b.iters);
    }
}

/// Bundles benchmark functions into one runner fn, mirroring upstream's
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Runs the groups from `criterion_group!`, mirroring upstream's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        let mut ran = 0u32;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        // 1 warm-up + up to 3 timed samples.
        assert!((2..=4).contains(&ran), "ran = {ran}");
    }

    #[test]
    fn criterion_group_macro_compiles_and_runs() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, target);
        benches();
    }
}
