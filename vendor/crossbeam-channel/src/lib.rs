//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Only the subset the workspace uses is provided: [`unbounded`] channels
//! with cloneable senders, blocking/timeout receives, and the matching
//! error types.

use std::sync::mpsc;
use std::time::Duration;

/// Sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender")
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver")
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// All senders are gone.
    Disconnected,
}

impl<T> Sender<T> {
    /// Sends a message; never blocks (the channel is unbounded).
    ///
    /// # Errors
    ///
    /// [`SendError`] when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on expiry,
    /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Returns a message if one is already queued.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the queue is empty,
    /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
    pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
            mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

/// Creates an unbounded channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).expect("send");
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).expect("send");
        tx2.send(2).expect("send");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn timeout_when_empty() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnected_when_senders_dropped() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_after_receiver_dropped() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
