//! Quickstart: build the paper's Figure 1 coalition and walk the Figure 2
//! flows, printing the server's derivation for the granted write.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jaap_coalition::scenario::CoalitionBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three autonomous domains form a coalition. Each domain has its own
    // identity CA; the coalition AA's private key is split among them.
    let mut coalition = CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(256)
        .seed(42)
        .build()?;

    println!("== Coalition established ==");
    println!(
        "AA shared public key id: {} ({} shareholders)",
        &coalition.aa().public().key_id()[..16],
        coalition.aa().public().n_parties()
    );
    for d in coalition.domains() {
        println!("  domain {:4} CA: {}", d.name(), d.ca().name());
    }

    // Figure 2(b): a write to Object O needs 2-of-3 signatures.
    println!("\n== Write with 2 signers (Figure 2(b)) ==");
    let decision = coalition.request_write(&["User_D1", "User_D2"])?;
    println!(
        "granted: {} ({} signature checks, {} axiom applications)",
        decision.granted, decision.signature_checks, decision.axiom_applications
    );
    if let Some(proof) = &decision.derivation {
        println!("\nServer P's derivation (paper Appendix E, statements 12-25):");
        print!("{}", proof.render());
    }

    // One signature is not consensus.
    println!("\n== Write with 1 signer ==");
    let denied = coalition.request_write(&["User_D3"])?;
    println!(
        "granted: {} — {}",
        denied.granted,
        denied.detail.unwrap_or_default()
    );

    // Figure 2(d): reads need only 1-of-3.
    println!("\n== Read with 1 signer (Figure 2(d)) ==");
    let read = coalition.request_read(&["User_D3"])?;
    println!("granted: {}", read.granted);

    // Requirement III, executable: no single domain can issue certificates.
    println!("\n== Unilateral issuance attempt by domain D1 ==");
    let forged = coalition.aa().unilateral_issue_attempt(
        "D1",
        coalition.write_ac().subject.clone(),
        jaap_core::syntax::GroupId::new("G_write"),
        jaap_core::certs::Validity::new(jaap_core::syntax::Time(0), jaap_core::syntax::Time(100)),
        jaap_core::syntax::Time(7),
    )?;
    println!(
        "forged certificate verifies: {}",
        forged.verify(coalition.aa().public()).is_ok()
    );

    Ok(())
}
