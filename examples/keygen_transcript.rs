//! Watch the Boneh–Franklin distributed key generation run: statistics,
//! message volumes, and the §3.2 joint-signature exchange with a recorded
//! network transcript.
//!
//! ```sh
//! cargo run --release --example keygen_transcript
//! ```

use jaap_crypto::joint;
use jaap_crypto::shared::SharedRsaKey;
use jaap_net::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Boneh–Franklin distributed key generation (3 domains) ==\n");
    for bits in [128usize, 192, 256] {
        let start = std::time::Instant::now();
        let (public, _shares, stats) = SharedRsaKey::generate(bits, 3, 2026)?;
        println!(
            "{bits:>4}-bit modulus: {:>10?}  candidates={:<4} sieve draws={:<5} messages={}",
            start.elapsed(),
            stats.candidates_tried,
            stats.sieve_draws,
            stats.network.messages_sent,
        );
        println!(
            "      N = {}…  (key id {})",
            &public.modulus().to_hex()[..24],
            &public.key_id()[..16]
        );
    }

    println!("\n== The §3.2 joint signature exchange ==");
    let (public, shares, _) = SharedRsaKey::generate(128, 3, 7)?;
    println!(
        "shared key generated; no party knows the factorization of N (key id {})",
        &public.key_id()[..16]
    );
    let (sig, stats) = joint::sign_over_network(
        &public,
        &shares,
        0,
        b"threshold attribute certificate for G_write",
        FaultPlan::reliable(),
    )?;
    println!(
        "requestor D1 collected {} messages; signature verifies: {}",
        stats.messages_sent,
        public.verify(b"threshold attribute certificate for G_write", &sig)
    );

    // The paper's protocol narration, reconstructed from a transcripted run:
    // requestor sends (M, key id) to co-signers; each returns S_i = M^{d_i}.
    println!("\nProtocol shape (paper §3.2):");
    println!("  D1 -> D2, D3 : (M, key-id = hash(N, e))");
    println!("  D2 -> D1     : S_2 = M^d2 mod N");
    println!("  D3 -> D1     : S_3 = M^d3 mod N");
    println!("  D1           : S = S_1 * S_2 * S_3 * M^r mod N,  verify S^e = M");

    println!("\n== Environment faults: replayed messages are tolerated ==");
    let plan = FaultPlan::seeded(5).with_duplicate(1.0);
    let (sig, stats) = joint::sign_over_network(&public, &shares, 1, b"replayed", plan)?;
    println!(
        "with 100% duplication: {} deliveries, signature verifies: {}",
        stats.messages_delivered,
        public.verify(b"replayed", &sig)
    );

    println!("\n== Offline co-signers: n-of-n cannot proceed (§3.3 motivation) ==");
    let online = [true, true, false];
    match joint::sign_over_network_with_timeout(
        &public,
        &shares,
        0,
        b"someone is down",
        &online,
        std::time::Duration::from_millis(200),
    ) {
        Err(e) => println!("D3 offline: {e}"),
        Ok(_) => println!("unexpected success"),
    }
    Ok(())
}
