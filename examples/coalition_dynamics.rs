//! Coalition dynamics (§6): domains joining and leaving, with the re-key /
//! mass-revocation / re-issue cost the paper flags as future work —
//! measured here (experiment E10).
//!
//! ```sh
//! cargo run --example coalition_dynamics
//! ```

use jaap_coalition::scenario::CoalitionBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut coalition = CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(256)
        .seed(99)
        .build()?;

    println!("== Initial coalition: D1, D2, D3 ==");
    println!("AA key id: {}", &coalition.aa().public().key_id()[..16]);
    let w = coalition.request_write(&["User_D1", "User_D2"])?;
    println!("D1+D2 write: granted = {w}\n", w = w.granted);

    println!("== D4 joins ==");
    let report = coalition.join_domain("D4")?;
    println!(
        "re-key: {:?}; revoked {} certs, re-issued {} certs; total {:?}",
        report.rekey_wall, report.certs_revoked, report.certs_reissued, report.total_wall
    );
    println!("new AA key id: {}", &coalition.aa().public().key_id()[..16]);
    let w = coalition.request_write(&["User_D4", "User_D2"])?;
    println!("D4+D2 write under the new key: granted = {}\n", w.granted);

    println!("== D1 leaves ==");
    let report = coalition.leave_domain("D1")?;
    println!(
        "re-key: {:?}; revoked {} certs, re-issued {} certs",
        report.rekey_wall, report.certs_revoked, report.certs_reissued
    );
    match coalition.request_write(&["User_D1", "User_D2"]) {
        Err(e) => println!("request naming departed User_D1 rejected: {e}"),
        Ok(d) => println!("unexpected: {d:?}"),
    }
    let w = coalition.request_write(&["User_D2", "User_D3"])?;
    println!("remaining members still write: granted = {}\n", w.granted);

    println!("== Cost trend as the coalition grows ==");
    println!(
        "{:>4} {:>14} {:>10} {:>10}",
        "n", "rekey", "revoked", "reissued"
    );
    for name in ["D5", "D6", "D7", "D8"] {
        let r = coalition.join_domain(name)?;
        println!(
            "{:>4} {:>14?} {:>10} {:>10}",
            r.domain_count, r.rekey_wall, r.certs_revoked, r.certs_reissued
        );
    }
    println!(
        "\nNote: each re-issue is a joint signature by ALL current members,\n\
         so per-certificate cost grows with n — the paper's observation that\n\
         \"further work is required to find a reasonable cost for coalition\n\
         dynamics\", quantified."
    );
    Ok(())
}
