//! The paper's motivating alliance (§1): a genetics research company, a
//! private hospital and a pharmaceutical company jointly own research data
//! and must reach consensus on every access-policy decision.
//!
//! This example exercises policy-object administration: a `set-policy`
//! privilege distributed by a (jointly signed) single-subject attribute
//! certificate, used to change Object O's ACL at runtime.
//!
//! ```sh
//! cargo run --example genetics_alliance
//! ```

use jaap_coalition::request::assemble;
use jaap_coalition::scenario::{CoalitionBuilder, OBJECT_O};
use jaap_core::certs::Validity;
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut alliance = CoalitionBuilder::new()
        .domains(&["Genetics", "Hospital", "Pharma"])
        .key_bits(256)
        .seed(7)
        .build()?;

    println!("== Research alliance formed ==");
    println!("members: Genetics, Hospital, Pharma");
    println!("research data ({OBJECT_O}) writes require 2-of-3 member signatures\n");

    // The gene-sequence write: consensus between the discoverer and the
    // trial site.
    let w = alliance.request_write(&["User_Genetics", "User_Hospital"])?;
    println!(
        "Genetics + Hospital write gene-sequence data: granted = {}",
        w.granted
    );

    // Pharma alone cannot slip a modification through.
    let solo = alliance.request_write(&["User_Pharma"])?;
    println!(
        "Pharma unilateral write:                      granted = {}",
        solo.granted
    );

    // Jointly administer the *policy object*: the AA (all three domains
    // signing jointly) grants User_Genetics a set-policy privilege bound to
    // its public key — selective distribution of privileges (§4.2).
    println!("\n== Joint administration of the policy object ==");
    let genetics_user = alliance.user("User_Genetics").expect("user").clone();
    let set_policy_ac = alliance.aa().issue_attribute_certificate(
        "User_Genetics",
        genetics_user.public(),
        GroupId::new("G_policy_admin"),
        Validity::new(Time(0), Time(1_000)),
        alliance.server().now(),
    )?;
    println!("AA jointly signed a set-policy certificate for User_Genetics");

    // Extend Object O's ACL so G_policy_admin may set-policy.
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write")
        .permit(GroupId::new("G_read"), "read")
        .permit(GroupId::new("G_policy_admin"), "set-policy");
    alliance.server_mut().set_acl(OBJECT_O, acl)?;

    let id_cert = alliance
        .identity_cert("User_Genetics")
        .expect("cert")
        .clone();
    let op = Operation::new("set-policy", OBJECT_O);
    let request = assemble(
        &[&genetics_user],
        vec![id_cert],
        vec![],
        vec![set_policy_ac],
        op,
        alliance.server().now(),
    )?;
    let decision = alliance.server_mut().handle_request(&request);
    println!(
        "User_Genetics set-policy on {OBJECT_O}: granted = {} (A35 path: {})",
        decision.granted,
        decision
            .derivation
            .as_ref()
            .is_some_and(|d| d.axioms_used().contains(&jaap_core::axioms::Axiom::A35))
    );

    // Audit trail for the regulators.
    println!("\n== Audit log ==");
    for entry in alliance.server().audit_log() {
        println!(
            "  [{}] {:?} {} -> {}",
            entry.at,
            entry.principals,
            entry.operation,
            if entry.granted { "GRANT" } else { "DENY" }
        );
    }
    Ok(())
}
