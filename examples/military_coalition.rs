//! A larger military-style coalition (paper §1/§2, Gibson [11]): five
//! nations, 3-of-5 writes, m-of-n availability trade-offs (§3.3) and
//! proactive share refresh (§6 / Wu et al. [27]).
//!
//! ```sh
//! cargo run --example military_coalition
//! ```

use jaap_coalition::availability;
use jaap_coalition::scenario::CoalitionBuilder;
use jaap_crypto::refresh::refresh_in_place;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nations = ["US", "UK", "FR", "DE", "PL"];
    let mut coalition = CoalitionBuilder::new()
        .domains(&nations)
        .write_threshold(3)
        .key_bits(256)
        .seed(1944)
        .build()?;

    println!("== Five-nation coalition, 3-of-5 writes ==");
    let w = coalition.request_write(&["User_US", "User_FR", "User_PL"])?;
    println!("US + FR + PL write route plan: granted = {}", w.granted);
    let w2 = coalition.request_write(&["User_US", "User_UK"])?;
    println!("US + UK only:                  granted = {}", w2.granted);

    // §3.3: availability of joint signatures. n-of-n signing of new
    // certificates needs everyone online; a 3-of-5 threshold conversion
    // keeps the AA operational through maintenance windows.
    println!("\n== Joint-signature availability (per-domain uptime p) ==");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "p", "n-of-n", "majority", "gain"
    );
    for p in [0.90f64, 0.95, 0.99] {
        let full = availability::analytic(5, 5, p);
        let majority = availability::analytic(5, 3, p);
        println!(
            "{p:>6.2} {full:>10.6} {majority:>12.6} {:>11.2}x",
            majority / full
        );
    }

    // Convert the (dealt) additive shares to a 3-of-5 threshold key and
    // sign with a quorum while two nations are offline.
    println!("\n== m-of-n signing with two nations offline ==");
    let mut rng = StdRng::seed_from_u64(3);
    let (tp, tshares) = jaap_crypto::threshold::ThresholdKey::from_additive(
        &mut rng,
        coalition.aa().public(),
        coalition.aa().shares(),
        3,
    )?;
    let quorum: Vec<_> = [0usize, 2, 4] // US, FR, PL online
        .iter()
        .map(|&i| tshares[i].sign_share(b"emergency tasking order"))
        .collect::<Result<_, _>>()?;
    let sig = jaap_crypto::threshold::combine(&tp, b"emergency tasking order", &quorum)?;
    println!(
        "3-of-5 threshold signature verifies against the SAME shared key: {}",
        coalition
            .aa()
            .public()
            .verify(b"emergency tasking order", &sig)
    );

    // §6: proactive refresh. Exfiltrated shares go stale.
    println!("\n== Proactive share refresh ==");
    let public = coalition.aa().public().clone();
    let stolen = coalition.aa().share_of("PL").expect("share").clone();
    refresh_in_place(&mut rng, coalition.aa_mut().shares_mut())?;
    let mut mixed: Vec<&jaap_crypto::shared::KeyShare> = Vec::new();
    for nation in &nations[..4] {
        mixed.push(coalition.aa().share_of(nation).expect("share"));
    }
    mixed.push(&stolen); // the pre-refresh exfiltrated share
    let outcome = jaap_crypto::collusion::collude_additive(&public, &mixed);
    println!(
        "pre-refresh stolen share + 4 fresh shares recover the key: {}",
        outcome.is_compromised()
    );
    let post = coalition.request_write(&["User_US", "User_DE", "User_UK"])?;
    println!(
        "coalition still operational after refresh: granted = {}",
        post.granted
    );

    Ok(())
}
