//! Soundness explorer: builds a runs-based model (Appendix C) of the
//! Figure 2 exchange and evaluates axiom instances against the truth
//! conditions — the executable counterpart of the Appendix D proof.
//!
//! ```sh
//! cargo run --example soundness_explorer
//! ```

use jaap_core::axioms::Axiom;
use jaap_core::semantics::{Model, RunBuilder};
use jaap_core::syntax::{Formula, GroupId, KeyId, Message, Subject, Time};

fn main() {
    // Parties: three users with keys, the group G_write (as a principal
    // whose utterances are group statements), and server P.
    let users: Vec<Subject> = (1..=3)
        .map(|i| Subject::principal(format!("User_D{i}")))
        .collect();
    let keys: Vec<KeyId> = (1..=3).map(|i| KeyId::new(format!("K_u{i}"))).collect();
    let group = Subject::principal("G_write");
    let server = Subject::principal("P");

    let mut b = RunBuilder::new();
    for (u, k) in users.iter().zip(&keys) {
        b.party(u.clone(), 0);
        b.give_key(u, k.clone(), Time(0));
    }
    b.party(group.clone(), 0).party(server.clone(), 0);

    // The joint write request: users 1 and 2 sign "write O" at t4 and send
    // it to P; the group (whose voice the threshold certificate creates)
    // says it too.
    let payload = Message::data("\"write\" Object O");
    b.deliver(
        &users[0],
        &server,
        payload.clone().signed(keys[0].clone()),
        Time(4),
        1,
    );
    b.deliver(
        &users[1],
        &server,
        payload.clone().signed(keys[1].clone()),
        Time(4),
        1,
    );
    b.send_lost(&group, &server, payload.clone(), Time(4));

    let model = Model::new(b.build());
    println!(
        "run is legal (Appendix C conditions): {}\n",
        model.run().is_legal()
    );

    // The threshold compound of the certificate.
    let cp = Subject::threshold(
        users
            .iter()
            .zip(&keys)
            .map(|(u, k)| u.clone().bound(k.clone()))
            .collect(),
        2,
    );

    println!("== Truth conditions at (r, t6) ==");
    let checks: Vec<(String, Formula)> = vec![
        (
            "P received ⟨X⟩_K_u1⁻¹".into(),
            Formula::received(
                server.clone(),
                Time(5),
                payload.clone().signed(keys[0].clone()),
            ),
        ),
        (
            "K_u1 ⇒ User_D1".into(),
            Formula::key_speaks_for(keys[0].clone(), Time(6), users[0].clone()),
        ),
        (
            "User_D1 said X".into(),
            Formula::said(users[0].clone(), Time(6), payload.clone()),
        ),
        (
            "CP'₂,₃ ⇒ G_write".into(),
            Formula::member_of(cp.clone(), Time(6), GroupId::new("G_write")),
        ),
        (
            "G_write says X".into(),
            Formula::says(group.clone(), Time(4), payload.clone()),
        ),
    ];
    for (label, f) in &checks {
        println!("  {:32} {}", label, model.eval(Time(6), f));
    }

    // A10 as a schema instance: antecedent ∧ → consequent.
    let a10 = Formula::implies(
        Formula::and(
            Formula::key_speaks_for(keys[0].clone(), Time(6), users[0].clone()),
            Formula::received(
                server.clone(),
                Time(6),
                payload.clone().signed(keys[0].clone()),
            ),
        ),
        Formula::said(users[0].clone(), Time(6), payload.clone()),
    );
    println!("\nA10 instance holds: {}", model.eval(Time(6), &a10));

    // A38 as a schema instance.
    let a38 = Formula::implies(
        Formula::and(
            Formula::and(
                Formula::member_of(cp, Time(4), GroupId::new("G_write")),
                Formula::says(
                    users[0].clone(),
                    Time(4),
                    payload.clone().signed(keys[0].clone()),
                ),
            ),
            Formula::says(
                users[1].clone(),
                Time(4),
                payload.clone().signed(keys[1].clone()),
            ),
        ),
        Formula::group_says(GroupId::new("G_write"), Time(4), payload.clone()),
    );
    println!("A38 instance holds: {}", model.eval(Time(4), &a38));

    // The axiom catalogue, with the paper's extensions marked.
    println!("\n== Axiom catalogue (paper Appendix B) ==");
    for ax in Axiom::ALL {
        let marker = if ax.is_extension() { "*" } else { " " };
        println!("  {marker} {:4} {}", ax.id(), truncate(ax.statement(), 90));
    }
    println!("\n(* = extension over Lampson/Abadi/Stubblebine-Wright, per the paper)");
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}
