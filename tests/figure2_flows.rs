//! Experiments E2/E3: the Figure 2 write and read flows, including the
//! tamper cases a reference monitor must refuse.

use jaap_coalition::request::WireStatement;
use jaap_coalition::scenario::{CoalitionBuilder, OBJECT_O};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;

fn coalition(seed: u64) -> jaap_coalition::scenario::Coalition {
    CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

#[test]
fn every_pair_of_signers_can_write() {
    let mut c = coalition(2001);
    for pair in [
        ["User_D1", "User_D2"],
        ["User_D1", "User_D3"],
        ["User_D2", "User_D3"],
    ] {
        let d = c.request_write(&pair).expect("write");
        assert!(d.granted, "{pair:?} must satisfy 2-of-3");
    }
}

#[test]
fn every_single_signer_is_refused_for_write() {
    let mut c = coalition(2002);
    for solo in ["User_D1", "User_D2", "User_D3"] {
        let d = c.request_write(&[solo]).expect("write");
        assert!(!d.granted, "{solo} alone must not satisfy 2-of-3");
    }
}

#[test]
fn every_single_signer_can_read() {
    let mut c = coalition(2003);
    for solo in ["User_D1", "User_D2", "User_D3"] {
        let d = c.request_read(&[solo]).expect("read");
        assert!(d.granted, "{solo} alone satisfies 1-of-3 read");
    }
}

#[test]
fn duplicate_signer_does_not_meet_threshold() {
    let mut c = coalition(2004);
    let mut req = c
        .build_request(&["User_D1"], Operation::new("write", OBJECT_O))
        .expect("request");
    // Present the same statement twice.
    let stmt = req.statements[0].clone();
    req.statements.push(stmt);
    let d = c.server_mut().handle_request(&req);
    assert!(!d.granted, "one signer repeated twice is still one signer");
}

#[test]
fn tampered_statement_signature_refused() {
    let mut c = coalition(2005);
    let mut req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", OBJECT_O))
        .expect("request");
    // Flip the claimed principal on one statement: signature no longer
    // matches the canonical bytes.
    req.statements[1] = WireStatement {
        principal: "User_D3".into(),
        at: req.statements[1].at,
        signature: req.statements[1].signature.clone(),
    };
    let d = c.server_mut().handle_request(&req);
    assert!(!d.granted);
}

#[test]
fn statement_signed_for_read_cannot_authorize_write() {
    let mut c = coalition(2006);
    // Build a legitimate read request, then relabel it as a write.
    let mut req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("read", OBJECT_O))
        .expect("request");
    req.operation = Operation::new("write", OBJECT_O);
    req.threshold_certs = vec![c.write_ac().clone()];
    let d = c.server_mut().handle_request(&req);
    assert!(
        !d.granted,
        "signatures over \"read\" bytes must not authorize a write"
    );
}

#[test]
fn missing_identity_certificate_refused() {
    let mut c = coalition(2007);
    let mut req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", OBJECT_O))
        .expect("request");
    req.identity_certs.remove(0);
    let d = c.server_mut().handle_request(&req);
    assert!(!d.granted);
    assert!(d.detail.expect("detail").contains("identity certificate"));
}

#[test]
fn foreign_users_certificate_does_not_transfer() {
    // User_D3's identity cert presented for User_D1's statement: the
    // statement signature check fails (different key).
    let mut c = coalition(2008);
    let mut req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", OBJECT_O))
        .expect("request");
    let d3_cert = c.identity_cert("User_D3").expect("cert").clone();
    req.identity_certs[0] = d3_cert;
    let d = c.server_mut().handle_request(&req);
    assert!(!d.granted);
}

#[test]
fn future_dated_statement_refused() {
    let mut c = coalition(2009);
    let now = c.server().now();
    let mut req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", OBJECT_O))
        .expect("request");
    // Claim the statements were signed in the future.
    let future = Time(now.0 + 1_000_000);
    req.at = future;
    for s in &mut req.statements {
        s.at = future;
    }
    // Signatures are now over different bytes, so crypto refuses; even if
    // re-signed, the logic's freshness check would refuse.
    let d = c.server_mut().handle_request(&req);
    assert!(!d.granted);
}

#[test]
fn three_of_three_writes_also_grant() {
    let mut c = coalition(2010);
    let d = c
        .request_write(&["User_D1", "User_D2", "User_D3"])
        .expect("write");
    assert!(d.granted, "exceeding the threshold is fine");
}

#[test]
fn network_assembled_request_is_granted() {
    // Figure 2(b) over the wire: requestor User_D1 collects User_D2's
    // attestation over the simulated network, then submits to P.
    let mut c = coalition(2012);
    let u1 = c.user("User_D1").expect("u1").clone();
    let u2 = c.user("User_D2").expect("u2").clone();
    let certs = vec![
        c.identity_cert("User_D1").expect("c1").clone(),
        c.identity_cert("User_D2").expect("c2").clone(),
    ];
    let (req, stats) = jaap_coalition::request::assemble_over_network(
        &[&u1, &u2],
        certs,
        vec![c.write_ac().clone()],
        Operation::new("write", OBJECT_O),
        c.server().now(),
    )
    .expect("assemble");
    assert_eq!(stats.messages_sent, 2); // 1 cosign request + 1 attestation
    let d = c.server_mut().handle_request(&req);
    assert!(d.granted, "{:?}", d.detail);
}

#[test]
fn write_version_counts_grants_only() {
    let mut c = coalition(2011);
    let _ = c.request_write(&["User_D1", "User_D2"]).expect("w1");
    let _ = c.request_write(&["User_D1"]).expect("w2-denied");
    let _ = c.request_write(&["User_D2", "User_D3"]).expect("w3");
    assert_eq!(c.server().object(OBJECT_O).expect("obj").version, 2);
}
