//! Chaos harness for the replicated coalition server.
//!
//! Strategy: run a randomized belief-changing workload against a journaled
//! primary whose store is teed into a replication outbox, shipping records
//! to replicas over a faulty `jaap-net` mesh (drops, duplicates, a
//! partition that later heals). After the workload, converge, "crash" the
//! primary, promote the designated replica through the recovery replay
//! path, and require its clock, object state, audit log, and probe
//! decisions to be byte-identical to the never-crashed primary's.

use jaap_coalition::replication::ReplicationNet;
use jaap_coalition::request::{assemble, JointAccessRequest};
use jaap_coalition::scenario::{Coalition, CoalitionBuilder, OBJECT_O};
use jaap_coalition::server::{CoalitionServer, ServerDecision};
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};
use jaap_net::FaultPlan;
use jaap_obs::MetricsRegistry;
use jaap_pki::CrlEntry;
use jaap_wal::{parse_log, LogOutbox, MemStore, TeeStore};
use proptest::prelude::*;

const USERS: [&str; 3] = ["User_D1", "User_D2", "User_D3"];

/// Term the initial primary runs under; promotions go above it.
const PRIMARY_TERM: u64 = 1;

/// An abstract workload step (materialized with signed artifacts at run
/// time, so the same inputs replay byte-identically everywhere).
#[derive(Debug, Clone)]
enum Plan {
    Advance(i64),
    Write(Vec<usize>),
    Read(usize),
    RevokeWrite,
    Crl,
    SetContent(u8),
}

#[derive(Debug, Clone)]
enum Op {
    Advance(Time),
    Request(JointAccessRequest),
    Revocation(jaap_pki::attribute::AttributeRevocation),
    Crl(jaap_pki::Crl),
    SetContent(Vec<u8>),
}

fn apply(server: &mut CoalitionServer, op: &Op) {
    match op {
        Op::Advance(to) => {
            let _ = server.advance_clock(*to);
        }
        Op::Request(req) => {
            let _ = server.handle_request(req);
        }
        Op::Revocation(rev) => {
            let _ = server.admit_attribute_revocation(rev);
        }
        Op::Crl(crl) => {
            let _ = server.admit_crl(crl);
        }
        Op::SetContent(bytes) => {
            let _ = server.set_content(OBJECT_O, bytes.clone());
        }
    }
}

fn build_request(c: &Coalition, signers: &[&str], action: &str, at: Time) -> JointAccessRequest {
    let users: Vec<_> = signers.iter().map(|n| c.user(n).expect("user")).collect();
    let ids = signers
        .iter()
        .map(|n| c.identity_cert(n).expect("cert").clone())
        .collect();
    let ac = if action == "read" {
        c.read_ac().clone()
    } else {
        c.write_ac().clone()
    };
    assemble(
        &users,
        ids,
        vec![ac],
        vec![],
        Operation::new(action, OBJECT_O),
        at,
    )
    .expect("assemble")
}

fn assert_same_decision(ours: &ServerDecision, twins: &ServerDecision, ctx: &str) {
    assert_eq!(ours.granted, twins.granted, "granted diverged: {ctx}");
    assert_eq!(ours.detail, twins.detail, "detail diverged: {ctx}");
    assert_eq!(
        ours.axiom_applications, twins.axiom_applications,
        "axiom count diverged: {ctx}"
    );
    assert_eq!(
        ours.signature_checks, twins.signature_checks,
        "signature checks diverged: {ctx}"
    );
    assert_eq!(
        ours.cached_signature_checks, twins.cached_signature_checks,
        "cached checks diverged: {ctx}"
    );
    assert_eq!(
        ours.unavailable, twins.unavailable,
        "unavailability diverged: {ctx}"
    );
}

/// The failover equivalence check: state now, then decisions on a probe
/// workload (fresh quorum write, under-threshold write, read, and a
/// duplicate delivery of the last pre-failover request).
fn assert_equivalent(
    promoted: &mut CoalitionServer,
    twin: &mut CoalitionServer,
    c: &Coalition,
    completed_ops: &[Op],
    ctx: &str,
) {
    assert_eq!(promoted.now(), twin.now(), "clock diverged: {ctx}");
    let ours = promoted.object(OBJECT_O).expect("object").clone();
    let twins = twin.object(OBJECT_O).expect("object").clone();
    assert_eq!(ours.version, twins.version, "version diverged: {ctx}");
    assert_eq!(ours.content, twins.content, "content diverged: {ctx}");
    assert_eq!(
        promoted.audit_log(),
        twin.audit_log(),
        "audit log diverged: {ctx}"
    );

    let probe_at = Time(promoted.now().0 + 1);
    promoted.advance_clock(probe_at).expect("clock");
    twin.advance_clock(probe_at).expect("clock");
    let mut probes = vec![
        build_request(c, &["User_D1", "User_D2"], "write", probe_at),
        build_request(c, &["User_D3"], "write", probe_at),
        build_request(c, &["User_D2"], "read", probe_at),
    ];
    if let Some(Op::Request(req)) = completed_ops
        .iter()
        .rev()
        .find(|op| matches!(op, Op::Request(_)))
    {
        probes.push(req.clone());
    }
    for (i, probe) in probes.iter().enumerate() {
        let a = promoted.handle_request(probe);
        let b = twin.handle_request(probe);
        assert_same_decision(&a, &b, &format!("probe {i}, {ctx}"));
    }
    assert_eq!(
        promoted.audit_log(),
        twin.audit_log(),
        "post-probe audit log diverged: {ctx}"
    );
}

/// A fresh never-crashed server configured exactly as the journaled
/// primary was at the moment its journal was attached; applying the same
/// completed ops makes it the reference twin for the promoted replica.
fn fresh_twin(c: &Coalition) -> CoalitionServer {
    let mut server = CoalitionServer::new("P", c.trust_store());
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");
    acl.permit(GroupId::new("G_read"), "read");
    server.add_object(OBJECT_O, acl).expect("add object");
    server.advance_clock(Time(10)).expect("clock");
    server.set_replay_protection(true).expect("config");
    server
}

/// A journaled primary whose log is replicated over a faulty mesh.
struct ReplHarness {
    c: Coalition,
    /// Shares the primary's on-"disk" journal bytes.
    disk: MemStore,
    net: ReplicationNet,
    ops: Vec<Op>,
    crl_seq: u64,
    last_req: Option<JointAccessRequest>,
}

impl ReplHarness {
    fn new(seed: u64, n_replicas: usize, plan: FaultPlan) -> Self {
        let mut c = CoalitionBuilder::new()
            .seed(seed)
            .key_bits(192)
            .build()
            .expect("build");
        let disk = MemStore::new();
        let outbox = LogOutbox::new();
        c.server_mut().set_replay_protection(true).expect("config");
        c.server_mut()
            .attach_journal(Box::new(TeeStore::new(disk.clone(), outbox.clone())))
            .expect("attach");
        c.server_mut().set_journal_term(PRIMARY_TERM);
        let net = ReplicationNet::new(PRIMARY_TERM, n_replicas, outbox, plan).expect("net");
        ReplHarness {
            c,
            disk,
            net,
            ops: Vec::new(),
            crl_seq: 1,
            last_req: None,
        }
    }

    /// Materializes and applies one step on the primary, then runs a few
    /// best-effort sync rounds (losses retried by later syncs).
    fn step(&mut self, step: &Plan, sync_rounds: usize) {
        let now = self.c.server().now();
        let op = match step {
            Plan::Advance(dt) => Op::Advance(Time(now.0 + dt)),
            Plan::Write(idx) => {
                let signers: Vec<&str> = idx.iter().map(|&i| USERS[i]).collect();
                let req = build_request(&self.c, &signers, "write", now);
                self.last_req = Some(req.clone());
                Op::Request(req)
            }
            Plan::Read(i) => {
                let req = build_request(&self.c, &[USERS[*i]], "read", now);
                self.last_req = Some(req.clone());
                Op::Request(req)
            }
            Plan::RevokeWrite => {
                let ac = self.c.write_ac();
                let rev = self
                    .c
                    .ra()
                    .revoke_attribute(&ac.subject, ac.group.clone(), now, now)
                    .expect("revoke");
                Op::Revocation(rev)
            }
            Plan::Crl => {
                let ac = self.c.write_ac();
                let entries = vec![CrlEntry {
                    subject: ac.subject.clone(),
                    group: ac.group.clone(),
                    revoked_from: now,
                }];
                let crl = self
                    .c
                    .ra()
                    .issue_crl(self.crl_seq, now, entries)
                    .expect("crl");
                self.crl_seq += 1;
                Op::Crl(crl)
            }
            Plan::SetContent(b) => Op::SetContent(vec![*b; 4]),
        };
        apply(self.c.server_mut(), &op);
        self.ops.push(op);
        self.net.sync(sync_rounds);
    }

    /// Heals the network and drives replication to full convergence.
    fn converge(&mut self) {
        self.net
            .set_fault_plan(FaultPlan::reliable())
            .expect("heal");
        self.net.sync(400);
        assert!(
            self.net.primary.all_caught_up(),
            "replication did not converge after healing"
        );
    }

    /// Crashes the primary and promotes replica `k` under `new_term`.
    fn promote(&mut self, k: usize, new_term: u64) -> CoalitionServer {
        let trust = self.c.trust_store();
        let (server, report) = self.net.replicas[k]
            .promote("P", trust, new_term)
            .expect("promote");
        assert!(
            report.truncation.is_none(),
            "shipped log must be clean: {:?}",
            report.truncation
        );
        server
    }
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    prop_oneof![
        (1i64..4).prop_map(Plan::Advance),
        proptest::collection::vec(0usize..3, 1..=3).prop_map(|mut idx: Vec<usize>| {
            idx.sort_unstable();
            idx.dedup();
            Plan::Write(idx)
        }),
        (0usize..3).prop_map(Plan::Read),
        Just(Plan::RevokeWrite),
        Just(Plan::Crl),
        (0u8..255).prop_map(Plan::SetContent),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole property: ship a randomized workload through a faulty
    /// network (drops + duplicates, plus a partition of one replica that
    /// heals at the end), promote the designated replica after a primary
    /// crash, and require byte-identical state and probe decisions
    /// against the never-crashed primary.
    #[test]
    fn promoted_replica_matches_never_crashed_twin_under_chaos(
        seed in 0u64..64,
        fault_seed in 1u64..1024,
        plan in proptest::collection::vec(plan_strategy(), 3..8),
    ) {
        let lossy = FaultPlan::seeded(fault_seed)
            .with_drop(0.2)
            .with_duplicate(0.2);
        let mut h = ReplHarness::new(seed, 2, lossy);
        let split = plan.len() / 2;
        for step in &plan[..split] {
            h.step(step, 4);
        }
        // Partition replica 1 (party 2) away from the primary mid-run;
        // replica 0 keeps following through the lossy phase's faults.
        let partitioned = FaultPlan::seeded(fault_seed)
            .with_drop(0.2)
            .with_duplicate(0.2)
            .with_partition(&[0], &[2]);
        h.net.set_fault_plan(partitioned).expect("partition");
        for step in &plan[split..] {
            h.step(step, 4);
        }
        // Heal and converge: the partitioned replica catches back up.
        h.converge();

        // Fully synced replicas hold byte-identical logs to the disk.
        let disk_bytes = h.disk.snapshot();
        for r in &h.net.replicas {
            prop_assert_eq!(&r.store().snapshot(), &disk_bytes);
        }

        // Crash the primary; promote the designated replica to term 2 and
        // compare against a never-crashed twin that ran the same ops.
        let mut promoted = h.promote(0, PRIMARY_TERM + 1);
        let mut twin = fresh_twin(&h.c);
        for op in &h.ops {
            apply(&mut twin, op);
        }
        assert_equivalent(&mut promoted, &mut twin, &h.c, &h.ops, "chaos failover");
    }
}

/// Directed satellite test: after promotion, the deposed primary's appends
/// are rejected by the fencing rule and the rejection is observable via
/// `server.repl.{i}.rejected_stale_term`.
#[test]
fn fenced_deposed_primary_appends_are_rejected_and_counted() {
    let registry = MetricsRegistry::new();
    let mut h = ReplHarness::new(21, 1, FaultPlan::reliable());
    h.net.set_metrics(&registry);
    h.step(&Plan::Write(vec![0, 1]), 8);
    h.step(&Plan::Advance(2), 8);
    h.converge();
    assert_eq!(
        registry.gauge_value("server.repl.0.lag_records"),
        Some(0),
        "lag gauge must read zero after convergence"
    );
    assert!(registry.counter_value("server.repl.0.shipped").unwrap_or(0) > 0);
    assert!(registry.counter_value("server.repl.0.acked").unwrap_or(0) > 0);

    // Failover: replica 0 is promoted to a higher term.
    let promoted = h.promote(0, PRIMARY_TERM + 1);
    assert_eq!(promoted.journal_term(), Some(PRIMARY_TERM + 1));
    let replica_log_before = h.net.replicas[0].store().snapshot();

    // The deposed primary keeps serving and tries to replicate a write.
    h.c.server_mut()
        .set_content(OBJECT_O, b"zombie write".to_vec())
        .expect("set content");
    h.net.sync(8);

    assert!(
        registry
            .counter_value("server.repl.0.rejected_stale_term")
            .unwrap_or(0)
            >= 1,
        "fencing rejection must be counted"
    );
    assert_eq!(h.net.primary.deposed_by(), Some(PRIMARY_TERM + 1));
    assert!(h.net.primary.stats().stale_term_rejections >= 1);
    assert_eq!(
        h.net.replicas[0].store().snapshot(),
        replica_log_before,
        "a fenced primary must not mutate the replica's log"
    );
}

/// Directed satellite test: a replica that joins after the primary has
/// compacted its journal bootstraps via snapshot + tail catch-up.
#[test]
fn late_joiner_bootstraps_via_snapshot_and_tail() {
    let registry = MetricsRegistry::new();
    let mut h = ReplHarness::new(22, 1, FaultPlan::reliable());
    h.net.set_metrics(&registry);
    // Traffic, then a compaction, then more traffic — all before the
    // replica has seen a single message.
    h.step(&Plan::Write(vec![0, 1]), 0);
    h.step(&Plan::Advance(1), 0);
    h.c.server_mut().snapshot_journal().expect("snapshot");
    h.step(&Plan::Read(1), 0);
    h.step(&Plan::SetContent(9), 0);

    h.converge();
    let r = &h.net.replicas[0];
    assert!(
        r.stats().snapshots_installed >= 1,
        "late joiner must be seeded with a snapshot"
    );
    assert!(
        registry
            .counter_value("server.repl.0.catchups")
            .unwrap_or(0)
            >= 1
    );
    assert_eq!(r.store().snapshot(), h.disk.snapshot());
    let log = parse_log(&r.store().snapshot());
    assert!(matches!(log.tail, jaap_wal::Tail::Clean));

    let mut promoted = h.promote(0, PRIMARY_TERM + 1);
    let mut twin = fresh_twin(&h.c);
    for op in &h.ops {
        apply(&mut twin, op);
    }
    assert_equivalent(
        &mut promoted,
        &mut twin,
        &h.c,
        &h.ops,
        "late joiner failover",
    );
}

/// Directed satellite test: shipped records carry the primary's term in
/// their frames, and the replicated log survives duplicate-heavy chaos.
#[test]
fn shipped_frames_carry_primary_term() {
    let mut h = ReplHarness::new(23, 1, FaultPlan::seeded(5).with_duplicate(0.5));
    h.step(&Plan::Write(vec![0, 1]), 8);
    h.step(&Plan::SetContent(3), 8);
    h.converge();
    let log = parse_log(&h.net.replicas[0].store().snapshot());
    assert!(!log.records.is_empty());
    // Bootstrap frames predate set_journal_term; everything after is
    // stamped with the primary's term.
    assert_eq!(*log.terms.last().expect("terms"), PRIMARY_TERM);
    assert!(h.net.replicas[0].stats().duplicates > 0 || h.net.primary.stats().shipped > 0);
}
