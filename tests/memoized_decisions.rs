//! The derivation memo never changes decisions — only their cost.
//!
//! The engine's memo ([`jaap_core::memo`]) replays a finished decision for
//! a repeated request at the same belief epoch. The invariants under test
//! mirror `bounded_caches.rs`:
//!
//! * **Equivalence**: a memoized server and a reference (memo-off) server
//!   produce byte-identical grants, denial details, audit logs, and
//!   rendered proof trees over random request schedules.
//! * **Revocation safety**: a memoized grant never outlives a revocation —
//!   admitting a revocation bumps the belief epoch, which eagerly clears
//!   the memo.
//! * **Bounding**: the memo respects its capacity with insertion-order
//!   eviction, and evictions only cost re-derivation, never correctness.

use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use proptest::prelude::*;

fn coalition(seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("build")
}

/// Re-submitting the same request bytes at the same time and belief epoch
/// replays the memoized decision — same grant, same proof, no extra axiom
/// search — and the audit log still records every submission.
#[test]
fn repeated_request_replays_identical_decision() {
    let mut c = coalition(0xE0);
    c.set_derivation_memo(true).expect("config");

    let req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    let first = c.server_mut().handle_request(&req);
    assert!(first.granted);
    let axioms_before = c.server().engine().axiom_applications();

    let second = c.server_mut().handle_request(&req);
    assert!(second.granted);
    assert_eq!(first.detail, second.detail);
    assert_eq!(first.axiom_applications, second.axiom_applications);
    assert_eq!(
        first.derivation.as_ref().map(|d| d.render()),
        second.derivation.as_ref().map(|d| d.render()),
        "replayed proof must render identically"
    );
    assert_eq!(
        c.server().engine().axiom_applications(),
        axioms_before,
        "a memo hit performs no new axiom applications"
    );

    let stats = c.server().derivation_memo_stats().expect("memo on");
    assert!(stats.hits >= 1, "second submission must hit: {stats:?}");
    assert!(stats.entries >= 1);
    // Every submission is audited, hit or miss.
    assert_eq!(c.server().audit_log().len(), 2);
}

/// Admitting a revocation bumps the belief epoch and clears the memo, so
/// the previously memoized grant is re-evaluated — and denied.
#[test]
fn memoized_grant_never_outlives_revocation() {
    let mut c = coalition(0xE1);
    c.set_derivation_memo(true).expect("config");

    let req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    assert!(c.server_mut().handle_request(&req).granted);
    assert!(c.server_mut().handle_request(&req).granted, "warm hit");
    let stats = c.server().derivation_memo_stats().expect("memo on");
    assert!(stats.hits >= 1);

    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(21)).expect("clock");

    let after = c.server_mut().handle_request(&req);
    assert!(
        !after.granted,
        "revocation must deny the previously memoized request"
    );
    let stats = c.server().derivation_memo_stats().expect("memo on");
    assert!(
        stats.invalidations >= 1,
        "the revocation must have cleared the memo: {stats:?}"
    );
}

/// The capacity bound holds under pressure, evictions are counted, and a
/// re-derived (evicted) request still gets the same decision.
#[test]
fn memo_respects_capacity_and_eviction_only_costs_rederivation() {
    let mut c = coalition(0xE2);
    c.set_derivation_memo(true).expect("config");
    c.server_mut()
        .set_derivation_memo_capacity(Some(1))
        .expect("config");

    let write = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("write");
    let read = c
        .build_request(&["User_D3"], Operation::new("read", "Object O"))
        .expect("read");

    // Alternate two distinct requests through a capacity-1 memo: each
    // displaces the other, so every submission is a miss + eviction.
    for _ in 0..3 {
        assert!(c.server_mut().handle_request(&write).granted);
        assert!(c.server_mut().handle_request(&read).granted);
    }
    let stats = c.server().derivation_memo_stats().expect("memo on");
    assert!(stats.entries <= 1, "bound holds: {stats:?}");
    assert!(stats.evictions >= 2, "pressure must evict: {stats:?}");

    // Zero capacity memoizes nothing and still decides correctly.
    c.server_mut()
        .set_derivation_memo_capacity(Some(0))
        .expect("config");
    assert!(c.server_mut().handle_request(&write).granted);
    assert_eq!(
        c.server().derivation_memo_stats().expect("memo on").entries,
        0
    );
}

/// The memo instruments surface through an attached registry.
#[test]
fn memo_and_interner_metrics_are_mirrored() {
    let mut c = coalition(0xE3);
    c.set_derivation_memo(true).expect("config");
    let registry = c.enable_metrics();

    let req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    assert!(c.server_mut().handle_request(&req).granted);
    assert!(c.server_mut().handle_request(&req).granted);

    assert_eq!(registry.counter_value("server.memo.hits"), Some(1));
    assert_eq!(registry.counter_value("server.memo.misses"), Some(1));
    assert!(registry.gauge_value("server.memo.entries").unwrap_or(0) >= 1);
    assert!(
        registry
            .gauge_value("server.interner.formulas")
            .unwrap_or(0)
            > 0,
        "interner table sizes must be exported"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The memoized engine and the fully re-derived reference engine agree
    /// on everything observable: grants, denial details, rendered proofs,
    /// and the audit log. Each scheduled request is submitted twice at the
    /// same timestamp so the memoized side exercises real hits.
    #[test]
    fn memoized_and_reference_engines_agree(
        schedule in proptest::collection::vec(
            (0usize..3, 0usize..3, any::<bool>(), any::<bool>()),
            1..8,
        ),
    ) {
        let users = ["User_D1", "User_D2", "User_D3"];
        let mut memoized = coalition(0xE4);
        let mut reference = coalition(0xE4);
        memoized.set_derivation_memo(true).expect("config");

        let mut revoked = false;
        for (i, &(a, b, read, revoke)) in schedule.iter().enumerate() {
            let t = Time(20 + i as i64);
            memoized.advance_time(t).expect("clock");
            reference.advance_time(t).expect("clock");
            if revoke && !revoked {
                memoized.revoke_write_ac(t).expect("revoke");
                reference.revoke_write_ac(t).expect("revoke");
                revoked = true;
            }
            let signers: Vec<&str> = if a == b {
                vec![users[a]]
            } else {
                vec![users[a], users[b]]
            };
            let op = if read {
                Operation::new("read", "Object O")
            } else {
                Operation::new("write", "Object O")
            };
            let req = memoized.build_request(&signers, op).expect("request");
            // Twice per step: the second submission is a memo hit on the
            // memoized side and a full re-derivation on the reference side.
            for round in 0..2 {
                let dm = memoized.server_mut().handle_request(&req);
                let dr = reference.server_mut().handle_request(&req);
                prop_assert_eq!(dm.granted, dr.granted, "step {}/{}: grant", i, round);
                prop_assert_eq!(&dm.detail, &dr.detail, "step {}/{}: detail", i, round);
                prop_assert_eq!(
                    dm.axiom_applications, dr.axiom_applications,
                    "step {}/{}: axiom count", i, round
                );
                prop_assert_eq!(
                    dm.derivation.as_ref().map(|d| d.render()),
                    dr.derivation.as_ref().map(|d| d.render()),
                    "step {}/{}: rendered proof", i, round
                );
            }
        }

        // Audit logs agree line for line.
        let am = memoized.server().audit_log();
        let ar = reference.server().audit_log();
        prop_assert_eq!(am.len(), ar.len());
        for (m, r) in am.iter().zip(ar) {
            prop_assert_eq!(m.at, r.at);
            prop_assert_eq!(&m.principals, &r.principals);
            prop_assert_eq!(m.granted, r.granted);
            prop_assert_eq!(&m.detail, &r.detail);
        }
        // Object versions agree (writes bumped identically).
        prop_assert_eq!(
            memoized.server().object("Object O").expect("obj").version,
            reference.server().object("Object O").expect("obj").version
        );
    }
}
