//! Fault tolerance of the signing-session layer and the coalition's
//! graceful degradation (the robustness acceptance suite).
//!
//! Covers: the §3.3 availability law as an executable property (m-of-n
//! signing succeeds iff ≥ m domains are live), agreement of the *real*
//! networked sessions with the analytic binomial model, bounded-time
//! failure under heavy loss (no hangs), co-signer failover under combined
//! drop + crash faults, and server-side idempotency for duplicate request
//! deliveries.

use std::sync::mpsc;
use std::time::Duration;

use jaap_coalition::aa::SigningMode;
use jaap_coalition::availability;
use jaap_coalition::scenario::{CoalitionBuilder, OBJECT_O};
use jaap_core::protocol::Operation;
use jaap_crypto::rsa::RsaKeyPair;
use jaap_crypto::session::{SessionConfig, SigningSession};
use jaap_crypto::shared::SharedRsaKey;
use jaap_crypto::threshold::{ThresholdKey, ThresholdPublic, ThresholdShare};
use jaap_crypto::{joint, CryptoError};
use jaap_net::FaultPlan;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dealt_threshold(m: usize, n: usize, seed: u64) -> (ThresholdPublic, Vec<ThresholdShare>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let kp = RsaKeyPair::generate(&mut rng, 192).expect("keygen");
    ThresholdKey::deal(&mut rng, &kp, m, n).expect("deal")
}

/// A config with enough retry budget that a 20% per-message drop rate
/// cannot plausibly exhaust it (per-round request+reply success is 0.64;
/// nine rounds leave ~1e-4 residual failure probability).
fn retry_heavy() -> SessionConfig {
    SessionConfig {
        round_timeout: Duration::from_millis(60),
        max_retries: 8,
        backoff_base: Duration::from_millis(2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The executable §3.3 law: a 2-of-4 threshold session (driven by the
    /// first live domain, with failover) succeeds **iff** at least 2
    /// domains are live. Crash-stop faults only, so the equivalence is
    /// exact, not statistical.
    #[test]
    fn threshold_signing_succeeds_iff_quorum_live(mask in 1u8..16) {
        let (public, shares) = dealt_threshold(2, 4, 7000 + u64::from(mask));
        let live: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).collect();
        let requestor = live[0];
        let mut faults = FaultPlan::reliable();
        for i in 0..4 {
            if !live.contains(&i) {
                faults = faults.with_crash(i, 0);
            }
        }
        let result = SigningSession::sign_threshold(
            &public,
            &shares,
            requestor,
            b"iff",
            faults,
            &SessionConfig::fast(),
        );
        if live.len() >= 2 {
            let (sig, report, _) = result.expect("quorum live: must sign");
            prop_assert!(public.verify(b"iff", &sig));
            prop_assert!(report.responsive.iter().all(|i| live.contains(i)));
        } else {
            prop_assert_eq!(
                result.unwrap_err(),
                CryptoError::QuorumUnreachable { responsive: 1, needed: 2 }
            );
        }
    }
}

#[test]
fn networked_availability_agrees_with_analytic() {
    // The real signing sessions, sampled over random up/down patterns,
    // must reproduce the binomial model within Monte-Carlo error
    // (80 trials at p ≈ 0.9: 4σ ≈ 0.14).
    let empirical = availability::networked(3, 2, 0.8, 80, 42);
    let model = availability::analytic(3, 2, 0.8);
    assert!(
        (empirical - model).abs() < 0.15,
        "sessions {empirical} vs analytic {model}"
    );
}

#[test]
fn lossy_network_fails_fast_instead_of_hanging() {
    // Regression guard: `sign_over_network` under heavy loss must return
    // QuorumUnreachable within its bounded session deadline — the
    // watchdog channel would time out if any party hung.
    let mut rng = StdRng::seed_from_u64(7100);
    let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = joint::sign_over_network(
            &public,
            &shares,
            0,
            b"lossy",
            FaultPlan::seeded(9).with_drop(0.9),
        );
        let _ = tx.send(result);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("signing must terminate — a hang here is the bug this test guards against");
    match result {
        Err(CryptoError::QuorumUnreachable { responsive, needed }) => {
            assert_eq!(needed, 3);
            assert!(responsive < 3);
        }
        Ok(_) => {} // astronomically unlikely under 90% loss, but legal
        Err(e) => panic!("expected QuorumUnreachable, got {e}"),
    }
}

#[test]
fn threshold_completes_via_failover_under_drop_and_crash() {
    // Acceptance: drop_prob = 0.2 plus one crashed co-signer — a 2-of-3
    // threshold session still completes, by failing over to the standby.
    let (public, shares) = dealt_threshold(2, 3, 7200);
    let faults = FaultPlan::seeded(11).with_drop(0.2).with_crash(1, 0);
    let (sig, report, _) =
        SigningSession::sign_threshold(&public, &shares, 0, b"degraded", faults, &retry_heavy())
            .expect("2-of-3 must survive one crashed co-signer");
    assert!(public.verify(b"degraded", &sig));
    assert!(
        report.reroutes.contains(&(1, 2)),
        "expected failover 1→2, got {:?}",
        report.reroutes
    );
    assert!(report.summary().contains("failing over to standby 2"));
}

#[test]
fn compound_reports_accurate_counts_under_drop_and_crash() {
    // Acceptance: same fault plan, but n-of-n compound signing has no
    // standbys — it must fail with *accurate* responsive/needed counts
    // (parties 0 and 2 contribute; crashed party 1 never does).
    let mut rng = StdRng::seed_from_u64(7300);
    let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
    let faults = FaultPlan::seeded(11).with_drop(0.2).with_crash(1, 0);
    let err = SigningSession::sign_compound(&public, &shares, 0, b"doomed", faults, &retry_heavy())
        .unwrap_err();
    assert_eq!(
        err,
        CryptoError::QuorumUnreachable {
            responsive: 2,
            needed: 3
        }
    );
}

#[test]
fn coalition_degrades_gracefully_when_signing_unavailable() {
    // E6 networked path: with a domain crashed, the request does not error
    // or hang — the server records an Unavailable-style denial whose audit
    // entry carries the signing session's retry trace.
    let mut c = CoalitionBuilder::new()
        .key_bits(192)
        .seed(7400)
        .build()
        .expect("coalition");
    c.aa_mut().set_signing_mode(SigningMode::Networked);
    c.set_session_config(SessionConfig::fast());
    c.set_fault_plan(FaultPlan::reliable().with_crash(1, 0));
    let d = c
        .request_write(&["User_D1", "User_D2"])
        .expect("degraded, not failed");
    assert!(!d.granted);
    assert!(d.unavailable);
    assert!(d
        .detail
        .as_deref()
        .expect("detail")
        .contains("quorum unreachable"));
    let entry = c.server().audit_log().back().expect("audited");
    assert!(!entry.granted);
    let trace = entry.retry_trace.as_deref().expect("retry trace");
    assert!(trace.contains("unresponsive"), "trace: {trace}");
    // The same coalition recovers once the network heals.
    c.set_fault_plan(FaultPlan::reliable());
    let d = c.request_write(&["User_D1", "User_D2"]).expect("healed");
    assert!(d.granted);
    assert!(!d.unavailable);
}

#[test]
fn duplicate_request_delivery_is_idempotent() {
    // A network-level redelivery of the same joint request must not log
    // twice or apply the write twice.
    let mut c = CoalitionBuilder::new()
        .key_bits(192)
        .seed(7500)
        .build()
        .expect("coalition");
    c.server_mut().set_replay_protection(true).expect("config");
    let req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", OBJECT_O))
        .expect("request");
    let first = c.server_mut().handle_request(&req);
    let second = c.server_mut().handle_request(&req);
    assert!(first.granted);
    assert_eq!(first.granted, second.granted);
    assert_eq!(c.server().audit_log().len(), 1, "one entry per request");
    assert_eq!(
        c.server().object(OBJECT_O).expect("object").version,
        1,
        "duplicate delivery must not double-apply the write"
    );
    // A *fresh* request (new submission time ⇒ new digest) is processed.
    c.advance_time(jaap_core::syntax::Time(11)).expect("clock");
    let req2 = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", OBJECT_O))
        .expect("request");
    assert!(c.server_mut().handle_request(&req2).granted);
    assert_eq!(c.server().audit_log().len(), 2);
    assert_eq!(c.server().object(OBJECT_O).expect("object").version, 2);
}
