//! End-to-end checks of the observability layer: per-phase decision
//! latencies, decision/replay/cache counters, and the JSON export — plus
//! the contract that a server with metrics detached behaves identically.

use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_wal::MemStore;

fn coalition(seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("build")
}

#[test]
fn handle_request_populates_phase_histograms_and_counters() {
    let mut c = coalition(0xC0);
    let registry = c.enable_metrics();
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    assert!(!c.request_write(&["User_D3"]).expect("w1").granted);

    assert_eq!(registry.counter_value("server.decisions"), Some(2));
    assert_eq!(registry.counter_value("server.granted"), Some(1));
    assert_eq!(registry.counter_value("server.denied"), Some(1));

    for name in [
        "server.phase.recency_ns",
        "server.phase.crypto_ns",
        "server.phase.acl_ns",
        "server.phase.logic_ns",
        "server.decision_ns",
    ] {
        let snap = registry
            .histogram_snapshot(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(snap.count, 2, "{name} must time both decisions");
    }
    // Sanity on the ordering: the crypto phase dominates the ACL lookup.
    let crypto = registry
        .histogram_snapshot("server.phase.crypto_ns")
        .expect("crypto");
    let acl = registry
        .histogram_snapshot("server.phase.acl_ns")
        .expect("acl");
    assert!(
        crypto.sum > acl.sum,
        "RSA verification outweighs an ACL scan"
    );
}

/// Journal instruments: every belief-changing event appends (counted, with
/// bytes and latency), and snapshots are counted separately.
#[test]
fn journal_appends_and_snapshots_are_instrumented() {
    let mut c = coalition(0xC7);
    let registry = c.enable_metrics();
    c.server_mut()
        .attach_journal(Box::new(MemStore::new()))
        .expect("attach");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    c.advance_time(Time(11)).expect("clock");
    assert!(!c.request_write(&["User_D3"]).expect("w1").granted);

    let appends = registry
        .counter_value("server.journal.appends")
        .expect("appends");
    // Two requests (certs + decision for the first, at least a decision
    // for the second) and a clock advance.
    assert!(appends >= 4, "expected >= 4 appends, got {appends}");
    let bytes = registry
        .counter_value("server.journal.bytes")
        .expect("bytes");
    assert!(bytes > 0);
    let lat = registry
        .histogram_snapshot("server.journal.append_ns")
        .expect("append_ns");
    assert_eq!(lat.count, appends, "every append is timed");
    // The bootstrap snapshot written at attach time is the first one.
    assert_eq!(registry.counter_value("server.journal.snapshots"), Some(1));

    c.server_mut().snapshot_journal().expect("snapshot");
    assert_eq!(registry.counter_value("server.journal.snapshots"), Some(2));
}

#[test]
fn verify_batch_times_crypto_phase_across_workers() {
    let mut c = coalition(0xC1);
    let registry = c.enable_metrics();
    let mut requests = Vec::new();
    for t in 0..4 {
        c.advance_time(Time(20 + t)).expect("clock");
        requests.push(
            c.build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
                .expect("request"),
        );
    }
    let decisions = c.server_mut().verify_batch(&requests, 3);
    assert!(decisions.iter().all(|d| d.granted));
    let crypto = registry
        .histogram_snapshot("server.phase.crypto_ns")
        .expect("crypto");
    assert_eq!(crypto.count, 4, "every request's crypto phase is timed");
    assert_eq!(registry.counter_value("server.decisions"), Some(4));
}

#[test]
fn cache_counters_are_mirrored_into_the_registry() {
    let mut c = coalition(0xC2);
    let registry = c.enable_metrics();
    c.set_verification_cache(true).expect("config");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("a").granted);
    c.advance_time(Time(12)).expect("clock");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("b").granted);
    // Second pass serves 2 identity certs + 1 threshold AC from memory.
    assert_eq!(registry.counter_value("server.cache.hits"), Some(3));
    let stats = c.server().verification_cache().expect("cache on").stats();
    assert_eq!(stats.hits, 3, "registry and CacheStats agree");
}

#[test]
fn json_export_contains_pipeline_metrics() {
    let mut c = coalition(0xC3);
    let registry = c.enable_metrics();
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    let json = registry.to_json();
    for needle in [
        "\"server.decisions\":1",
        "\"server.phase.crypto_ns\"",
        "\"server.decision_ns\"",
        "\"p99\"",
        "\"buckets\"",
    ] {
        assert!(json.contains(needle), "export missing {needle}: {json}");
    }
}

#[test]
fn disabling_metrics_restores_an_unobserved_server() {
    let mut c = coalition(0xC4);
    let registry = c.enable_metrics();
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    assert_eq!(registry.counter_value("server.decisions"), Some(1));
    c.disable_metrics();
    c.advance_time(Time(12)).expect("clock");
    assert!(
        c.request_write(&["User_D1", "User_D2"])
            .expect("w2")
            .granted
    );
    // The detached registry saw nothing further.
    assert_eq!(registry.counter_value("server.decisions"), Some(1));
    assert!(c.metrics().is_none());
}

#[test]
fn decisions_identical_with_and_without_metrics() {
    let mut observed = coalition(0xC5);
    let mut plain = coalition(0xC5);
    observed.enable_metrics();
    for (signers, read) in [
        (vec!["User_D1", "User_D2"], false),
        (vec!["User_D3"], false),
        (vec!["User_D2"], true),
    ] {
        let op = if read {
            Operation::new("read", "Object O")
        } else {
            Operation::new("write", "Object O")
        };
        let req = observed.build_request(&signers, op).expect("request");
        let a = observed.server_mut().handle_request(&req);
        let b = plain.server_mut().handle_request(&req);
        assert_eq!(a.granted, b.granted);
        assert_eq!(a.detail, b.detail);
        assert_eq!(a.signature_checks, b.signature_checks);
    }
}

#[test]
fn reset_server_keeps_the_registry_wired() {
    let mut c = coalition(0xC6);
    let registry = c.enable_metrics();
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    c.reset_server();
    assert!(
        c.request_write(&["User_D1", "User_D2"])
            .expect("w2")
            .granted
    );
    assert_eq!(registry.counter_value("server.decisions"), Some(2));
}
