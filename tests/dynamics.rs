//! Experiment E10: coalition dynamics — joins and leaves with re-keying
//! and certificate re-distribution (§6).

use jaap_coalition::scenario::CoalitionBuilder;

fn coalition(seed: u64) -> jaap_coalition::scenario::Coalition {
    CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

#[test]
fn join_leave_join_sequence_stays_consistent() {
    let mut c = coalition(4001);
    c.join_domain("D4").expect("join D4");
    c.join_domain("D5").expect("join D5");
    assert_eq!(c.domains().len(), 5);
    assert!(c.request_write(&["User_D4", "User_D5"]).expect("w").granted);

    c.leave_domain("D1").expect("leave D1");
    assert_eq!(c.domains().len(), 4);
    assert!(matches!(
        c.request_write(&["User_D1", "User_D2"]),
        Err(jaap_coalition::CoalitionError::Config(_))
    ));
    assert!(c.request_write(&["User_D2", "User_D4"]).expect("w").granted);
}

#[test]
fn every_join_changes_the_shared_key() {
    let mut c = coalition(4002);
    let mut seen = vec![c.aa().public().key_id()];
    for name in ["D4", "D5", "D6"] {
        c.join_domain(name).expect("join");
        let id = c.aa().public().key_id();
        assert!(!seen.contains(&id), "each re-key must produce a new key");
        seen.push(id);
    }
}

#[test]
fn dynamics_report_counts_costs() {
    let mut c = coalition(4003);
    let report = c.join_domain("D4").expect("join");
    assert_eq!(report.domain_count, 4);
    assert_eq!(report.certs_revoked, 2, "standing write+read ACs");
    assert_eq!(report.certs_reissued, 2);
    assert!(report.total_wall >= report.rekey_wall);
}

#[test]
fn departed_domains_share_is_useless_against_new_key() {
    use jaap_crypto::collusion::{collude_additive, CollusionOutcome};

    let mut c = coalition(4004);
    // D2's share of the *old* key.
    let old_share = c.aa().share_of("D2").expect("share").clone();
    let old_public = c.aa().public().clone();
    c.leave_domain("D2").expect("leave");
    // The old share belongs to the old key, which no certificate the server
    // now accepts is signed with; and alone it never had signing power.
    let outcome = collude_additive(&old_public, &[&old_share]);
    assert_eq!(outcome, CollusionOutcome::Nothing);
    assert_ne!(c.aa().public().key_id(), old_public.key_id());
}

#[test]
fn n_of_n_threshold_tracks_membership_on_leave() {
    // 2-of-3 write policy; after a leave the subject shrinks to 2 members
    // with threshold 2 (capped), so both remaining users must sign.
    let mut c = coalition(4005);
    c.leave_domain("D3").expect("leave");
    assert!(!c.request_write(&["User_D1"]).expect("w").granted);
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn growing_coalition_rekey_cost_grows_with_n() {
    // Structural check for E10: each join revokes and reissues the same
    // number of standing certs, but the joint signature involves more
    // parties — visible as share count growth.
    let mut c = coalition(4006);
    assert_eq!(c.aa().shares().len(), 3);
    c.join_domain("D4").expect("join");
    assert_eq!(c.aa().shares().len(), 4);
    c.join_domain("D5").expect("join");
    assert_eq!(c.aa().shares().len(), 5);
}
