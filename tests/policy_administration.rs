//! Joint administration of *policy objects* (§4.1/§4.3): "the setting and
//! updating of policy objects of Object O" is itself mediated by threshold
//! attribute certificates — the coalition's consensus requirement applies
//! to the ACL, not just the data.

use jaap_coalition::scenario::CoalitionBuilder;
use jaap_core::protocol::Acl;
use jaap_core::syntax::{GroupId, Time};

fn coalition(seed: u64) -> jaap_coalition::scenario::Coalition {
    CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

/// The new policy used by the tests: writes become 3-of-3 (G_write_strict).
fn strict_acl() -> Acl {
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_read"), "read")
        .permit(GroupId::new("G_policy_admin"), "set-policy");
    // Note: no G_write entry — writes are disabled by the new policy.
    acl
}

#[test]
fn jointly_authorized_policy_update_takes_effect() {
    let mut c = coalition(8001);
    c.permit_on_object(GroupId::new("G_policy_admin"), "set-policy")
        .expect("bootstrap");
    let admin_ac = c.issue_policy_admin_ac(2).expect("admin ac");

    // Before the update: writes work.
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);

    // Two users jointly update the policy object.
    let d = c
        .request_set_policy(&["User_D1", "User_D3"], &admin_ac, strict_acl())
        .expect("set-policy");
    assert!(d.granted, "{:?}", d.detail);

    // After the update: the write entry is gone, writes are refused; reads
    // still work.
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    assert!(c.request_read(&["User_D2"]).expect("r").granted);
}

#[test]
fn single_user_cannot_update_policy() {
    let mut c = coalition(8002);
    c.permit_on_object(GroupId::new("G_policy_admin"), "set-policy")
        .expect("bootstrap");
    let admin_ac = c.issue_policy_admin_ac(2).expect("admin ac");

    let d = c
        .request_set_policy(&["User_D2"], &admin_ac, strict_acl())
        .expect("set-policy");
    assert!(!d.granted, "policy changes need consensus too");
    // The ACL is unchanged: writes still work.
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn set_policy_without_standing_acl_entry_is_refused() {
    // No bootstrap: (G_policy_admin, set-policy) is not on the ACL.
    let mut c = coalition(8003);
    let admin_ac = c.issue_policy_admin_ac(2).expect("admin ac");
    let d = c
        .request_set_policy(&["User_D1", "User_D2"], &admin_ac, strict_acl())
        .expect("set-policy");
    assert!(!d.granted);
}

#[test]
fn policy_admin_ac_is_revocable_like_any_other() {
    let mut c = coalition(8004);
    c.permit_on_object(GroupId::new("G_policy_admin"), "set-policy")
        .expect("bootstrap");
    let admin_ac = c.issue_policy_admin_ac(2).expect("admin ac");

    // RA revokes the admin certificate.
    c.advance_time(Time(20)).expect("clock");
    let rev = c
        .ra()
        .revoke_attribute(
            &admin_ac.subject,
            admin_ac.group.clone(),
            Time(20),
            Time(20),
        )
        .expect("revoke");
    c.server_mut()
        .admit_attribute_revocation(&rev)
        .expect("admit");
    c.advance_time(Time(21)).expect("clock");

    let d = c
        .request_set_policy(&["User_D1", "User_D2"], &admin_ac, strict_acl())
        .expect("set-policy");
    assert!(!d.granted, "revoked admin certificate must not authorize");
}

#[test]
fn policy_update_survives_share_refresh() {
    // Refreshing the AA's key shares (§6) does not invalidate standing
    // certificates — same public key, same signatures.
    let mut c = coalition(8005);
    c.permit_on_object(GroupId::new("G_policy_admin"), "set-policy")
        .expect("bootstrap");
    let admin_ac = c.issue_policy_admin_ac(2).expect("admin ac");
    c.refresh_aa_shares(8005).expect("refresh");
    let d = c
        .request_set_policy(&["User_D2", "User_D3"], &admin_ac, strict_acl())
        .expect("set-policy");
    assert!(d.granted);
    // And the refreshed shares still jointly sign new certificates.
    let new_ac = c.issue_policy_admin_ac(3).expect("reissue");
    assert!(new_ac.verify(c.aa().public()).is_ok());
}
