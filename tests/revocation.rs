//! Experiment E9: revocation reasoning (§4.3 "Reasoning about revocation").
//!
//! Believe-until-revoked: once server P admits
//! `RA says ¬(CP′ ⇒ G_write)`, the membership belief is unavailable for
//! all later times, and previously grantable requests are refused.

use jaap_coalition::scenario::CoalitionBuilder;
use jaap_core::syntax::Time;

fn coalition(seed: u64) -> jaap_coalition::scenario::Coalition {
    CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

#[test]
fn grant_before_deny_after() {
    let mut c = coalition(3001);
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(21)).expect("clock");
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn revocation_of_write_leaves_read_intact() {
    let mut c = coalition(3002);
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(21)).expect("clock");
    assert!(c.request_read(&["User_D1"]).expect("r").granted);
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn revocation_has_upper_bound_infinity() {
    // Paper footnote 2: "all revocation certificates have an upper bound of
    // infinity" — re-presenting the same certificate much later still
    // fails.
    let mut c = coalition(3003);
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(500)).expect("clock");
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn revocation_from_untrusted_ra_is_rejected() {
    use jaap_pki::RevocationAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut c = coalition(3004);
    let mut rng = StdRng::seed_from_u64(99);
    let rogue = RevocationAuthority::new("RogueRA", "AA", &mut rng, 192).expect("rogue");
    let rev = rogue
        .revoke_attribute(
            &c.write_ac().subject.clone(),
            c.write_ac().group.clone(),
            Time(20),
            Time(20),
        )
        .expect("sign");
    c.advance_time(Time(20)).expect("clock");
    let res = c.server_mut().admit_attribute_revocation(&rev);
    assert!(res.is_err(), "rogue RA revocations must be rejected");
    // Access unaffected.
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn identity_revocation_disables_a_single_signer() {
    let mut c = coalition(3005);
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);

    // CA_D1 revokes User_D1's identity certificate.
    c.advance_time(Time(20)).expect("clock");
    let user_key = c.user("User_D1").expect("user").public().clone();
    let rev = c.domains()[0]
        .ca()
        .revoke_identity("User_D1", &user_key, Time(20), Time(20))
        .expect("revoke");
    c.server_mut()
        .admit_identity_revocation(&rev)
        .expect("admit");
    c.advance_time(Time(21)).expect("clock");

    // User_D1 can no longer be counted toward the threshold...
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    // ...but the other two still satisfy 2-of-3.
    assert!(c.request_write(&["User_D2", "User_D3"]).expect("w").granted);
}

#[test]
fn requests_predating_revocation_still_evaluate_against_request_time() {
    // The believe-until-revoked condition blocks beliefs from the
    // revocation time onward; a request whose statements and submission
    // predate the revocation but is *processed* after it must also be
    // refused (the paper's condition: unavailable for t4 >= t8).
    let mut c = coalition(3006);
    let req = c
        .build_request(
            &["User_D1", "User_D2"],
            jaap_core::protocol::Operation::new("write", jaap_coalition::scenario::OBJECT_O),
        )
        .expect("request");
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(25)).expect("clock");
    let d = c.server_mut().handle_request(&req);
    assert!(
        !d.granted,
        "decision time is after revocation; membership no longer believed"
    );
}

#[test]
fn audit_log_reflects_revocation_transition() {
    let mut c = coalition(3007);
    let _ = c.request_write(&["User_D1", "User_D2"]).expect("w1");
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(21)).expect("clock");
    let _ = c.request_write(&["User_D1", "User_D2"]).expect("w2");
    let log = c.server().audit_log();
    assert_eq!(log.len(), 2);
    assert!(log[0].granted);
    assert!(!log[1].granted);
}
