//! Cross-crate cryptographic end-to-end flows: distributed keygen →
//! threshold conversion → signing under faults → refresh.

use jaap_crypto::shared::{SharedRsaKey, CALIBRATION_MESSAGE};
use jaap_crypto::{joint, refresh, threshold};
use jaap_net::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn bf_keygen_then_networked_joint_signature() {
    let (public, shares, stats) = SharedRsaKey::generate(96, 3, 6001).expect("keygen");
    assert!(stats.wall.as_nanos() > 0);
    let (sig, net) = joint::sign_over_network(
        &public,
        &shares,
        1,
        b"threshold attribute certificate body",
        FaultPlan::reliable(),
    )
    .expect("sign");
    assert!(public.verify(b"threshold attribute certificate body", &sig));
    assert_eq!(net.messages_sent, 6); // 2 requests + 2 share replies + 2 done notices
}

#[test]
fn joint_signature_tolerates_duplicated_messages() {
    // Replayed (duplicated) messages must not corrupt the protocol: the
    // per-sender receive discipline simply ignores extras.
    let (public, shares, _) = SharedRsaKey::generate(64, 3, 6002).expect("keygen");
    let plan = FaultPlan::seeded(3).with_duplicate(1.0);
    let (sig, _) = joint::sign_over_network(&public, &shares, 0, b"replayed", plan).expect("sign");
    assert!(public.verify(b"replayed", &sig));
}

#[test]
fn bf_keygen_then_threshold_conversion_and_partial_signing() {
    let (public, shares, _) = SharedRsaKey::generate(64, 3, 6003).expect("keygen");
    let mut rng = StdRng::seed_from_u64(1);
    let (tp, tshares) =
        threshold::ThresholdKey::from_additive(&mut rng, &public, &shares, 2).expect("convert");
    // Any 2 of 3 can now sign even though keygen was 3-of-3.
    let ss: Vec<_> = [0usize, 2]
        .iter()
        .map(|&i| tshares[i].sign_share(b"m-of-n").expect("share"))
        .collect();
    let sig = threshold::combine(&tp, b"m-of-n", &ss).expect("combine");
    assert!(public.verify(b"m-of-n", &sig));
}

#[test]
fn refresh_over_network_then_sign() {
    let (public, shares, _) = SharedRsaKey::generate(64, 3, 6004).expect("keygen");
    let (refreshed, stats) = refresh::refresh_over_network(&shares, 6004).expect("refresh");
    assert_eq!(stats.messages_sent, 6);
    let sig = joint::sign_locally(&public, &refreshed, b"after refresh").expect("sign");
    assert!(public.verify(b"after refresh", &sig));
    // Mixed old/new shares break.
    let mixed = vec![
        shares[0].clone(),
        refreshed[1].clone(),
        refreshed[2].clone(),
    ];
    assert!(joint::sign_locally(&public, &mixed, b"x").is_err());
}

#[test]
fn calibration_message_is_reserved_but_signable() {
    // The keygen protocol jointly signed CALIBRATION_MESSAGE to find the
    // correction; signing it again must still verify.
    let (public, shares, _) = SharedRsaKey::generate(64, 3, 6005).expect("keygen");
    let sig = joint::sign_locally(&public, &shares, CALIBRATION_MESSAGE).expect("sign");
    assert!(public.verify(CALIBRATION_MESSAGE, &sig));
}

#[test]
fn five_party_bf_keygen_and_signature() {
    let (public, shares, stats) = SharedRsaKey::generate(64, 5, 6006).expect("keygen");
    assert_eq!(public.n_parties(), 5);
    assert!(stats.network.messages_sent > 0);
    let sig = joint::sign_locally(&public, &shares, b"five parties").expect("sign");
    assert!(public.verify(b"five parties", &sig));
    // 4 of 5 shares are insufficient.
    let partial: Vec<_> = shares[..4]
        .iter()
        .map(|s| joint::produce_share(s, b"five parties").expect("share"))
        .collect();
    assert!(joint::combine(&public, b"five parties", &partial).is_err());
}
