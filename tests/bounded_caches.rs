//! Eviction semantics of the two bounded server-side maps: the
//! replay-protection `seen` map and the certificate [`VerifyCache`].
//!
//! The invariant under test: **bounding a cache never changes a
//! decision**. Evicting a replay digest makes the request re-processable
//! (it is re-evaluated against *current* beliefs — which, after a
//! revocation, is exactly what the paper's §4.3 recency discussion wants);
//! evicting a verification entry only forces a re-verification of the same
//! bytes. The proptest at the bottom drives that equivalence across random
//! request schedules.

use jaap_coalition::cache::VerifyCache;
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use proptest::prelude::*;

fn coalition(seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("build")
}

/// A duplicate delivery replays the remembered decision verbatim — but
/// once the digest is evicted under capacity pressure, the same bytes are
/// *re-evaluated*, and a revocation admitted in the meantime now denies
/// them. Replay protection is a dedup window, not a grant oracle.
#[test]
fn revoked_request_is_replayed_until_evicted_then_reevaluated() {
    let mut c = coalition(0xB0);
    c.server_mut().set_replay_protection(true).expect("config");
    let registry = c.enable_metrics();

    let req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    let first = c.server_mut().handle_request(&req);
    assert!(first.granted);
    assert_eq!(c.server().object("Object O").expect("obj").version, 1);

    // Revoke the write AC, then replay the exact same request bytes: the
    // dedup window returns the original decision with no second audit
    // entry and no second version bump.
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(21)).expect("clock");
    let replayed = c.server_mut().handle_request(&req);
    assert!(replayed.granted, "dedup returns the original decision");
    assert_eq!(c.server().audit_log().len(), 1);
    assert_eq!(c.server().object("Object O").expect("obj").version, 1);
    assert_eq!(registry.counter_value("server.replay.hits"), Some(1));

    // Push the digest out of the (now tiny) window...
    c.server_mut()
        .set_replay_protection_capacity(1)
        .expect("config");
    for t in 30..32 {
        c.advance_time(Time(t)).expect("clock");
        let filler = c
            .build_request(&["User_D1"], Operation::new("read", "Object O"))
            .expect("filler");
        c.server_mut().handle_request(&filler);
    }
    assert!(
        registry
            .counter_value("server.replay.evictions")
            .unwrap_or(0)
            >= 1
    );

    // ...and the replayed request is re-processed against current beliefs:
    // the revocation now denies it, and the denial is audited.
    let reevaluated = c.server_mut().handle_request(&req);
    assert!(
        !reevaluated.granted,
        "an evicted digest must be re-evaluated, and the revocation denies it"
    );
    assert_eq!(
        c.server().object("Object O").expect("obj").version,
        1,
        "no further version bump"
    );
}

/// The audit log is the third bounded server-side structure: oldest-first
/// rotation past the configured capacity, with evictions counted — and the
/// retained suffix is exactly the newest entries.
#[test]
fn audit_log_rotates_oldest_first_past_capacity() {
    let mut c = coalition(0xB4);
    c.server_mut().set_audit_capacity(3).expect("config");
    let registry = c.enable_metrics();
    for t in 0..7 {
        c.advance_time(Time(20 + t)).expect("clock");
        let req = c
            .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
            .expect("request");
        assert!(c.server_mut().handle_request(&req).granted);
    }
    let audit = c.server().audit_log();
    assert_eq!(audit.len(), 3, "audit log must respect its capacity");
    let times: Vec<i64> = audit.iter().map(|e| e.at.0).collect();
    assert_eq!(times, vec![24, 25, 26], "newest entries are retained");
    assert_eq!(c.server().audit_evictions(), 4);
    assert_eq!(registry.counter_value("server.audit.evictions"), Some(4));
    // Shrinking the bound trims immediately.
    c.server_mut().set_audit_capacity(1).expect("config");
    assert_eq!(c.server().audit_log().len(), 1);
    assert_eq!(c.server().audit_log()[0].at.0, 26);
    assert_eq!(c.server().audit_evictions(), 6);
}

#[test]
fn seen_map_respects_capacity_under_pressure() {
    let mut c = coalition(0xB1);
    c.server_mut().set_replay_protection(true).expect("config");
    c.server_mut()
        .set_replay_protection_capacity(3)
        .expect("config");
    let registry = c.enable_metrics();
    for t in 0..8 {
        c.advance_time(Time(20 + t)).expect("clock");
        let req = c
            .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
            .expect("request");
        assert!(c.server_mut().handle_request(&req).granted);
    }
    assert_eq!(c.server().replay_entries(), 3);
    assert_eq!(registry.counter_value("server.replay.evictions"), Some(5));
    assert_eq!(registry.counter_value("server.decisions"), Some(8));
}

#[test]
fn verify_cache_eviction_under_pressure_still_grants() {
    let mut c = coalition(0xB2);
    c.server_mut().set_verification_cache(true).expect("config");
    // Each write request presents 3 cacheable certificates (2 identity +
    // 1 threshold AC); capacity 2 forces evictions on every pass.
    c.server()
        .verification_cache()
        .expect("cache on")
        .set_capacity(Some(2));
    for t in 0..4 {
        c.advance_time(Time(20 + t)).expect("clock");
        let d = c.request_write(&["User_D1", "User_D2"]).expect("write");
        assert!(d.granted, "decisions are capacity-independent");
    }
    let stats = c.server().verification_cache().expect("cache on").stats();
    assert!(stats.evictions > 0, "capacity pressure must evict");
    assert!(stats.entries <= 2, "bound holds");
}

/// The standalone cache bound: filling far past capacity keeps the live
/// set at the bound and counts every displaced entry.
#[test]
fn verify_cache_never_exceeds_capacity() {
    let cache = VerifyCache::with_capacity(Some(8));
    for i in 0..100 {
        cache.insert(
            (format!("digest-{i}"), "K".to_string()),
            jaap_core::syntax::Message::data("m"),
            Time(1_000),
            vec![],
            None,
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 8);
    assert_eq!(stats.evictions, 92);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bounded caches never change decisions: the same request schedule
    /// through (a) a server with a tiny verification cache and a tiny
    /// replay window and (b) a server with an unbounded cache and a large
    /// window produces identical grant/deny outcomes — only the hit/miss
    /// split may differ.
    #[test]
    fn bounded_and_unbounded_caches_agree_on_decisions(
        schedule in proptest::collection::vec(
            (0usize..3, 0usize..3, any::<bool>()),
            1..10,
        ),
    ) {
        let users = ["User_D1", "User_D2", "User_D3"];
        let mut bounded = coalition(0xB3);
        let mut unbounded = coalition(0xB3);
        for c in [&mut bounded, &mut unbounded] {
            c.server_mut().set_replay_protection(true).expect("config");
            c.server_mut().set_verification_cache(true).expect("config");
        }
        bounded.server_mut().set_replay_protection_capacity(1).expect("config");
        bounded
            .server()
            .verification_cache()
            .expect("cache on")
            .set_capacity(Some(1));
        unbounded
            .server()
            .verification_cache()
            .expect("cache on")
            .set_capacity(None);

        for (i, &(a, b, read)) in schedule.iter().enumerate() {
            let t = Time(20 + i as i64);
            bounded.advance_time(t).expect("clock");
            unbounded.advance_time(t).expect("clock");
            let signers: Vec<&str> = if a == b {
                vec![users[a]]
            } else {
                vec![users[a], users[b]]
            };
            let op = if read {
                Operation::new("read", "Object O")
            } else {
                Operation::new("write", "Object O")
            };
            let req = bounded
                .build_request(&signers, op)
                .expect("request");
            let db = bounded.server_mut().handle_request(&req);
            let du = unbounded.server_mut().handle_request(&req);
            prop_assert_eq!(db.granted, du.granted, "step {}: grant mismatch", i);
            prop_assert_eq!(db.detail, du.detail, "step {}: detail mismatch", i);
            prop_assert_eq!(
                db.signature_checks + db.cached_signature_checks,
                du.signature_checks + du.cached_signature_checks,
                "step {}: total checks mismatch", i
            );
        }
        prop_assert!(bounded.server().replay_entries() <= 1);
    }
}
