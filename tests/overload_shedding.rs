//! Robustness semantics: typed load shedding and fail-stop poisoning.
//!
//! Three claims, each load-bearing for the overload/fault story:
//!
//! 1. **Sheds are Indeterminate, not Deny, and never pollute derived
//!    state.** A shed decision (overload, deadline, poisoned journal) is
//!    typed, audited, and leaves the verification cache, derivation
//!    memo, and replay window exactly as it found them — re-presenting
//!    the same request once the pressure clears gets a full, fresh
//!    evaluation.
//! 2. **Shed audit lines are volatile.** They are distinguishable from
//!    policy denials in the live audit log and do not survive snapshot
//!    compaction into the journal.
//! 3. **A poisoned server recovers to a twin of its durable prefix.**
//!    After an injected fsync failure wedges the journal, recovery over
//!    the medium's surviving bytes yields a server decision-for-decision
//!    identical to one that only ever ran the completed operations —
//!    checked property-style over random scripts and fault points.

use std::time::Instant;

use jaap_coalition::concurrent::ConcurrentServer;
use jaap_coalition::request::{assemble, JointAccessRequest};
use jaap_coalition::scenario::{Coalition, CoalitionBuilder, OBJECT_O};
use jaap_coalition::server::{CoalitionServer, ServerDecision, ShedReason};
use jaap_coalition::CoalitionError;
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_wal::{FaultyStore, MemStore, StoreFaultPlan};
use proptest::prelude::*;

fn coalition(seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

/// Builds a joint request at an explicit time, so probes against twin
/// servers stamp identical bytes regardless of either server's clock.
fn request_at(c: &Coalition, signers: &[&str], action: &str, at: Time) -> JointAccessRequest {
    let users: Vec<_> = signers.iter().map(|n| c.user(n).expect("user")).collect();
    let ids = signers
        .iter()
        .map(|n| c.identity_cert(n).expect("cert").clone())
        .collect();
    let ac = if action == "read" {
        c.read_ac().clone()
    } else {
        c.write_ac().clone()
    };
    assemble(
        &users,
        ids,
        vec![ac],
        vec![],
        Operation::new(action, OBJECT_O),
        at,
    )
    .expect("assemble")
}

#[test]
fn expired_deadline_sheds_typed_and_never_touches_derived_state() {
    let mut c = coalition(0x0DE0);
    c.server_mut().set_verification_cache(true).expect("config");
    c.server_mut().set_derivation_memo(true).expect("config");
    c.server_mut().set_replay_protection(true).expect("config");
    let now = c.server().now();
    let req = request_at(&c, &["User_D1"], "read", now);

    // A deadline of "now" is exhausted by the time the pre-crypto gate
    // looks at it: the request must shed typed, before any crypto.
    let expired = req.clone().with_deadline(Instant::now());
    let d = c.server_mut().handle_request(&expired);
    assert_eq!(d.shed, Some(ShedReason::DeadlineExceeded));
    assert!(d.unavailable && !d.granted, "Indeterminate, not Deny");
    assert_eq!(d.signature_checks, 0, "shed before the crypto phase");

    // No derived state recorded the shed: cache cold, memo cold, replay
    // window empty.
    let cache = c.server().verification_cache().expect("cache").stats();
    assert_eq!((cache.hits, cache.misses, cache.entries), (0, 0, 0));
    let memo = c.server().derivation_memo_stats().expect("memo");
    assert_eq!((memo.hits, memo.misses), (0, 0));
    assert_eq!(c.server().replay_entries(), 0);

    // The same request (deadline is delivery metadata, not identity —
    // same digest) now gets a full, fresh evaluation.
    let d2 = c.server_mut().handle_request(&req);
    assert!(d2.granted && d2.shed.is_none());
    assert!(
        d2.signature_checks > 0,
        "evaluated fresh, not served from a shed"
    );
    assert_eq!(c.server().replay_entries(), 1);

    // Audit distinguishes the three outcomes: shed (Indeterminate),
    // grant, and policy Deny.
    let under_threshold = request_at(&c, &["User_D3"], "write", now);
    let denied = c.server_mut().handle_request(&under_threshold);
    assert!(!denied.granted && denied.shed.is_none() && !denied.unavailable);
    let audit = c.server().audit_log();
    assert_eq!(audit.len(), 3);
    assert_eq!(audit[0].shed, Some(ShedReason::DeadlineExceeded));
    assert!(!audit[0].granted);
    assert!(audit[1].granted && audit[1].shed.is_none());
    assert!(!audit[2].granted && audit[2].shed.is_none());
}

#[test]
fn shed_audit_lines_do_not_survive_snapshot_compaction() {
    let mut c = coalition(0x0DE1);
    c.server_mut().set_replay_protection(true).expect("config");
    let store = MemStore::new();
    let handle = store.clone();
    c.server_mut()
        .attach_journal(Box::new(store))
        .expect("attach");

    let now = c.server().now();
    let read_req = request_at(&c, &["User_D1"], "read", now);
    let write_req = request_at(&c, &["User_D3"], "write", now);
    let late_req = request_at(&c, &["User_D2"], "read", now);
    let granted = c.server_mut().handle_request(&read_req);
    assert!(granted.granted);
    let denied = c.server_mut().handle_request(&write_req);
    assert!(!denied.granted && denied.shed.is_none());
    let shed = c
        .server_mut()
        .handle_request(&late_req.with_deadline(Instant::now()));
    assert_eq!(shed.shed, Some(ShedReason::DeadlineExceeded));
    assert_eq!(c.server().audit_log().len(), 3);

    // Compact, then recover from the journal: the grant and the policy
    // Deny survive as audit rows; the volatile shed line does not.
    c.server_mut().snapshot_journal().expect("snapshot");
    let (recovered, _) = CoalitionServer::recover(
        "P",
        c.trust_store(),
        Box::new(MemStore::from_bytes(handle.snapshot())),
    )
    .expect("recover");
    let audit = recovered.audit_log();
    assert_eq!(audit.len(), 2, "the shed line is volatile");
    assert!(audit.iter().all(|e| e.shed.is_none()));
    assert_eq!(
        recovered.replay_entries(),
        c.server().replay_entries(),
        "the replay window survives compaction (sheds never entered it)"
    );
}

#[test]
fn overload_shed_is_typed_audited_and_never_cached() {
    let mut c = coalition(0x0DE2);
    c.server_mut().set_verification_cache(true).expect("config");
    c.server_mut().set_replay_protection(true).expect("config");
    let now = c.server().now();
    let req = request_at(&c, &["User_D1"], "read", now);
    let server = ConcurrentServer::new(c.into_server());
    server.set_inflight_limit(1);

    // Park a permit in the only slot: the gate is full, so the decision
    // sheds typed on the lock-free path.
    let hold = server.acquire_slot().expect("empty gate");
    assert!(server.acquire_slot().is_none(), "gate is full");
    let d = server.decide(&req);
    assert_eq!(d.shed, Some(ShedReason::Overloaded));
    assert!(d.unavailable && !d.granted);
    let cache = server.with_writer(|s| s.verification_cache().expect("cache").stats());
    assert_eq!((cache.hits, cache.misses, cache.entries), (0, 0, 0));
    assert_eq!(server.with_writer(|s| s.replay_entries()), 0);

    // The shed landed in the bounded ring, typed — not in the serial
    // audit log, whose entries are evaluated decisions.
    let ring = server.shed_audit();
    assert_eq!(ring.len(), 1);
    assert_eq!(ring[0].shed, Some(ShedReason::Overloaded));
    assert!(!ring[0].granted);

    // Once the slot frees, the identical request evaluates fully: the
    // shed neither cached a refusal nor burned the request's identity.
    drop(hold);
    let d2 = server.decide(&req);
    assert!(d2.granted && d2.shed.is_none());
    assert!(d2.signature_checks > 0, "fresh evaluation after the shed");
    assert_eq!(server.with_writer(|s| s.replay_entries()), 1);
}

/// A scripted pre-poison mutation: exactly one journal append each, so
/// the injected fsync-failure index maps 1:1 onto a script position.
#[derive(Debug, Clone)]
enum Step {
    Advance(i64),
    Content(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1i64..4).prop_map(Step::Advance),
        any::<u8>().prop_map(Step::Content),
    ]
}

fn apply_step(
    server: &mut CoalitionServer,
    step: &Step,
    clock: &mut i64,
) -> Result<(), CoalitionError> {
    match step {
        Step::Advance(dt) => {
            let to = Time(*clock + dt);
            server.advance_clock(to)?;
            *clock = to.0;
            Ok(())
        }
        Step::Content(b) => server.set_content(OBJECT_O, vec![*b; 6]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random script, random fault point: the server poisons exactly at
    /// the faulted append (or never, if the script is shorter), refuses
    /// typed afterwards, and recovery over the medium's durable bytes is
    /// decision-for-decision a twin of the completed prefix.
    #[test]
    fn poisoned_server_recovers_to_twin_of_durable_prefix(
        steps in proptest::collection::vec(step_strategy(), 1..12),
        fail_after in 0u64..10,
        seed in 0u64..64,
    ) {
        let mut c = coalition(0xF0F0 + seed);
        c.server_mut().set_replay_protection(true).expect("config");
        let base_acl = c.server().objects()[0].acl.clone();
        let medium = MemStore::new();
        let handle = medium.clone();
        let faulty = FaultyStore::new(
            medium,
            StoreFaultPlan::seeded(seed).with_sync_fail_after(fail_after),
        ).expect("plan");
        c.server_mut().attach_journal(Box::new(faulty)).expect("attach");

        let mut clock = c.server().now().0;
        let mut twin_clock = clock;
        let mut completed: Vec<Step> = Vec::new();
        let mut poisoned = false;
        for step in &steps {
            match apply_step(c.server_mut(), step, &mut clock) {
                Ok(()) => completed.push(step.clone()),
                Err(CoalitionError::JournalPoisoned(_)) => { poisoned = true; break; }
                Err(e) => panic!("unexpected pre-poison error: {e}"),
            }
        }
        // One append per step: poison fires iff the script reaches the
        // scheduled fault, and everything before it completed.
        prop_assert_eq!(poisoned, steps.len() as u64 > fail_after);
        prop_assert_eq!(completed.len() as u64, (steps.len() as u64).min(fail_after));

        if poisoned {
            prop_assert!(c.server().poisoned().is_some(), "poison is sticky");
            // Mutations refuse typed; decisions shed typed; no effects.
            let clock_now = c.server().now();
            let refused = c.server_mut().advance_clock(Time(clock + 100));
            prop_assert!(matches!(refused, Err(CoalitionError::JournalPoisoned(_))));
            prop_assert_eq!(c.server().now(), clock_now);
            let probe = request_at(&c, &["User_D1"], "read", clock_now);
            let d = c.server_mut().handle_request(&probe);
            prop_assert_eq!(d.shed, Some(ShedReason::JournalPoisoned));
            prop_assert!(d.unavailable && !d.granted);
        }

        // Recover over the medium's bytes (poisoned or not) and rebuild
        // the never-faulted twin from the completed script.
        let durable = handle.snapshot();
        let recovery_medium = MemStore::from_bytes(durable.clone());
        let recovered_handle = recovery_medium.clone();
        let (mut recovered, _) = CoalitionServer::recover(
            "P",
            c.trust_store(),
            Box::new(recovery_medium),
        ).expect("recover");
        let kept = recovered_handle.snapshot();
        prop_assert!(
            kept.len() <= durable.len() && kept[..] == durable[..kept.len()],
            "recovered log must be a byte prefix of the faulted medium"
        );

        let mut twin = CoalitionServer::new("P", c.trust_store());
        twin.add_object(OBJECT_O, base_acl).expect("twin object");
        twin.advance_clock(Time(twin_clock)).expect("twin clock");
        twin.set_replay_protection(true).expect("config");
        for step in &completed {
            apply_step(&mut twin, step, &mut twin_clock).expect("twin replay");
        }

        prop_assert_eq!(recovered.now(), twin.now());
        prop_assert_eq!(recovered.objects(), twin.objects());

        // Probe workload: grant, threshold deny, and a replayed
        // duplicate must decide identically on both servers.
        let probe_t = Time(twin_clock + 5);
        recovered.advance_clock(probe_t).expect("recovered journal writable");
        twin.advance_clock(probe_t).expect("twin clock");
        let probes = [
            request_at(&c, &["User_D1"], "read", probe_t),
            request_at(&c, &["User_D1", "User_D2"], "write", probe_t),
            request_at(&c, &["User_D3"], "write", probe_t),
            request_at(&c, &["User_D1"], "read", probe_t),
        ];
        for (i, req) in probes.iter().enumerate() {
            let ours = recovered.handle_request(req);
            let twins = twin.handle_request(req);
            assert_same(&ours, &twins, i)?;
        }
    }
}

fn assert_same(
    ours: &ServerDecision,
    twins: &ServerDecision,
    probe: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        ours.granted,
        twins.granted,
        "granted diverged on probe {}",
        probe
    );
    prop_assert_eq!(
        &ours.detail,
        &twins.detail,
        "detail diverged on probe {}",
        probe
    );
    prop_assert_eq!(
        ours.axiom_applications,
        twins.axiom_applications,
        "axioms diverged on probe {}",
        probe
    );
    prop_assert_eq!(
        ours.signature_checks,
        twins.signature_checks,
        "signature checks diverged on probe {}",
        probe
    );
    prop_assert_eq!(
        ours.cached_signature_checks,
        twins.cached_signature_checks,
        "cached checks diverged on probe {}",
        probe
    );
    prop_assert_eq!(
        ours.unavailable,
        twins.unavailable,
        "unavailable diverged on probe {}",
        probe
    );
    prop_assert_eq!(&ours.shed, &twins.shed, "shed diverged on probe {}", probe);
    Ok(())
}
