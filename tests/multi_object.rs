//! Multiple jointly owned objects with distinct policies (§2: "jointly
//! owned resources may include auditing applications that are used to
//! ensure that all domains are adhering to predefined access policies").
//!
//! The audit log is itself a coalition resource: every domain may read it,
//! but *appending* requires all three (n-of-n), and nobody may tamper with
//! the research data policy from the audit path.

use jaap_coalition::request::assemble;
use jaap_coalition::scenario::CoalitionBuilder;
use jaap_core::certs::Validity;
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};
use jaap_pki::attribute::ThresholdSubject;

const AUDIT_LOG: &str = "Audit Log";

struct Rig {
    coalition: jaap_coalition::scenario::Coalition,
    audit_append_ac: jaap_pki::ThresholdAttributeCertificate,
    audit_read_ac: jaap_pki::ThresholdAttributeCertificate,
}

fn rig(seed: u64) -> Rig {
    let mut coalition = CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition");

    // Register the audit log object with its own ACL.
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_audit_append"), "append")
        .permit(GroupId::new("G_audit_read"), "read");
    coalition
        .server_mut()
        .add_object(AUDIT_LOG, acl)
        .expect("add object");

    // The AA (all domains jointly) distributes the audit privileges:
    // append is 3-of-3 — consensus hard requirement; read is 1-of-3.
    let members: Vec<(String, jaap_crypto::rsa::RsaPublicKey)> = coalition
        .domains()
        .iter()
        .map(|d| {
            let u = &d.users()[0];
            (u.name().to_string(), u.public().clone())
        })
        .collect();
    let validity = Validity::new(Time(0), Time(1_000));
    let append_subject = ThresholdSubject::new(members.clone(), 3).expect("subject");
    let read_subject = ThresholdSubject::new(members, 1).expect("subject");
    let audit_append_ac = coalition
        .aa()
        .issue_threshold_certificate(
            append_subject,
            GroupId::new("G_audit_append"),
            validity,
            coalition.server().now(),
        )
        .expect("issue");
    let audit_read_ac = coalition
        .aa()
        .issue_threshold_certificate(
            read_subject,
            GroupId::new("G_audit_read"),
            validity,
            coalition.server().now(),
        )
        .expect("issue");
    Rig {
        coalition,
        audit_append_ac,
        audit_read_ac,
    }
}

fn audit_request(
    rig: &Rig,
    signers: &[&str],
    action: &str,
    ac: &jaap_pki::ThresholdAttributeCertificate,
) -> jaap_coalition::request::JointAccessRequest {
    let users: Vec<_> = signers
        .iter()
        .map(|n| rig.coalition.user(n).expect("user"))
        .collect();
    let certs: Vec<_> = signers
        .iter()
        .map(|n| rig.coalition.identity_cert(n).expect("cert").clone())
        .collect();
    assemble(
        &users,
        certs,
        vec![ac.clone()],
        vec![],
        Operation::new(action, AUDIT_LOG),
        rig.coalition.server().now(),
    )
    .expect("assemble")
}

#[test]
fn audit_append_requires_all_three_domains() {
    let mut r = rig(10_001);
    let all = audit_request(
        &r,
        &["User_D1", "User_D2", "User_D3"],
        "append",
        &r.audit_append_ac,
    );
    assert!(r.coalition.server_mut().handle_request(&all).granted);

    let two = audit_request(&r, &["User_D1", "User_D2"], "append", &r.audit_append_ac);
    assert!(
        !r.coalition.server_mut().handle_request(&two).granted,
        "2 of 3 must not append to the audit log"
    );
}

#[test]
fn audit_read_is_single_signer() {
    let mut r = rig(10_002);
    for user in ["User_D1", "User_D2", "User_D3"] {
        let req = audit_request(&r, &[user], "read", &r.audit_read_ac);
        assert!(r.coalition.server_mut().handle_request(&req).granted);
    }
}

#[test]
fn privileges_do_not_leak_across_objects() {
    let mut r = rig(10_003);
    // The research-data write AC (2-of-3 for G_write) does not authorize
    // audit appends: G_write is not on the audit log's ACL.
    let mut req = audit_request(&r, &["User_D1", "User_D2"], "append", &r.audit_append_ac);
    req.threshold_certs = vec![r.coalition.write_ac().clone()];
    assert!(!r.coalition.server_mut().handle_request(&req).granted);

    // Conversely the audit-read AC does not authorize Object O reads —
    // different group, different ACL.
    let users = [r.coalition.user("User_D1").expect("user")];
    let certs = vec![r.coalition.identity_cert("User_D1").expect("cert").clone()];
    let req = assemble(
        &users,
        certs,
        vec![r.audit_read_ac.clone()],
        vec![],
        Operation::new("read", jaap_coalition::scenario::OBJECT_O),
        r.coalition.server().now(),
    )
    .expect("assemble");
    assert!(!r.coalition.server_mut().handle_request(&req).granted);
}

#[test]
fn object_versions_are_tracked_independently() {
    let mut r = rig(10_004);
    let w = r
        .coalition
        .request_write(&["User_D1", "User_D2"])
        .expect("w");
    assert!(w.granted);
    assert_eq!(
        r.coalition
            .server()
            .object(jaap_coalition::scenario::OBJECT_O)
            .expect("obj")
            .version,
        1
    );
    assert_eq!(
        r.coalition.server().object(AUDIT_LOG).expect("log").version,
        0
    );
}

#[test]
fn revoking_audit_append_keeps_everything_else() {
    let mut r = rig(10_005);
    r.coalition.advance_time(Time(20)).expect("clock");
    let rev = r
        .coalition
        .ra()
        .revoke_attribute(
            &r.audit_append_ac.subject,
            r.audit_append_ac.group.clone(),
            Time(20),
            Time(20),
        )
        .expect("revoke");
    r.coalition
        .server_mut()
        .admit_attribute_revocation(&rev)
        .expect("admit");
    r.coalition.advance_time(Time(21)).expect("clock");

    let append = audit_request(
        &r,
        &["User_D1", "User_D2", "User_D3"],
        "append",
        &r.audit_append_ac,
    );
    assert!(!r.coalition.server_mut().handle_request(&append).granted);
    // Audit reads and research-data writes are unaffected.
    let read = audit_request(&r, &["User_D2"], "read", &r.audit_read_ac);
    assert!(r.coalition.server_mut().handle_request(&read).granted);
    assert!(
        r.coalition
            .request_write(&["User_D1", "User_D3"])
            .expect("w")
            .granted
    );
}
