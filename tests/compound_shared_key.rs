//! The paper's "alternate mechanism" (§2.2), end to end with real crypto:
//! privileges distributed to a *group of users that own a shared public
//! key*. The users jointly sign access requests under their shared key and
//! the server derives `G says X` via axiom A37.

use jaap_coalition::aa::CoalitionAa;
use jaap_core::certs::Validity;
use jaap_core::engine::Engine;
use jaap_core::syntax::{GroupId, Subject, Time};
use jaap_crypto::joint;
use jaap_crypto::shared::SharedRsaKey;
use jaap_pki::attribute::CompoundAttributeCertificate;
use jaap_pki::{key_name, TrustStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    aa: CoalitionAa,
    store: TrustStore,
    users_public: jaap_crypto::shared::SharedPublicKey,
    users_shares: Vec<jaap_crypto::shared::KeyShare>,
    cert: CompoundAttributeCertificate,
}

fn setup(seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let domains = vec!["D1".to_string(), "D2".to_string(), "D3".to_string()];
    let aa = CoalitionAa::establish_dealt("AA", domains.clone(), &mut rng, 192).expect("aa");

    // The three users generate their own shared key (no dealer needed in
    // principle; dealt here for speed).
    let (users_public, users_shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");

    // AA jointly signs a compound attribute certificate binding the group
    // membership to the users' shared key.
    let member_names: Vec<String> = (1..=3).map(|i| format!("User_D{i}")).collect();
    let validity = Validity::new(Time(0), Time(1_000));
    let body = CompoundAttributeCertificate::body_bytes(
        "AA",
        &member_names,
        users_public.rsa(),
        &GroupId::new("G_write"),
        validity,
        Time(6),
    );
    let signature = aa.joint_sign(&body).expect("joint sign");
    let cert = CompoundAttributeCertificate {
        issuer: "AA".into(),
        member_names,
        shared_key: users_public.rsa().clone(),
        group: GroupId::new("G_write"),
        validity,
        timestamp: Time(6),
        signature,
    };

    let mut store = TrustStore::new(Time(0));
    store.trust_aa("AA", aa.public().clone(), domains);
    Setup {
        aa,
        store,
        users_public,
        users_shares,
        cert,
    }
}

fn users_compound() -> Subject {
    Subject::compound(
        (1..=3)
            .map(|i| Subject::principal(format!("User_D{i}")))
            .collect(),
    )
}

#[test]
fn compound_certificate_verifies_and_idealizes() {
    let s = setup(7001);
    assert!(s.cert.verify(s.aa.public()).is_ok());
    let msg = s
        .store
        .idealize_compound_attribute(&s.cert)
        .expect("idealize");
    let view = jaap_core::certs::CertView::parse(&msg).expect("parse");
    let jaap_core::certs::CertView::Attribute { subject, .. } = view else {
        panic!("expected attribute");
    };
    assert_eq!(
        subject,
        users_compound().bound(key_name(s.users_public.rsa()))
    );
}

#[test]
fn a37_grant_with_joint_user_signature() {
    let s = setup(7002);
    // Engine setup: the server additionally believes the users' shared key
    // is owned by the user compound (delivered out of band with the cert).
    let mut assumptions = s.store.assumptions();
    assumptions.own_key(key_name(s.users_public.rsa()), users_compound());
    let mut engine = Engine::new("P", assumptions);
    engine.advance_clock(Time(10)).expect("clock");

    // Admit the compound AC.
    let ideal = s
        .store
        .idealize_compound_attribute(&s.cert)
        .expect("idealize");
    engine.admit_certificate(&ideal).expect("admit");
    let group = GroupId::new("G_write");
    let (subject, belief) = engine
        .membership_belief_at(&group, Time(10))
        .map(|(a, b)| (a.clone(), b.clone()))
        .expect("membership");

    // The users jointly sign the request under their shared key (real
    // threshold-RSA), and the server checks that signature.
    let payload = b"\"write\" Object O";
    let sig = joint::sign_locally(&s.users_public, &s.users_shares, payload).expect("sign");
    assert!(s.users_public.verify(payload, &sig));

    // Crypto verified: idealize the statement and derive via A10 + A37.
    let logic_payload = jaap_core::syntax::Message::data(String::from_utf8_lossy(payload));
    let signed = logic_payload.clone().signed(key_name(s.users_public.rsa()));
    let (owner, key, stmt) = engine
        .authenticate_joint_statement(&signed, Time(10))
        .expect("joint statement");
    assert_eq!(owner, users_compound());
    let derivation = engine
        .apply_a36_a37(
            &belief,
            &subject,
            &group,
            Time(10),
            &logic_payload,
            &stmt,
            Some(&key),
        )
        .expect("a37");
    assert!(derivation
        .axioms_used()
        .contains(&jaap_core::axioms::Axiom::A37));
}

#[test]
fn partial_user_signature_fails_crypto_check() {
    // 2 of the 3 users cannot produce the group's joint signature: the
    // crypto layer refuses before the logic is ever consulted.
    let s = setup(7003);
    let partial: Vec<_> = s.users_shares[..2]
        .iter()
        .map(|sh| joint::produce_share(sh, b"forged").expect("share"))
        .collect();
    assert!(joint::combine(&s.users_public, b"forged", &partial).is_err());
}

#[test]
fn tampered_compound_certificate_rejected() {
    let s = setup(7004);
    let mut bad = s.cert.clone();
    bad.member_names.push("Mallory".into());
    assert!(s.store.idealize_compound_attribute(&bad).is_err());
}

#[test]
fn wrong_shared_key_in_statement_fails_a37() {
    let s = setup(7005);
    let mut assumptions = s.store.assumptions();
    assumptions.own_key(key_name(s.users_public.rsa()), users_compound());
    // A different shared key also owned by the compound (e.g. stale).
    let mut rng = StdRng::seed_from_u64(9);
    let (other_public, _) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
    assumptions.own_key(key_name(other_public.rsa()), users_compound());
    let mut engine = Engine::new("P", assumptions);
    engine.advance_clock(Time(10)).expect("clock");
    let ideal = s
        .store
        .idealize_compound_attribute(&s.cert)
        .expect("idealize");
    engine.admit_certificate(&ideal).expect("admit");
    let group = GroupId::new("G_write");
    let (subject, belief) = engine
        .membership_belief_at(&group, Time(10))
        .map(|(a, b)| (a.clone(), b.clone()))
        .expect("membership");

    let payload = jaap_core::syntax::Message::data("\"write\" Object O");
    let signed = payload.clone().signed(key_name(other_public.rsa()));
    let (_, key, stmt) = engine
        .authenticate_joint_statement(&signed, Time(10))
        .expect("joint statement");
    // A37's selective binding: the statement key must be the cert's key.
    let err = engine.apply_a36_a37(
        &belief,
        &subject,
        &group,
        Time(10),
        &payload,
        &stmt,
        Some(&key),
    );
    assert!(err.is_err());
}
