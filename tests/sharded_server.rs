//! Equivalence and liveness tests for the sharded, lock-free-read
//! front-end (DESIGN §5g).
//!
//! * the writer must never be blocked by an in-flight decision's crypto
//!   phase (regression test for the lock-across-crypto bug);
//! * a [`ConcurrentServer`] driving random interleaved
//!   admit/revoke/decide schedules must produce byte-identical decisions,
//!   audit log, and state versions to a serial single-server twin;
//! * a two-shard [`ShardedCoalition`] over disjoint namespaces must match
//!   per-shard serial twins, including cross-shard admission fan-out;
//! * each shard recovers independently from its own journal;
//! * concurrent readers never observe a torn epoch: every (version, clock)
//!   pair seen is one that was actually published.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use jaap_coalition::concurrent::ConcurrentServer;
use jaap_coalition::request::{assemble, JointAccessRequest};
use jaap_coalition::scenario::{Coalition, CoalitionBuilder, OBJECT_O};
use jaap_coalition::server::{CoalitionServer, ServerDecision};
use jaap_coalition::shard::ShardedCoalition;
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};
use jaap_pki::{CrlEntry, TrustStore};
use jaap_wal::MemStore;
use proptest::prelude::*;

const USERS: [&str; 3] = ["User_D1", "User_D2", "User_D3"];
const SHARDS: usize = 2;

/// Builds a joint request against an explicit object at an explicit time
/// (the scenario helper stamps the current scenario-server time, which
/// these tests must control).
fn request_for(
    c: &Coalition,
    object: &str,
    signers: &[&str],
    action: &str,
    at: Time,
) -> JointAccessRequest {
    let users: Vec<_> = signers.iter().map(|n| c.user(n).expect("user")).collect();
    let ids = signers
        .iter()
        .map(|n| c.identity_cert(n).expect("cert").clone())
        .collect();
    let ac = if action == "read" {
        c.read_ac().clone()
    } else {
        c.write_ac().clone()
    };
    assemble(
        &users,
        ids,
        vec![ac],
        vec![],
        Operation::new(action, object),
        at,
    )
    .expect("assemble")
}

/// A bare single-object server anchored to `c`'s trust roots (the
/// crash-recovery "fresh twin" configuration).
fn single_server(c: &Coalition) -> CoalitionServer {
    let mut server = CoalitionServer::new("P", c.trust_store());
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");
    acl.permit(GroupId::new("G_read"), "read");
    server.add_object(OBJECT_O, acl).expect("add object");
    server.advance_clock(Time(10)).expect("clock");
    server.set_replay_protection(true).expect("config");
    server
}

/// An independent coalition for shard `i`: its own domains, CAs, AA, and
/// users, so shard namespaces are disjoint all the way down to the trust
/// roots.
fn shard_coalition(i: usize, seed: u64) -> Coalition {
    let names = [format!("S{i}D1"), format!("S{i}D2"), format!("S{i}D3")];
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    CoalitionBuilder::new()
        .domains(&refs)
        .key_bits(192)
        .seed(seed.wrapping_mul(64).wrapping_add(i as u64))
        .build()
        .expect("build shard coalition")
}

fn shard_object(i: usize) -> String {
    format!("Object S{i}")
}

fn shard_users(i: usize) -> [String; 3] {
    [
        format!("User_S{i}D1"),
        format!("User_S{i}D2"),
        format!("User_S{i}D3"),
    ]
}

/// A shard server owning only `Object S{i}`, anchored to shard `i`'s
/// coalition.
fn shard_server(c: &Coalition, i: usize) -> CoalitionServer {
    let mut server = CoalitionServer::new(format!("P{i}"), c.trust_store());
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");
    acl.permit(GroupId::new("G_read"), "read");
    server.add_object(shard_object(i), acl).expect("add object");
    server.advance_clock(Time(10)).expect("clock");
    server.set_replay_protection(true).expect("config");
    server
}

fn assert_same_decision(ours: &ServerDecision, twins: &ServerDecision, ctx: &str) {
    assert_eq!(ours.granted, twins.granted, "granted diverged: {ctx}");
    assert_eq!(ours.detail, twins.detail, "detail diverged: {ctx}");
    assert_eq!(
        ours.axiom_applications, twins.axiom_applications,
        "axiom count diverged: {ctx}"
    );
    assert_eq!(
        ours.signature_checks, twins.signature_checks,
        "signature checks diverged: {ctx}"
    );
    assert_eq!(
        ours.cached_signature_checks, twins.cached_signature_checks,
        "cached checks diverged: {ctx}"
    );
    assert_eq!(
        ours.unavailable, twins.unavailable,
        "unavailability diverged: {ctx}"
    );
}

/// Regression test for the writer-lock-across-crypto bug: while a decision
/// sits in its crypto phase, admissions through the single writer must
/// proceed. The `decide_with` hook parks the decision after crypto and
/// *before* the commit lock; the main thread then runs two writer
/// mutations, which must complete while the decision is still in flight.
/// If the decision held the writer lock across crypto, the admission would
/// block, the hook's timeout would fire, and the test would fail.
#[test]
fn in_flight_decision_does_not_block_the_writer() {
    let c = CoalitionBuilder::new()
        .seed(7)
        .key_bits(192)
        .build()
        .expect("build");
    let now = c.server().now();
    let read_ac = c.read_ac().clone();
    let revocation = c
        .ra()
        .revoke_attribute(&read_ac.subject, read_ac.group.clone(), now, now)
        .expect("revoke");
    let req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", OBJECT_O))
        .expect("request");
    let server = Arc::new(ConcurrentServer::new(c.into_server()));

    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let worker = Arc::clone(&server);
    let decider = std::thread::spawn(move || {
        worker.decide_with(&req, || {
            entered_tx.send(()).expect("test channel");
            // Hold the post-crypto window open until the admission lands.
            release_rx
                .recv_timeout(Duration::from_secs(20))
                .expect("writer mutation was blocked behind an in-flight decision");
        })
    });

    entered_rx
        .recv()
        .expect("decision reached its crypto phase");
    // Two admissions while the decision is mid-flight: a revocation of the
    // (unrelated) read attribute and a clock advance. Both publish new
    // epochs.
    server
        .with_writer(|s| s.admit_attribute_revocation(&revocation))
        .expect("revocation admission during an in-flight decision");
    server
        .advance_clock(Time(now.0 + 5))
        .expect("clock advance during an in-flight decision");
    release_tx.send(()).expect("test channel");

    let decision = decider.join().expect("decider thread");
    // The decision's first attempt was invalidated by the admissions; it
    // retried against the new epoch, where the quorum write still holds
    // (only the read attribute was revoked).
    assert!(
        decision.granted,
        "write must still be granted after retry: {:?}",
        decision.detail
    );
}

/// One abstract step of a randomized admit/revoke/decide schedule.
#[derive(Debug, Clone)]
enum Step {
    Advance(i64),
    Write(Vec<usize>),
    Read(usize),
    RevokeWrite,
    Crl,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1i64..4).prop_map(Step::Advance),
        proptest::collection::vec(0usize..3, 1..=3).prop_map(|mut idx| {
            idx.sort_unstable();
            idx.dedup();
            Step::Write(idx)
        }),
        (0usize..3).prop_map(Step::Read),
        Just(Step::RevokeWrite),
        Just(Step::Crl),
    ]
}

fn run_concurrent_equivalence(seed: u64, plan: &[Step]) {
    let c = CoalitionBuilder::new()
        .seed(seed)
        .key_bits(192)
        .build()
        .expect("build");
    let concurrent = ConcurrentServer::new(single_server(&c));
    let mut twin = single_server(&c);
    let mut t = Time(10);
    let mut crl_seq = 1u64;

    for (k, step) in plan.iter().enumerate() {
        match step {
            Step::Advance(dt) => {
                t = Time(t.0 + dt);
                concurrent.advance_clock(t).expect("concurrent clock");
                twin.advance_clock(t).expect("twin clock");
            }
            Step::Write(idx) => {
                let signers: Vec<&str> = idx.iter().map(|&i| USERS[i]).collect();
                let req = request_for(&c, OBJECT_O, &signers, "write", t);
                let a = concurrent.decide(&req);
                let b = twin.handle_request(&req);
                assert_same_decision(&a, &b, &format!("write at op {k}"));
            }
            Step::Read(i) => {
                let req = request_for(&c, OBJECT_O, &[USERS[*i]], "read", t);
                let a = concurrent.decide(&req);
                let b = twin.handle_request(&req);
                assert_same_decision(&a, &b, &format!("read at op {k}"));
            }
            Step::RevokeWrite => {
                let ac = c.write_ac();
                let rev = c
                    .ra()
                    .revoke_attribute(&ac.subject, ac.group.clone(), t, t)
                    .expect("revoke");
                let a = concurrent.with_writer(|s| s.admit_attribute_revocation(&rev));
                let b = twin.admit_attribute_revocation(&rev);
                assert_eq!(a.is_ok(), b.is_ok(), "revocation diverged at op {k}");
            }
            Step::Crl => {
                let ac = c.write_ac();
                let entries = vec![CrlEntry {
                    subject: ac.subject.clone(),
                    group: ac.group.clone(),
                    revoked_from: t,
                }];
                let crl = c.ra().issue_crl(crl_seq, t, entries).expect("crl");
                crl_seq += 1;
                let a = concurrent.with_writer(|s| s.admit_crl(&crl));
                let b = twin.admit_crl(&crl);
                assert_eq!(a.is_ok(), b.is_ok(), "crl admission diverged at op {k}");
            }
        }
        // Per-epoch probes: the published snapshot is always the writer's
        // live version, and both executions moved through identical
        // version sequences.
        let live = concurrent.read(|s| s.state_version());
        assert_eq!(
            concurrent.snapshot().version(),
            live,
            "published snapshot lags the writer at op {k}"
        );
        assert_eq!(
            live,
            twin.state_version(),
            "state version diverged at op {k}"
        );
    }

    let ours = concurrent.read(|s| s.object(OBJECT_O).expect("object").clone());
    let theirs = twin.object(OBJECT_O).expect("object").clone();
    assert_eq!(ours.version, theirs.version, "object version diverged");
    assert_eq!(ours.content, theirs.content, "object content diverged");
    assert_eq!(
        concurrent.read(|s| s.audit_log().clone()),
        twin.audit_log().clone(),
        "audit log diverged"
    );
}

fn run_sharded_equivalence(seed: u64, plan: &[(usize, Step)]) {
    let coalitions: Vec<Coalition> = (0..SHARDS).map(|i| shard_coalition(i, seed)).collect();
    let router = ShardedCoalition::new(
        coalitions
            .iter()
            .enumerate()
            .map(|(i, c)| shard_server(c, i))
            .collect(),
    )
    .expect("router");
    let mut twins: Vec<CoalitionServer> = coalitions
        .iter()
        .enumerate()
        .map(|(i, c)| shard_server(c, i))
        .collect();
    let mut t = Time(10);
    let mut crl_seqs = [1u64; SHARDS];

    for (k, (s, step)) in plan.iter().enumerate() {
        let s = *s;
        let c = &coalitions[s];
        let object = shard_object(s);
        let users = shard_users(s);
        match step {
            Step::Advance(dt) => {
                // Clock advances are coalition-wide: fan out everywhere.
                t = Time(t.0 + dt);
                router.advance_clock(t).expect("router clock");
                for twin in &mut twins {
                    twin.advance_clock(t).expect("twin clock");
                }
            }
            Step::Write(idx) => {
                let signers: Vec<&str> = idx.iter().map(|&i| users[i].as_str()).collect();
                let req = request_for(c, &object, &signers, "write", t);
                assert_eq!(router.shard_for(&req.operation.object), s, "routing");
                let a = router.decide(&req);
                let b = twins[s].handle_request(&req);
                assert_same_decision(&a, &b, &format!("shard {s} write at op {k}"));
            }
            Step::Read(i) => {
                let req = request_for(c, &object, &[users[*i].as_str()], "read", t);
                let a = router.decide(&req);
                let b = twins[s].handle_request(&req);
                assert_same_decision(&a, &b, &format!("shard {s} read at op {k}"));
            }
            Step::RevokeWrite => {
                // Revocations fan out to every shard; foreign shards must
                // reject the artifact exactly as their serial twins do.
                let ac = c.write_ac();
                let rev = c
                    .ra()
                    .revoke_attribute(&ac.subject, ac.group.clone(), t, t)
                    .expect("revoke");
                let results = router.admit_attribute_revocation(&rev);
                assert!(results[s].is_ok(), "home shard must admit its revocation");
                for (j, twin) in twins.iter_mut().enumerate() {
                    let twin_result = twin.admit_attribute_revocation(&rev);
                    assert_eq!(
                        results[j].is_ok(),
                        twin_result.is_ok(),
                        "fan-out outcome diverged on shard {j} at op {k}"
                    );
                }
            }
            Step::Crl => {
                let ac = c.write_ac();
                let entries = vec![CrlEntry {
                    subject: ac.subject.clone(),
                    group: ac.group.clone(),
                    revoked_from: t,
                }];
                let crl = c.ra().issue_crl(crl_seqs[s], t, entries).expect("crl");
                crl_seqs[s] += 1;
                let results = router.admit_crl(&crl);
                for (j, twin) in twins.iter_mut().enumerate() {
                    let twin_result = twin.admit_crl(&crl);
                    assert_eq!(
                        results[j].is_ok(),
                        twin_result.is_ok(),
                        "CRL fan-out outcome diverged on shard {j} at op {k}"
                    );
                }
            }
        }
    }

    // Final probes against a fresh epoch, then full per-shard state
    // equivalence.
    t = Time(t.0 + 1);
    router.advance_clock(t).expect("router clock");
    for twin in &mut twins {
        twin.advance_clock(t).expect("twin clock");
    }
    for (s, twin) in twins.iter_mut().enumerate() {
        let c = &coalitions[s];
        let object = shard_object(s);
        let users = shard_users(s);
        let probes = [
            request_for(
                c,
                &object,
                &[users[0].as_str(), users[1].as_str()],
                "write",
                t,
            ),
            request_for(c, &object, &[users[2].as_str()], "write", t),
            request_for(c, &object, &[users[1].as_str()], "read", t),
        ];
        for (i, probe) in probes.iter().enumerate() {
            let a = router.decide(probe);
            let b = twin.handle_request(probe);
            assert_same_decision(&a, &b, &format!("shard {s} probe {i}"));
        }
        let ours = router
            .shard(s)
            .read(|sv| sv.object(&object).expect("object").clone());
        let theirs = twin.object(&object).expect("object").clone();
        assert_eq!(ours.version, theirs.version, "shard {s} object version");
        assert_eq!(ours.content, theirs.content, "shard {s} object content");
        assert_eq!(
            router.shard(s).read(|sv| sv.audit_log().clone()),
            twin.audit_log().clone(),
            "shard {s} audit log"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The concurrent front-end is observationally identical to a serial
    /// single server over random interleaved admit/revoke/decide
    /// schedules: every decision byte-identical, every published epoch
    /// current, the audit logs equal.
    #[test]
    fn concurrent_server_matches_serial_twin(
        seed in 0u64..64,
        plan in proptest::collection::vec(step_strategy(), 3..10),
    ) {
        run_concurrent_equivalence(seed, &plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The two-shard router over disjoint namespaces matches per-shard
    /// serial twins under random schedules, including cross-shard
    /// admission fan-out (foreign shards reject foreign artifacts exactly
    /// as their twins do).
    #[test]
    fn sharded_router_matches_per_shard_serial_twins(
        seed in 0u64..64,
        plan in proptest::collection::vec((0usize..SHARDS, step_strategy()), 3..8),
    ) {
        run_sharded_equivalence(seed, &plan);
    }
}

/// Each shard journals and recovers on its own: losing one shard's log
/// tail (rollback to its bootstrap image) leaves the other shard's full
/// recovery untouched.
#[test]
fn shards_recover_independently_from_their_own_journals() {
    let coalitions: Vec<Coalition> = (0..SHARDS).map(|i| shard_coalition(i, 91)).collect();
    let mut servers = Vec::new();
    let mut handles: Vec<MemStore> = Vec::new();
    let mut base_lens = Vec::new();
    for (i, c) in coalitions.iter().enumerate() {
        let mut server = shard_server(c, i);
        let store = MemStore::new();
        let handle = store.clone();
        server.attach_journal(Box::new(store)).expect("attach");
        base_lens.push(handle.snapshot().len());
        handles.push(handle);
        servers.push(server);
    }
    let mut twins: Vec<CoalitionServer> = coalitions
        .iter()
        .enumerate()
        .map(|(i, c)| shard_server(c, i))
        .collect();
    let router = ShardedCoalition::new(servers).expect("router");

    let mut t = Time(10);
    for round in 0..3 {
        t = Time(t.0 + 1);
        router.advance_clock(t).expect("router clock");
        for twin in &mut twins {
            twin.advance_clock(t).expect("twin clock");
        }
        for (s, c) in coalitions.iter().enumerate() {
            let users = shard_users(s);
            let signers: Vec<&str> = if round == 1 {
                vec![users[2].as_str()]
            } else {
                vec![users[0].as_str(), users[1].as_str()]
            };
            let req = request_for(c, &shard_object(s), &signers, "write", t);
            let a = router.decide(&req);
            let b = twins[s].handle_request(&req);
            assert_same_decision(&a, &b, &format!("round {round} shard {s}"));
        }
        if round == 1 {
            let ac = coalitions[0].write_ac();
            let rev = coalitions[0]
                .ra()
                .revoke_attribute(&ac.subject, ac.group.clone(), t, t)
                .expect("revoke");
            let results = router.admit_attribute_revocation(&rev);
            for (j, twin) in twins.iter_mut().enumerate() {
                let twin_result = twin.admit_attribute_revocation(&rev);
                assert_eq!(results[j].is_ok(), twin_result.is_ok(), "fan-out shard {j}");
            }
        }
    }

    // Crash the router. The journals survive through the shared handles;
    // shard 1's "disk" rolls back to its bootstrap image while shard 0
    // keeps its full log.
    drop(router);
    let full0 = handles[0].snapshot();
    let cut1 = handles[1].snapshot()[..base_lens[1]].to_vec();

    let (mut recovered0, report0) = CoalitionServer::recover(
        "P0",
        coalitions[0].trust_store(),
        Box::new(MemStore::from_bytes(full0)),
    )
    .expect("recover shard 0");
    assert!(report0.truncation.is_none(), "shard 0 log was clean");
    let (mut recovered1, report1) = CoalitionServer::recover(
        "P1",
        coalitions[1].trust_store(),
        Box::new(MemStore::from_bytes(cut1)),
    )
    .expect("recover shard 1");
    assert!(
        report1.truncation.is_none(),
        "a record-boundary cut is clean"
    );

    // Shard 0 replays everything: full equivalence with its twin,
    // including post-crash probe decisions.
    assert_eq!(recovered0.now(), twins[0].now(), "shard 0 clock");
    assert_eq!(
        recovered0.audit_log(),
        twins[0].audit_log(),
        "shard 0 audit"
    );
    let probe_at = Time(twins[0].now().0 + 1);
    recovered0.advance_clock(probe_at).expect("clock");
    twins[0].advance_clock(probe_at).expect("clock");
    let users0 = shard_users(0);
    let probe = request_for(
        &coalitions[0],
        &shard_object(0),
        &[users0[0].as_str(), users0[1].as_str()],
        "write",
        probe_at,
    );
    assert_same_decision(
        &recovered0.handle_request(&probe),
        &twins[0].handle_request(&probe),
        "shard 0 post-crash probe",
    );

    // Shard 1 restarts from its bootstrap image: identical to a fresh
    // shard server that never saw an operation — shard 0's survival did
    // not depend on shard 1's log, and vice versa.
    let mut fresh1 = shard_server(&coalitions[1], 1);
    assert_eq!(recovered1.now(), fresh1.now(), "shard 1 clock");
    assert_eq!(recovered1.audit_log(), fresh1.audit_log(), "shard 1 audit");
    let probe_at = Time(fresh1.now().0 + 1);
    recovered1.advance_clock(probe_at).expect("clock");
    fresh1.advance_clock(probe_at).expect("clock");
    let users1 = shard_users(1);
    let probe = request_for(
        &coalitions[1],
        &shard_object(1),
        &[users1[0].as_str(), users1[1].as_str()],
        "write",
        probe_at,
    );
    assert_same_decision(
        &recovered1.handle_request(&probe),
        &fresh1.handle_request(&probe),
        "shard 1 post-crash probe",
    );
}

/// `decide_batch` routes across shards on the worker pool and reaches the
/// same verdicts and object versions as serial twins fed the same
/// per-shard subsequences.
#[test]
fn decide_batch_routes_across_shards_on_the_pool() {
    let coalitions: Vec<Coalition> = (0..SHARDS).map(|i| shard_coalition(i, 17)).collect();
    let router = ShardedCoalition::new(
        coalitions
            .iter()
            .enumerate()
            .map(|(i, c)| shard_server(c, i))
            .collect(),
    )
    .expect("router");
    let mut twins: Vec<CoalitionServer> = coalitions
        .iter()
        .enumerate()
        .map(|(i, c)| shard_server(c, i))
        .collect();

    let t = Time(10);
    let mut per_shard: Vec<Vec<JointAccessRequest>> = Vec::new();
    for (s, c) in coalitions.iter().enumerate() {
        let object = shard_object(s);
        let users = shard_users(s);
        per_shard.push(vec![
            request_for(
                c,
                &object,
                &[users[0].as_str(), users[1].as_str()],
                "write",
                t,
            ),
            request_for(c, &object, &[users[2].as_str()], "write", t),
            request_for(c, &object, &[users[0].as_str()], "read", t),
        ]);
    }
    // Interleave the shards so the batch exercises cross-shard routing.
    let order: [(usize, usize); 6] = [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)];
    let batch: Vec<JointAccessRequest> = order
        .iter()
        .map(|&(s, i)| per_shard[s][i].clone())
        .collect();

    let decisions = router.decide_batch(&batch, 4);
    assert_eq!(decisions.len(), batch.len());
    // Same-shard requests may commit in either order inside the batch, so
    // compare order-independent outcomes: the verdict of each request and
    // the final object versions.
    for (k, &(s, i)) in order.iter().enumerate() {
        let expected = twins[s].handle_request(&per_shard[s][i]);
        assert_eq!(
            decisions[k].granted, expected.granted,
            "verdict diverged for batch item {k} (shard {s})"
        );
    }
    for (s, twin) in twins.iter().enumerate() {
        let object = shard_object(s);
        assert_eq!(
            router
                .shard(s)
                .read(|sv| sv.object(&object).expect("object").version),
            twin.object(&object).expect("object").version,
            "shard {s} object version"
        );
    }
}

/// Concurrent readers racing the writer never observe a torn epoch: every
/// (version, clock) pair loaded from a snapshot is a pair that was
/// actually published — never a version from one publish with state from
/// another.
#[test]
fn readers_never_observe_a_torn_epoch() {
    let server = ConcurrentServer::new(CoalitionServer::new("P", TrustStore::new(Time(0))));
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut reader = server.reader();
                    let mut seen = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let snap = reader.load();
                        seen.push((snap.version(), snap.at()));
                    }
                    seen
                })
            })
            .collect();

        // The single writer: every clock advance publishes one snapshot.
        // Only this thread mutates, so `snapshot()` right after the
        // advance is exactly the snapshot that advance published.
        let mut published: HashMap<u64, Time> = HashMap::new();
        let first = server.snapshot();
        published.insert(first.version(), first.at());
        for t in 1..=200 {
            server.advance_clock(Time(t)).expect("clock");
            let snap = server.snapshot();
            published.insert(snap.version(), snap.at());
        }
        stop.store(true, Ordering::Relaxed);

        for handle in readers {
            for (version, at) in handle.join().expect("reader thread") {
                assert_eq!(
                    published.get(&version),
                    Some(&at),
                    "torn epoch: version {version} observed with clock {at:?}"
                );
            }
        }
    });
}
