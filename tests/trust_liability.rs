//! Experiments E7/E11: trust liability of Case I vs Case II, with real key
//! material, plus the collusion bounds.

use jaap_coalition::aa::{CoalitionAa, LockboxAa};
use jaap_coalition::liability::{exposure_probability, min_compromises, simulate_exposure, Scheme};
use jaap_core::certs::Validity;
use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::collusion::{collude_additive, CollusionOutcome};
use jaap_crypto::rsa::RsaKeyPair;
use jaap_pki::attribute::{ThresholdAttributeCertificate, ThresholdSubject};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn subject(rng: &mut StdRng) -> ThresholdSubject {
    let members = (1..=3)
        .map(|i| {
            let kp = RsaKeyPair::generate(rng, 128).expect("key");
            (format!("User_D{i}"), kp.public().clone())
        })
        .collect();
    ThresholdSubject::new(members, 2).expect("subject")
}

#[test]
fn case1_single_penetration_forges_valid_certificates() {
    // Case I: stealing the lockbox key with ONE compromise yields
    // certificates indistinguishable from legitimate ones.
    let mut rng = StdRng::seed_from_u64(5001);
    let ops = vec![
        ("admin_D1".to_string(), "pw1".to_string()),
        ("admin_D2".to_string(), "pw2".to_string()),
        ("admin_D3".to_string(), "pw3".to_string()),
    ];
    let aa = LockboxAa::establish("AA", ops, &mut rng, 192).expect("aa");
    let stolen = aa.external_penetration();

    let s = subject(&mut rng);
    let validity = Validity::new(Time(0), Time(100));
    let body = ThresholdAttributeCertificate::body_bytes(
        "AA",
        &s,
        &GroupId::new("G_write"),
        validity,
        Time(5),
    );
    let forged_sig = stolen.sign(&body).expect("sign with stolen key");
    // The forgery verifies against the AA's public key: unilateral policy
    // modification achieved with one compromise.
    assert!(aa.public().verify(&body, &forged_sig));
}

#[test]
fn case2_single_domain_cannot_forge() {
    let mut rng = StdRng::seed_from_u64(5002);
    let aa = CoalitionAa::establish_dealt(
        "AA",
        vec!["D1".into(), "D2".into(), "D3".into()],
        &mut rng,
        192,
    )
    .expect("aa");
    let s = subject(&mut rng);
    let forged = aa
        .unilateral_issue_attempt(
            "D1",
            s,
            GroupId::new("G_write"),
            Validity::new(Time(0), Time(100)),
            Time(5),
        )
        .expect("attempt");
    assert!(forged.verify(aa.public()).is_err());
}

#[test]
fn case2_proper_subsets_recover_nothing() {
    let mut rng = StdRng::seed_from_u64(5003);
    let aa = CoalitionAa::establish_dealt(
        "AA",
        vec!["D1".into(), "D2".into(), "D3".into()],
        &mut rng,
        192,
    )
    .expect("aa");
    for leave_out in ["D1", "D2", "D3"] {
        let pooled: Vec<_> = aa
            .domains()
            .iter()
            .filter(|d| d.as_str() != leave_out)
            .map(|d| aa.share_of(d).expect("share"))
            .collect();
        assert_eq!(
            collude_additive(aa.public(), &pooled),
            CollusionOutcome::Nothing,
            "n-1 domains must learn nothing"
        );
    }
    // All three together do recover the signing exponent.
    let all: Vec<_> = aa
        .domains()
        .iter()
        .map(|d| aa.share_of(d).expect("share"))
        .collect();
    assert!(collude_additive(aa.public(), &all).is_compromised());
}

#[test]
fn minimum_compromise_counts() {
    assert_eq!(min_compromises(Scheme::CaseILockbox { n: 3 }), 1);
    assert_eq!(min_compromises(Scheme::CaseIIShared { n: 3 }), 3);
    assert_eq!(min_compromises(Scheme::CaseIIThreshold { m: 2, n: 3 }), 2);
    // The gap widens with coalition size.
    for n in [5usize, 7, 9] {
        assert_eq!(min_compromises(Scheme::CaseIIShared { n }), n);
        assert_eq!(min_compromises(Scheme::CaseILockbox { n }), 1);
    }
}

#[test]
fn exposure_probability_shapes() {
    // The E7 headline series: at q = 0.05, Case I ≈ 0.185, Case II 3-of-3
    // ≈ 1.25e-4 — three orders of magnitude.
    let q = 0.05;
    let case1 = exposure_probability(Scheme::CaseILockbox { n: 3 }, q);
    let case2 = exposure_probability(Scheme::CaseIIShared { n: 3 }, q);
    assert!(case1 > 0.18 && case1 < 0.19);
    assert!(case2 < 2e-4);
    assert!(case1 / case2 > 1_000.0);

    // Monte Carlo agrees with the closed form.
    let sim = simulate_exposure(Scheme::CaseILockbox { n: 3 }, q, 50_000, 77);
    assert!((sim - case1).abs() < 0.01);
}

#[test]
fn refresh_invalidates_exfiltrated_shares() {
    // Wu et al. refresh (§6): a share stolen *before* refresh is useless
    // when combined with shares stolen *after*.
    use jaap_crypto::refresh::refresh_in_place;

    let mut rng = StdRng::seed_from_u64(5004);
    let mut aa = CoalitionAa::establish_dealt(
        "AA",
        vec!["D1".into(), "D2".into(), "D3".into()],
        &mut rng,
        192,
    )
    .expect("aa");
    let public = aa.public().clone();
    let stolen_before = aa.share_of("D1").expect("share").clone();
    refresh_in_place(&mut rng, aa.shares_mut()).expect("refresh");
    let after_1 = aa.share_of("D2").expect("share").clone();
    let after_2 = aa.share_of("D3").expect("share").clone();
    let mixed = vec![&stolen_before, &after_1, &after_2];
    assert_eq!(
        collude_additive(&public, &mixed),
        CollusionOutcome::Nothing,
        "pre-refresh share + post-refresh shares must not combine"
    );
    // A full post-refresh set still works.
    let fresh: Vec<_> = ["D1", "D2", "D3"]
        .iter()
        .map(|d| aa.share_of(d).expect("share"))
        .collect();
    assert!(collude_additive(&public, &fresh).is_compromised());
}
