//! Experiment E1: the full Figure 1 pipeline.
//!
//! Domains D1–D3 with their own CAs → distributed establishment of the
//! coalition AA (shared key, no trusted dealer) → threshold attribute
//! certificates → joint access requests verified by server P with the
//! four-step authorization protocol.

use jaap_coalition::scenario::{CoalitionBuilder, OBJECT_O};
use jaap_core::axioms::Axiom;
use jaap_core::protocol::Operation;

#[test]
fn figure1_with_distributed_keygen_end_to_end() {
    let mut c = CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(96)
        .distributed_keygen(true)
        .seed(1001)
        .build()
        .expect("coalition");

    // The AA key is shared: its public key is not any domain CA's key.
    let aa_id = c.aa().public().key_id();
    for d in c.domains() {
        assert_ne!(aa_id, d.ca().public().key_id());
    }
    assert_eq!(c.aa().public().n_parties(), 3);

    // Certificates verify cryptographically.
    assert!(c.write_ac().verify(c.aa().public()).is_ok());
    assert!(c.read_ac().verify(c.aa().public()).is_ok());

    // Joint write (2-of-3) grants; solo write denies; read (1-of-3) grants.
    let w = c.request_write(&["User_D1", "User_D2"]).expect("write");
    assert!(w.granted, "{:?}", w.detail);
    let solo = c.request_write(&["User_D2"]).expect("solo");
    assert!(!solo.granted);
    let r = c.request_read(&["User_D3"]).expect("read");
    assert!(r.granted);
}

#[test]
fn derivation_follows_the_papers_appendix_e_steps() {
    let mut c = CoalitionBuilder::new()
        .key_bits(192)
        .seed(1002)
        .build()
        .expect("coalition");
    let d = c.request_write(&["User_D1", "User_D2"]).expect("write");
    assert!(d.granted);
    let proof = d.derivation.expect("derivation");

    // The axioms the paper's walkthrough applies: A10 (originator
    // identification), A22/A23 (jurisdiction), A9 (reduction), a
    // group-membership jurisdiction axiom, and A38 (threshold speaks-for).
    let used = proof.axioms_used();
    assert!(used.contains(&Axiom::A10), "used: {used:?}");
    assert!(used.contains(&Axiom::A22));
    assert!(used.contains(&Axiom::A23), "AA is a compound principal");
    assert!(used.contains(&Axiom::A9));
    assert!(
        used.contains(&Axiom::A28),
        "threshold membership jurisdiction"
    );
    assert!(used.contains(&Axiom::A38));

    // The proof ends with the paper's statement 25 shape and ACL check.
    let text = proof.render();
    assert!(text.contains("G_write says"));
    assert!(text.contains("access approved"));
    assert!(proof.axiom_applications() >= 8);
}

#[test]
fn server_decision_includes_crypto_and_logic_costs() {
    let mut c = CoalitionBuilder::new()
        .key_bits(192)
        .seed(1003)
        .build()
        .expect("coalition");
    let d = c.request_write(&["User_D1", "User_D3"]).expect("write");
    // 2 identity certs + 1 threshold AC + 2 statement signatures.
    assert_eq!(d.signature_checks, 5);
    assert!(d.axiom_applications >= 8);
}

#[test]
fn logic_layer_catches_what_crypto_accepts() {
    // A request at a time *outside the AC validity* passes every signature
    // check but is denied by the logic (step 4's validity condition).
    let mut c = CoalitionBuilder::new()
        .key_bits(192)
        .seed(1004)
        .validity_end(50)
        .build()
        .expect("coalition");
    c.advance_time(jaap_core::syntax::Time(60)).expect("clock");
    let d = c.request_write(&["User_D1", "User_D2"]).expect("write");
    assert!(!d.granted, "expired certificates must be rejected");
}

#[test]
fn unknown_operation_denied_even_with_valid_signers() {
    let mut c = CoalitionBuilder::new()
        .key_bits(192)
        .seed(1005)
        .build()
        .expect("coalition");
    let d = c
        .request_operation(&["User_D1", "User_D2"], Operation::new("delete", OBJECT_O))
        .expect("request");
    assert!(!d.granted, "no ACL entry permits delete");
}

#[test]
fn audit_log_records_every_decision() {
    let mut c = CoalitionBuilder::new()
        .key_bits(192)
        .seed(1006)
        .build()
        .expect("coalition");
    let _ = c.request_write(&["User_D1", "User_D2"]).expect("w1");
    let _ = c.request_write(&["User_D3"]).expect("w2");
    let _ = c.request_read(&["User_D2"]).expect("r1");
    let log = c.server().audit_log();
    assert_eq!(log.len(), 3);
    assert!(log[0].granted);
    assert!(!log[1].granted);
    assert!(log[2].granted);
    assert_eq!(log[0].principals, vec!["User_D1", "User_D2"]);
}
