//! The revocation-aware verification cache and the parallel batch
//! pipeline: cache hits must never change a decision, revocations must
//! invalidate eagerly, audit entries must record cache-served checks (D3
//! ablation honesty), and `verify_batch` must reproduce serial decisions.

use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_pki::CrlEntry;

fn coalition(seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

#[test]
fn repeat_presentations_are_served_from_cache() {
    let mut c = coalition(7001);
    c.set_verification_cache(true).expect("config");

    let first = c.request_write(&["User_D1", "User_D2"]).expect("w1");
    assert!(first.granted);
    assert_eq!(first.cached_signature_checks, 0);
    // 2 identity certs + 1 threshold AC + 2 statement signatures.
    assert_eq!(first.signature_checks, 5);

    c.advance_time(Time(15)).expect("clock");
    let second = c.request_write(&["User_D1", "User_D2"]).expect("w2");
    assert!(second.granted);
    // The three certificates hit the cache; only the fresh statement
    // signatures are verified cryptographically.
    assert_eq!(second.cached_signature_checks, 3);
    assert_eq!(second.signature_checks, 2);

    let stats = c.server().verification_cache().expect("cache").stats();
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.entries, 3);
}

#[test]
fn decisions_identical_with_and_without_cache() {
    let mut plain = coalition(7002);
    let mut cached = coalition(7002);
    cached.set_verification_cache(true).expect("config");

    let schedule: &[(i64, &[&str], &str)] = &[
        (20, &["User_D1", "User_D2"], "write"),
        (21, &["User_D1", "User_D2"], "write"),
        (22, &["User_D3"], "write"),
        (23, &["User_D3"], "read"),
        (24, &["User_D2"], "read"),
    ];
    for (t, signers, action) in schedule {
        plain.advance_time(Time(*t)).expect("clock");
        cached.advance_time(Time(*t)).expect("clock");
        let op = Operation::new(*action, "Object O");
        let a = plain.request_operation(signers, op.clone()).expect("plain");
        let b = cached.request_operation(signers, op).expect("cached");
        assert_eq!(a.granted, b.granted);
        assert_eq!(a.detail, b.detail);
        // Total evidence is the same; only its provenance differs.
        assert_eq!(
            a.signature_checks + a.cached_signature_checks,
            b.signature_checks + b.cached_signature_checks
        );
    }
    let hits = cached
        .server()
        .verification_cache()
        .expect("cache")
        .stats()
        .hits;
    assert!(hits > 0, "repeat presentations should have hit the cache");
}

#[test]
fn audit_log_records_cache_served_checks() {
    let mut c = coalition(7003);
    c.set_verification_cache(true).expect("config");
    c.request_write(&["User_D1", "User_D2"]).expect("w1");
    c.advance_time(Time(15)).expect("clock");
    c.request_write(&["User_D1", "User_D2"]).expect("w2");

    let audit = c.server().audit_log();
    assert_eq!(audit.len(), 2);
    assert_eq!(audit[0].cached_checks, 0);
    assert_eq!(audit[1].cached_checks, 3);
}

#[test]
fn attribute_revocation_invalidates_cached_ac() {
    let mut c = coalition(7004);
    c.set_verification_cache(true).expect("config");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    assert_eq!(
        c.server()
            .verification_cache()
            .expect("cache")
            .stats()
            .entries,
        3
    );

    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    let stats = c.server().verification_cache().expect("cache").stats();
    assert_eq!(stats.entries, 2, "the G_write AC entry must be dropped");
    assert_eq!(stats.invalidations, 1);

    c.advance_time(Time(21)).expect("clock");
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn identity_revocation_invalidates_cached_identity() {
    let mut c = coalition(7005);
    c.set_verification_cache(true).expect("config");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);

    c.advance_time(Time(20)).expect("clock");
    let user_key = c.user("User_D1").expect("user").public().clone();
    let rev = c.domains()[0]
        .ca()
        .revoke_identity("User_D1", &user_key, Time(20), Time(20))
        .expect("revoke");
    c.server_mut()
        .admit_identity_revocation(&rev)
        .expect("admit");

    // Conservative invalidation: both User_D1's identity entry and the
    // threshold AC naming User_D1 as a member are dropped.
    let stats = c.server().verification_cache().expect("cache").stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.invalidations, 2);

    c.advance_time(Time(21)).expect("clock");
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    assert!(c.request_write(&["User_D2", "User_D3"]).expect("w").granted);
}

#[test]
fn crl_entries_invalidate_cached_groups() {
    let mut c = coalition(7006);
    c.set_verification_cache(true).expect("config");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);

    c.advance_time(Time(20)).expect("clock");
    let entry = CrlEntry {
        subject: c.write_ac().subject.clone(),
        group: c.write_ac().group.clone(),
        revoked_from: Time(20),
    };
    let crl = c.ra().issue_crl(1, Time(20), vec![entry]).expect("crl");
    c.server_mut().admit_crl(&crl).expect("admit");

    let stats = c.server().verification_cache().expect("cache").stats();
    assert_eq!(stats.entries, 2, "the CRL'd group entry must be dropped");

    c.advance_time(Time(21)).expect("clock");
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn disabling_the_cache_drops_it() {
    let mut c = coalition(7007);
    c.set_verification_cache(true).expect("config");
    c.request_write(&["User_D1", "User_D2"]).expect("w");
    assert!(c.server().verification_cache().is_some());
    c.set_verification_cache(false).expect("config");
    assert!(c.server().verification_cache().is_none());
    // And re-enabling starts cold.
    c.set_verification_cache(true).expect("config");
    assert_eq!(
        c.server()
            .verification_cache()
            .expect("cache")
            .stats()
            .entries,
        0
    );
}

#[test]
fn verify_batch_reproduces_serial_decisions_across_worker_counts() {
    let schedule: &[(i64, &[&str], &str)] = &[
        (20, &["User_D1", "User_D2"], "write"),
        (21, &["User_D3"], "write"),
        (22, &["User_D2", "User_D3"], "write"),
        (23, &["User_D1"], "read"),
        (24, &["User_D2"], "read"),
        (25, &["User_D1", "User_D3"], "write"),
    ];
    let build_requests = |c: &mut Coalition| {
        schedule
            .iter()
            .map(|(t, signers, action)| {
                c.advance_time(Time(*t)).expect("clock");
                c.build_request(signers, Operation::new(*action, "Object O"))
                    .expect("request")
            })
            .collect::<Vec<_>>()
    };

    let mut serial = coalition(7008);
    let serial_requests = build_requests(&mut serial);
    let expected: Vec<_> = serial_requests
        .iter()
        .map(|r| serial.server_mut().handle_request(r))
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let mut batch = coalition(7008);
        let requests = build_requests(&mut batch);
        let got = batch.server_mut().verify_batch(&requests, workers);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.granted, e.granted, "workers={workers}");
            assert_eq!(g.detail, e.detail, "workers={workers}");
            assert_eq!(g.signature_checks, e.signature_checks, "workers={workers}");
        }
        assert_eq!(
            batch.server().object("Object O").expect("obj").version,
            serial.server().object("Object O").expect("obj").version,
        );
        assert_eq!(batch.server().audit_log().len(), schedule.len());
    }
}

#[test]
fn verify_batch_with_cache_still_grants_correctly() {
    let mut c = coalition(7009);
    c.set_verification_cache(true).expect("config");
    let mut requests = Vec::new();
    for t in 20..28 {
        c.advance_time(Time(t)).expect("clock");
        requests.push(
            c.build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
                .expect("request"),
        );
    }
    let decisions = c.server_mut().verify_batch(&requests, 4);
    assert!(decisions.iter().all(|d| d.granted));
    let total_cached: usize = decisions.iter().map(|d| d.cached_signature_checks).sum();
    assert!(
        total_cached > 0,
        "warm presentations should be served from the cache"
    );
    assert_eq!(
        c.server().object("Object O").expect("obj").version,
        requests.len() as u64
    );
}
