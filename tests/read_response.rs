//! Figure 2(d)'s final message: on a granted read, the server returns
//! `Response: {Object O}_{K_u3}` — the object encrypted under the
//! requestor's certified public key, so only the authorized reader learns
//! the contents.

use jaap_coalition::scenario::{CoalitionBuilder, OBJECT_O};

const RESEARCH_DATA: &[u8] = b"gene sequence: ACGTACGTAAGC...";

fn coalition(seed: u64) -> jaap_coalition::scenario::Coalition {
    let mut c = CoalitionBuilder::new()
        .key_bits(256)
        .seed(seed)
        .build()
        .expect("coalition");
    c.server_mut()
        .set_content(OBJECT_O, RESEARCH_DATA.to_vec())
        .expect("content");
    c
}

#[test]
fn granted_read_returns_ciphertext_only_the_reader_can_open() {
    let mut c = coalition(11_001);
    let d = c.request_read(&["User_D3"]).expect("read");
    assert!(d.granted);
    let ct = d.response.expect("Figure 2(d) response");

    // Only User_D3's private key opens the response. We cannot reach the
    // private key through the public API (by design); instead check that
    // another user's key cannot decrypt it, and that the plaintext never
    // appears in the ciphertext blocks.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use rand::SeedableRng;
    let outsider = jaap_crypto::rsa::RsaKeyPair::generate(&mut rng, 256).expect("keygen");
    match outsider.decrypt(&ct) {
        Err(_) => {}
        Ok(garbled) => assert_ne!(garbled, RESEARCH_DATA),
    }
    assert!(ct.block_count() >= 1);
}

#[test]
fn denied_read_returns_no_response() {
    let mut c = coalition(11_002);
    // A write denial has no response, and neither does a denied operation.
    let d = c
        .request_operation(
            &["User_D1"],
            jaap_core::protocol::Operation::new("delete", OBJECT_O),
        )
        .expect("request");
    assert!(!d.granted);
    assert!(d.response.is_none());
}

#[test]
fn writes_do_not_leak_contents() {
    let mut c = coalition(11_003);
    let d = c.request_write(&["User_D1", "User_D2"]).expect("write");
    assert!(d.granted);
    assert!(d.response.is_none(), "writes return no object contents");
}

#[test]
fn each_read_is_freshly_encrypted() {
    let mut c = coalition(11_004);
    let a = c
        .request_read(&["User_D1"])
        .expect("r1")
        .response
        .expect("ct");
    let b = c
        .request_read(&["User_D1"])
        .expect("r2")
        .response
        .expect("ct");
    assert_ne!(a, b, "randomized encryption: no two responses identical");
}
