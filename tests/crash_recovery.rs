//! Kill/restart chaos harness for the crash-recoverable coalition server.
//!
//! Strategy: run a randomized belief-changing workload against a journaled
//! server, recording the journal's byte watermark after each completed
//! operation. Then cut the journal at every record boundary — every point a
//! crash could have left the log — recover a server from the prefix, and
//! drive an identical post-crash probe workload against the recovered
//! server and against a never-crashed twin: a fresh server that ran exactly
//! the operations whose records fit inside the cut. Decisions (including
//! axiom-application and signature-check counts), object state, clocks,
//! and the audit log must all agree.

use jaap_coalition::request::{assemble, JointAccessRequest};
use jaap_coalition::scenario::{Coalition, CoalitionBuilder, OBJECT_O};
use jaap_coalition::server::{CoalitionServer, ServerDecision};
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};
use jaap_pki::CrlEntry;
use jaap_wal::{parse_log, FaultyStore, JournalStore, MemStore, StoreFaultPlan};
use proptest::prelude::*;

const USERS: [&str; 3] = ["User_D1", "User_D2", "User_D3"];

/// An abstract workload step, materialized into a concrete [`Op`] (with
/// signed artifacts) while the workload runs.
#[derive(Debug, Clone)]
enum Plan {
    Advance(i64),
    Write(Vec<usize>),
    Read(usize),
    ReplayLast,
    RevokeWrite,
    Crl,
    SetContent(u8),
}

/// A materialized operation: every signed artifact is pre-built, so the
/// same byte-identical inputs can be replayed against any number of twins.
#[derive(Debug, Clone)]
enum Op {
    Advance(Time),
    Request(JointAccessRequest),
    Revocation(jaap_pki::attribute::AttributeRevocation),
    Crl(jaap_pki::Crl),
    SetContent(Vec<u8>),
}

fn apply(server: &mut CoalitionServer, op: &Op) {
    match op {
        Op::Advance(to) => {
            let _ = server.advance_clock(*to);
        }
        Op::Request(req) => {
            let _ = server.handle_request(req);
        }
        Op::Revocation(rev) => {
            let _ = server.admit_attribute_revocation(rev);
        }
        Op::Crl(crl) => {
            let _ = server.admit_crl(crl);
        }
        Op::SetContent(bytes) => {
            let _ = server.set_content(OBJECT_O, bytes.clone());
        }
    }
}

/// Builds a joint request for `signers` at an explicit time (the scenario
/// helper stamps the *current* server time, which post-crash probes must
/// control explicitly).
fn build_request(c: &Coalition, signers: &[&str], action: &str, at: Time) -> JointAccessRequest {
    let users: Vec<_> = signers.iter().map(|n| c.user(n).expect("user")).collect();
    let ids = signers
        .iter()
        .map(|n| c.identity_cert(n).expect("cert").clone())
        .collect();
    let ac = if action == "read" {
        c.read_ac().clone()
    } else {
        c.write_ac().clone()
    };
    assemble(
        &users,
        ids,
        vec![ac],
        vec![],
        Operation::new(action, OBJECT_O),
        at,
    )
    .expect("assemble")
}

/// A fresh never-crashed server configured exactly as the journaled one was
/// at the moment its journal was attached.
fn fresh_twin(c: &Coalition) -> CoalitionServer {
    let mut server = CoalitionServer::new("P", c.trust_store());
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");
    acl.permit(GroupId::new("G_read"), "read");
    server.add_object(OBJECT_O, acl).expect("add object");
    server.advance_clock(Time(10)).expect("clock");
    server.set_replay_protection(true).expect("config");
    server
}

struct Harness {
    c: Coalition,
    /// Shares the journaled server's byte buffer.
    handle: MemStore,
    ops: Vec<Op>,
    /// `watermarks[i]` = journal length after `ops[i]` completed.
    watermarks: Vec<u64>,
    /// Journal length right after attach (the bootstrap snapshot): the
    /// smallest byte image that was ever durably on "disk".
    base_len: u64,
}

/// Runs `plan` against a journaled server, materializing artifacts.
fn run_workload(seed: u64, plan: &[Plan]) -> Harness {
    let c = CoalitionBuilder::new()
        .seed(seed)
        .key_bits(192)
        .build()
        .expect("build");
    let store = MemStore::new();
    let handle = store.clone();
    let mut h = Harness {
        c,
        handle,
        ops: Vec::new(),
        watermarks: Vec::new(),
        base_len: 0,
    };
    h.c.server_mut()
        .set_replay_protection(true)
        .expect("config");
    h.c.server_mut()
        .attach_journal(Box::new(store))
        .expect("attach");
    h.base_len = h.handle.snapshot().len() as u64;
    materialize_and_apply(&mut h, plan);
    h
}

fn materialize_and_apply(h: &mut Harness, plan: &[Plan]) {
    let mut crl_seq = 1u64;
    let mut last_req: Option<JointAccessRequest> = None;
    for step in plan {
        let now = h.c.server().now();
        let op = match step {
            Plan::Advance(dt) => Op::Advance(Time(now.0 + dt)),
            Plan::Write(idx) => {
                let signers: Vec<&str> = idx.iter().map(|&i| USERS[i]).collect();
                let req = build_request(&h.c, &signers, "write", now);
                last_req = Some(req.clone());
                Op::Request(req)
            }
            Plan::Read(i) => {
                let req = build_request(&h.c, &[USERS[*i]], "read", now);
                last_req = Some(req.clone());
                Op::Request(req)
            }
            Plan::ReplayLast => match &last_req {
                Some(req) => Op::Request(req.clone()),
                None => continue,
            },
            Plan::RevokeWrite => {
                let ac = h.c.write_ac();
                let rev =
                    h.c.ra()
                        .revoke_attribute(&ac.subject, ac.group.clone(), now, now)
                        .expect("revoke");
                Op::Revocation(rev)
            }
            Plan::Crl => {
                let ac = h.c.write_ac();
                let entries = vec![CrlEntry {
                    subject: ac.subject.clone(),
                    group: ac.group.clone(),
                    revoked_from: now,
                }];
                let crl = h.c.ra().issue_crl(crl_seq, now, entries).expect("crl");
                crl_seq += 1;
                Op::Crl(crl)
            }
            Plan::SetContent(b) => Op::SetContent(vec![*b; 4]),
        };
        apply(h.c.server_mut(), &op);
        h.ops.push(op);
        h.watermarks.push(h.handle.snapshot().len() as u64);
    }
}

fn assert_same_decision(ours: &ServerDecision, twins: &ServerDecision, ctx: &str) {
    assert_eq!(ours.granted, twins.granted, "granted diverged: {ctx}");
    assert_eq!(ours.detail, twins.detail, "detail diverged: {ctx}");
    assert_eq!(
        ours.axiom_applications, twins.axiom_applications,
        "axiom count diverged: {ctx}"
    );
    assert_eq!(
        ours.signature_checks, twins.signature_checks,
        "signature checks diverged: {ctx}"
    );
    assert_eq!(
        ours.cached_signature_checks, twins.cached_signature_checks,
        "cached checks diverged: {ctx}"
    );
    assert_eq!(
        ours.unavailable, twins.unavailable,
        "unavailability diverged: {ctx}"
    );
}

/// The core equivalence check: state now, then decisions on a post-crash
/// probe workload (fresh quorum write, under-threshold write, read, and a
/// duplicate delivery of the last pre-crash request).
fn assert_equivalent(
    recovered: &mut CoalitionServer,
    twin: &mut CoalitionServer,
    c: &Coalition,
    completed_ops: &[Op],
    ctx: &str,
) {
    assert_eq!(recovered.now(), twin.now(), "clock diverged: {ctx}");
    let ours = recovered.object(OBJECT_O).expect("object").clone();
    let twins = twin.object(OBJECT_O).expect("object").clone();
    assert_eq!(ours.version, twins.version, "version diverged: {ctx}");
    assert_eq!(ours.content, twins.content, "content diverged: {ctx}");
    assert_eq!(
        recovered.audit_log(),
        twin.audit_log(),
        "audit log diverged: {ctx}"
    );

    let probe_at = Time(recovered.now().0 + 1);
    recovered.advance_clock(probe_at).expect("clock");
    twin.advance_clock(probe_at).expect("clock");
    let mut probes = vec![
        build_request(c, &["User_D1", "User_D2"], "write", probe_at),
        build_request(c, &["User_D3"], "write", probe_at),
        build_request(c, &["User_D2"], "read", probe_at),
    ];
    // Duplicate delivery of the last pre-crash request: the recovered
    // replay window must serve the same verdict the twin's does.
    if let Some(Op::Request(req)) = completed_ops
        .iter()
        .rev()
        .find(|op| matches!(op, Op::Request(_)))
    {
        probes.push(req.clone());
    }
    for (i, probe) in probes.iter().enumerate() {
        let a = recovered.handle_request(probe);
        let b = twin.handle_request(probe);
        assert_same_decision(&a, &b, &format!("probe {i}, {ctx}"));
    }
    assert_eq!(
        recovered.audit_log(),
        twin.audit_log(),
        "post-probe audit log diverged: {ctx}"
    );
}

/// Recovers from a byte prefix and checks equivalence against a twin that
/// ran every operation whose records fit inside the cut.
fn check_cut(h: &Harness, bytes: &[u8], cut: usize, expect_truncation: bool) {
    let store = MemStore::from_bytes(bytes[..cut].to_vec());
    let (mut recovered, report) =
        CoalitionServer::recover("P", h.c.trust_store(), Box::new(store)).expect("recover");
    assert_eq!(
        report.truncation.is_some(),
        expect_truncation,
        "unexpected tail status at cut {cut}: {:?}",
        report.truncation
    );
    // With a torn/corrupt tail the recovered state ends at the truncation
    // offset, not at the cut — drop ops whose records fell in the tail.
    let effective = match parse_log(&bytes[..cut]).tail {
        jaap_wal::Tail::Clean => cut as u64,
        jaap_wal::Tail::Truncated { offset, .. } => offset as u64,
    };
    let completed = h.watermarks.iter().filter(|&&w| w <= effective).count();
    let mut twin = fresh_twin(&h.c);
    for op in &h.ops[..completed] {
        apply(&mut twin, op);
    }
    assert_equivalent(
        &mut recovered,
        &mut twin,
        &h.c,
        &h.ops[..completed],
        &format!("cut at byte {cut} ({completed} ops completed)"),
    );
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    prop_oneof![
        (1i64..4).prop_map(Plan::Advance),
        proptest::collection::vec(0usize..3, 1..=3).prop_map(|mut idx: Vec<usize>| {
            idx.sort_unstable();
            idx.dedup();
            Plan::Write(idx)
        }),
        (0usize..3).prop_map(Plan::Read),
        Just(Plan::ReplayLast),
        Just(Plan::RevokeWrite),
        Just(Plan::Crl),
        (0u8..255).prop_map(Plan::SetContent),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: kill the server at **every** record boundary
    /// of a randomized workload; the recovered server's subsequent
    /// decisions and audit log must match a never-crashed twin's.
    #[test]
    fn recovery_at_every_record_boundary_matches_never_crashed_twin(
        seed in 0u64..64,
        plan in proptest::collection::vec(plan_strategy(), 3..8),
    ) {
        let h = run_workload(seed, &plan);
        let bytes = h.handle.snapshot();
        let parsed = parse_log(&bytes);
        prop_assert!(matches!(parsed.tail, jaap_wal::Tail::Clean));
        // Cuts below the bootstrap snapshot were never on disk (the
        // snapshot rewrite is atomic), so the first real crash point is
        // the bootstrap image itself.
        for &cut in parsed.boundaries.iter().filter(|&&b| b as u64 >= h.base_len) {
            check_cut(&h, &bytes, cut, false);
        }
    }
}

/// A torn final write (partial record) is truncated and never replayed:
/// recovery behaves as if the torn record was never appended.
#[test]
fn torn_tail_is_truncated_never_replayed() {
    let plan = [
        Plan::Write(vec![0, 1]),
        Plan::Advance(2),
        Plan::Read(1),
        Plan::RevokeWrite,
    ];
    let mut h = run_workload(3, &plan);
    // Simulate a torn append: garbage that is not even a full header.
    h.handle.append(&[0xDE, 0xAD, 0xBE]).expect("append");
    let bytes = h.handle.snapshot();
    let cut = bytes.len();
    check_cut(&h, &bytes, cut, true);
}

/// A bit flip inside the final record fails its checksum; the record is
/// dropped, not replayed corrupt.
#[test]
fn bit_flip_in_tail_record_is_detected_and_dropped() {
    let plan = [Plan::Write(vec![0, 1]), Plan::Advance(1), Plan::Read(2)];
    let h = run_workload(4, &plan);
    let mut bytes = h.handle.snapshot();
    let parsed = parse_log(&bytes);
    let last_start = parsed.boundaries[parsed.boundaries.len() - 2];
    bytes[last_start + jaap_wal::frame::HEADER_LEN] ^= 0x40; // first payload byte of the last record
    let parsed = parse_log(&bytes);
    match &parsed.tail {
        jaap_wal::Tail::Truncated { offset, reason } => {
            assert_eq!(*offset, last_start);
            assert!(reason.contains("checksum"), "unexpected reason {reason}");
        }
        jaap_wal::Tail::Clean => panic!("corruption not detected"),
    }
    check_cut(&h, &bytes, bytes.len(), true);
}

/// Seeded torn-write fault injection at the store layer: whatever clean
/// prefix survives recovers to a consistent server.
#[test]
fn injected_torn_writes_recover_to_clean_prefix() {
    let c = CoalitionBuilder::new()
        .seed(5)
        .key_bits(192)
        .build()
        .expect("build");
    let mem = MemStore::new();
    let handle = mem.clone();
    let plan = StoreFaultPlan::seeded(9).with_torn_write(0.5);
    let faulty = FaultyStore::new(mem, plan).expect("plan");
    let mut h = Harness {
        c,
        handle,
        ops: Vec::new(),
        watermarks: Vec::new(),
        base_len: 0,
    };
    h.c.server_mut()
        .set_replay_protection(true)
        .expect("config");
    h.c.server_mut()
        .attach_journal(Box::new(faulty))
        .expect("attach");
    h.base_len = h.handle.snapshot().len() as u64;
    let plan = [
        Plan::Write(vec![0, 1]),
        Plan::Advance(2),
        Plan::Read(0),
        Plan::Write(vec![2]),
        Plan::Advance(1),
        Plan::Read(1),
    ];
    materialize_and_apply(&mut h, &plan);
    let bytes = h.handle.snapshot();
    let parsed = parse_log(&bytes);
    let (cut, torn) = match parsed.tail {
        jaap_wal::Tail::Truncated { offset, .. } => (bytes.len().min(offset + 1), true),
        jaap_wal::Tail::Clean => (bytes.len(), false),
    };
    assert!(torn, "seed 9 with p=0.5 should tear at least one append");
    check_cut(&h, &bytes, cut, true);
}

/// Crashing after a snapshot recovers from the compacted log alone.
#[test]
fn recovery_after_snapshot_compaction() {
    let plan = [
        Plan::Write(vec![0, 1]),
        Plan::Advance(2),
        Plan::RevokeWrite,
        Plan::Advance(1),
    ];
    let mut h = run_workload(6, &plan);
    h.c.server_mut().snapshot_journal().expect("snapshot");
    let floor = h.handle.snapshot().len() as u64;
    // Watermarks measured pre-compaction no longer index this byte image;
    // all four ops are inside the snapshot.
    h.watermarks = vec![0; h.ops.len()];
    let post = [Plan::Write(vec![1, 2]), Plan::Read(0), Plan::SetContent(7)];
    materialize_and_apply(&mut h, &post);
    let bytes = h.handle.snapshot();
    let parsed = parse_log(&bytes);
    for &cut in parsed.boundaries.iter().filter(|&&b| b as u64 >= floor) {
        check_cut(&h, &bytes, cut, false);
    }
}

/// With an auto-snapshot threshold the log is compacted in-flight and still
/// recovers to the same server.
#[test]
fn auto_snapshot_keeps_log_recoverable() {
    let plan = [
        Plan::Write(vec![0, 1]),
        Plan::Advance(1),
        Plan::Read(1),
        Plan::Advance(1),
        Plan::Write(vec![0, 2]),
        Plan::Advance(1),
        Plan::Read(2),
    ];
    let c = CoalitionBuilder::new()
        .seed(7)
        .key_bits(192)
        .build()
        .expect("build");
    let store = MemStore::new();
    let handle = store.clone();
    let mut h = Harness {
        c,
        handle,
        ops: Vec::new(),
        watermarks: Vec::new(),
        base_len: 0,
    };
    h.c.server_mut()
        .set_replay_protection(true)
        .expect("config");
    h.c.server_mut().set_snapshot_threshold(Some(1024));
    h.c.server_mut()
        .attach_journal(Box::new(store))
        .expect("attach");
    materialize_and_apply(&mut h, &plan);
    let stats = h.c.server().journal_stats().expect("stats");
    assert!(
        stats.rewrites >= 2,
        "expected an auto-snapshot beyond the bootstrap, got {} rewrites",
        stats.rewrites
    );
    let bytes = h.handle.snapshot();
    let store = MemStore::from_bytes(bytes);
    let (mut recovered, report) =
        CoalitionServer::recover("P", h.c.trust_store(), Box::new(store)).expect("recover");
    assert!(report.truncation.is_none());
    let mut twin = fresh_twin(&h.c);
    for op in &h.ops {
        apply(&mut twin, op);
    }
    assert_equivalent(&mut recovered, &mut twin, &h.c, &h.ops, "auto-snapshot");
}

/// Crash → recover → more traffic → crash → recover again: the journal
/// stays authoritative across repeated incarnations.
#[test]
fn double_crash_recovery() {
    let plan = [Plan::Write(vec![0, 1]), Plan::Advance(2), Plan::Read(1)];
    let h = run_workload(8, &plan);
    let bytes = h.handle.snapshot();
    let (mut first, _) = CoalitionServer::recover(
        "P",
        h.c.trust_store(),
        Box::new(MemStore::from_bytes(bytes.clone())),
    )
    .expect("first recovery");
    let at = Time(first.now().0 + 1);
    first.advance_clock(at).expect("clock");
    let extra = build_request(&h.c, &["User_D2", "User_D3"], "write", at);
    let first_decision = first.handle_request(&extra);

    // "Crash" the first incarnation: all that survives is its log image.
    // (The first recovery rebuilt its journal from `bytes`, and MemStore
    // recovery operates on an independent buffer, so re-derive the image.)
    let mut twin = fresh_twin(&h.c);
    for op in &h.ops {
        apply(&mut twin, op);
    }
    let twin_store = MemStore::new();
    let twin_handle = twin_store.clone();
    twin.attach_journal(Box::new(twin_store)).expect("attach");
    twin.advance_clock(at).expect("clock");
    let twin_decision = twin.handle_request(&extra);
    assert_same_decision(&first_decision, &twin_decision, "pre-second-crash");

    let (mut second, report) = CoalitionServer::recover(
        "P",
        h.c.trust_store(),
        Box::new(MemStore::from_bytes(twin_handle.snapshot())),
    )
    .expect("second recovery");
    assert!(report.truncation.is_none());
    let mut fresh = fresh_twin(&h.c);
    for op in &h.ops {
        apply(&mut fresh, op);
    }
    fresh.advance_clock(at).expect("clock");
    let _ = fresh.handle_request(&extra);
    let mut completed = h.ops.clone();
    completed.push(Op::Request(extra));
    assert_equivalent(&mut second, &mut fresh, &h.c, &completed, "double crash");
}

/// Satellite: a grant that was served from the derivation memo and the
/// verification cache before the crash must be **re-derived** after
/// recovery — and denied, because a revocation was admitted in between.
/// Nothing cached or memoized survives the crash.
#[test]
fn recovered_server_redenies_previously_cached_grant() {
    let mut c = CoalitionBuilder::new()
        .seed(11)
        .key_bits(192)
        .build()
        .expect("build");
    c.server_mut().set_verification_cache(true).expect("config");
    c.server_mut().set_derivation_memo(true).expect("config");
    let store = MemStore::new();
    let handle = store.clone();
    c.server_mut()
        .attach_journal(Box::new(store))
        .expect("attach");

    let at = c.server().now();
    let grant_req = build_request(&c, &["User_D1", "User_D2"], "write", at);
    let first = c.server_mut().handle_request(&grant_req);
    assert!(first.granted, "pre-revocation quorum write must be granted");
    // Same certificates again: the verification cache serves the checks.
    let warm_req = build_request(&c, &["User_D1", "User_D2"], "write", at);
    let warm = c.server_mut().handle_request(&warm_req);
    assert!(warm.granted);
    assert!(
        warm.cached_signature_checks > 0,
        "second presentation should hit the verification cache"
    );

    // Revoke the write AC; the revocation is journaled before admission.
    let ac = c.write_ac().clone();
    let rev = c
        .ra()
        .revoke_attribute(&ac.subject, ac.group.clone(), at, at)
        .expect("revoke");
    c.server_mut()
        .admit_attribute_revocation(&rev)
        .expect("admit");

    // Crash. Recover from the journal image alone.
    let (mut recovered, _) = CoalitionServer::recover(
        "P",
        c.trust_store(),
        Box::new(MemStore::from_bytes(handle.snapshot())),
    )
    .expect("recover");
    let probe_at = Time(recovered.now().0 + 1);
    recovered.advance_clock(probe_at).expect("clock");
    let probe = build_request(&c, &["User_D1", "User_D2"], "write", probe_at);
    let denied = recovered.handle_request(&probe);
    assert!(
        !denied.granted,
        "revoked membership must deny after recovery"
    );
    assert_eq!(
        denied.cached_signature_checks, 0,
        "the verification cache must not survive the crash"
    );
    assert!(
        denied.signature_checks > 0,
        "post-recovery crypto must be re-verified, not assumed"
    );
}

/// Attaching to a non-empty store is refused: that log belongs to a prior
/// incarnation and must go through recovery.
#[test]
fn attach_journal_rejects_nonempty_store() {
    let plan = [Plan::Write(vec![0, 1])];
    let h = run_workload(12, &plan);
    let mut c2 = CoalitionBuilder::new()
        .seed(12)
        .key_bits(192)
        .build()
        .expect("build");
    let used = MemStore::from_bytes(h.handle.snapshot());
    let err = c2.server_mut().attach_journal(Box::new(used));
    assert!(err.is_err(), "non-empty store must be refused");
}
