//! CRLs and revocation recency (§4.3 / Stubblebine–Wright [25]): "It is
//! essential to verify the most recent available revocation information
//! before granting access to an object."

use jaap_coalition::scenario::CoalitionBuilder;
use jaap_core::syntax::Time;
use jaap_pki::CrlEntry;

fn coalition(seed: u64) -> jaap_coalition::scenario::Coalition {
    CoalitionBuilder::new()
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

#[test]
fn empty_crl_heartbeat_satisfies_recency() {
    let mut c = coalition(9001);
    c.server_mut().set_revocation_recency(10).expect("config");

    // No CRL yet: everything is refused.
    let d = c.request_write(&["User_D1", "User_D2"]).expect("w");
    assert!(!d.granted);
    assert!(d
        .detail
        .expect("detail")
        .contains("revocation information stale"));

    // An empty heartbeat CRL restores service.
    let crl = c.ra().issue_crl(1, c.server().now(), vec![]).expect("crl");
    c.server_mut().admit_crl(&crl).expect("admit");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn recency_window_expires() {
    let mut c = coalition(9002);
    c.server_mut().set_revocation_recency(5).expect("config");
    let crl = c.ra().issue_crl(1, Time(10), vec![]).expect("crl");
    c.server_mut().admit_crl(&crl).expect("admit");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);

    // 6 ticks later the CRL is stale again.
    c.advance_time(Time(16)).expect("clock");
    let d = c.request_write(&["User_D1", "User_D2"]).expect("w");
    assert!(!d.granted);

    // A fresh heartbeat (higher sequence) restores service.
    let crl2 = c.ra().issue_crl(2, Time(16), vec![]).expect("crl");
    c.server_mut().admit_crl(&crl2).expect("admit");
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}

#[test]
fn crl_carries_revocations() {
    let mut c = coalition(9003);
    c.server_mut().set_revocation_recency(100).expect("config");
    let entry = CrlEntry {
        subject: c.write_ac().subject.clone(),
        group: c.write_ac().group.clone(),
        revoked_from: Time(12),
    };
    c.advance_time(Time(12)).expect("clock");
    let crl = c.ra().issue_crl(1, Time(12), vec![entry]).expect("crl");
    c.server_mut().admit_crl(&crl).expect("admit");
    c.advance_time(Time(13)).expect("clock");

    // The write AC named in the CRL is dead; reads survive.
    assert!(!c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    assert!(c.request_read(&["User_D3"]).expect("r").granted);
}

#[test]
fn sequence_rollback_rejected() {
    let mut c = coalition(9004);
    let crl2 = c.ra().issue_crl(2, Time(10), vec![]).expect("crl");
    c.server_mut().admit_crl(&crl2).expect("admit");
    let crl1 = c.ra().issue_crl(1, Time(10), vec![]).expect("old crl");
    let err = c.server_mut().admit_crl(&crl1);
    assert!(err.is_err(), "replaying an old CRL must fail");
    let same = c.ra().issue_crl(2, Time(10), vec![]).expect("same crl");
    assert!(c.server_mut().admit_crl(&same).is_err());
}

#[test]
fn forged_crl_rejected() {
    use jaap_pki::RevocationAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut c = coalition(9005);
    let mut rng = StdRng::seed_from_u64(1);
    let rogue = RevocationAuthority::new("RogueRA", "AA", &mut rng, 192).expect("rogue");
    let crl = rogue.issue_crl(1, Time(10), vec![]).expect("crl");
    assert!(c.server_mut().admit_crl(&crl).is_err());
}

#[test]
fn recency_off_by_default() {
    let mut c = coalition(9006);
    // Without a recency policy, no CRL is required.
    assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
}
