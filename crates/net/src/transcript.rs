//! Transcript of network activity, in the spirit of the history component of
//! the paper's local/environment states (Appendix C).

use crate::PartyId;

/// What happened to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranscriptEvent {
    /// Delivered to the recipient's queue.
    Delivered,
    /// Silently dropped by the environment.
    Dropped,
    /// Delivered twice (replayed).
    Duplicated,
    /// Held back by the environment before delivery.
    Delayed(std::time::Duration),
    /// Suppressed because the link is severed by a partition.
    Partitioned,
    /// Suppressed because the sender has crash-stopped.
    DeadSender,
}

/// One transcript line: who sent what to whom, and its fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Global sequence number (send order across the whole network).
    pub seq: u64,
    /// Sender.
    pub from: PartyId,
    /// Recipient.
    pub to: PartyId,
    /// Debug rendering of the payload (payloads are type-erased here so the
    /// transcript does not have to be generic).
    pub payload: String,
    /// Fate of the message.
    pub event: TranscriptEvent,
}

impl core::fmt::Display for TranscriptEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let tag = match self.event {
            TranscriptEvent::Delivered => "->",
            TranscriptEvent::Dropped => "-X",
            TranscriptEvent::Duplicated => "=>",
            TranscriptEvent::Delayed(_) => "~>",
            TranscriptEvent::Partitioned => "|X",
            TranscriptEvent::DeadSender => "+X",
        };
        write!(
            f,
            "[{:>4}] {} {tag} {}: {}",
            self.seq, self.from, self.to, self.payload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_fate_marker() {
        let e = TranscriptEntry {
            seq: 7,
            from: PartyId(0),
            to: PartyId(2),
            payload: "share".into(),
            event: TranscriptEvent::Dropped,
        };
        let s = e.to_string();
        assert!(s.contains("-X"));
        assert!(s.contains("party#0"));
        assert!(s.contains("party#2"));
        assert!(s.contains("share"));
    }

    #[test]
    fn fault_model_events_have_distinct_markers() {
        let mut entry = TranscriptEntry {
            seq: 1,
            from: PartyId(0),
            to: PartyId(1),
            payload: "m".into(),
            event: TranscriptEvent::Delayed(std::time::Duration::from_millis(3)),
        };
        assert!(entry.to_string().contains("~>"));
        entry.event = TranscriptEvent::Partitioned;
        assert!(entry.to_string().contains("|X"));
        entry.event = TranscriptEvent::DeadSender;
        assert!(entry.to_string().contains("+X"));
    }
}
