//! Per-party network endpoints.

use std::collections::VecDeque;
use std::fmt::Debug;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};

use crate::fault::Fate;
use crate::network::Shared;
use crate::transcript::{TranscriptEntry, TranscriptEvent};
use crate::PartyId;

/// A message in flight: payload plus routing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: PartyId,
    /// Recipient.
    pub to: PartyId,
    /// Global send sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: M,
}

/// Channel representation of a message: the envelope plus the instant the
/// environment allows it to surface (delay injection). Not part of the
/// public API — receivers only ever see the [`Envelope`].
#[derive(Debug, Clone)]
pub(crate) struct Wire<M> {
    env: Envelope<M>,
    due: Option<Instant>,
}

impl<M> Wire<M> {
    /// Whether the message may surface at or before `deadline`.
    fn due_by(&self, deadline: Instant) -> bool {
        self.due.is_none_or(|d| d <= deadline)
    }

    /// Blocks out any residual injected delay, then unwraps the envelope.
    fn surface(self) -> Envelope<M> {
        if let Some(due) = self.due {
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        self.env
    }
}

/// Errors surfaced by endpoint operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The recipient id is not on this network.
    UnknownParty(PartyId),
    /// A party cannot send to itself.
    SelfSend,
    /// The peer endpoint was dropped (its channel is disconnected).
    Disconnected,
    /// `recv_timeout` expired with no message.
    Timeout,
    /// A mesh construction was rejected: zero parties, an invalid
    /// [`crate::FaultPlan`], or a fault entry naming a party outside the
    /// mesh (returned by [`crate::Network::try_mesh_with`]).
    InvalidMesh(String),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::UnknownParty(p) => write!(f, "unknown party {p}"),
            NetError::SelfSend => write!(f, "a party cannot send to itself"),
            NetError::Disconnected => write!(f, "peer endpoint disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::InvalidMesh(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for NetError {}

/// One party's handle onto the simulated network.
///
/// Receiving is either in arrival order ([`Endpoint::recv`]) or per-sender
/// ([`Endpoint::recv_from`]); the latter buffers messages from other senders
/// so protocols can be written in direct style.
pub struct Endpoint<M> {
    id: PartyId,
    n: usize,
    senders: Vec<Sender<Wire<M>>>,
    receiver: Receiver<Wire<M>>,
    pending: Vec<VecDeque<Wire<M>>>,
    shared: Arc<Shared>,
}

impl<M: Clone + Debug + Send + 'static> Endpoint<M> {
    pub(crate) fn new(
        id: usize,
        n: usize,
        senders: Vec<Sender<Wire<M>>>,
        receiver: Receiver<Wire<M>>,
        shared: Arc<Shared>,
    ) -> Self {
        Endpoint {
            id: PartyId(id),
            n,
            senders,
            receiver,
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            shared,
        }
    }

    /// This endpoint's party id.
    #[must_use]
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// Total number of parties on the network.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    fn record(&self, seq: u64, to: PartyId, payload: &M, event: TranscriptEvent) {
        if self.shared.record_transcript {
            self.shared.transcript.lock().push(TranscriptEntry {
                seq,
                from: self.id,
                to,
                payload: format!("{payload:?}"),
                event,
            });
        }
    }

    /// Counts a suppressed message and tags the transcript accordingly.
    fn block(&self, seq: u64, to: PartyId, payload: &M, event: TranscriptEvent) {
        self.shared.stats.lock().messages_blocked += 1;
        if let Some(link) = self.shared.link(self.id.0, to.0, self.n) {
            link.blocked.inc();
        }
        self.record(seq, to, payload, event);
    }

    /// Sends `payload` to party `to`.
    ///
    /// # Errors
    ///
    /// [`NetError::SelfSend`] when `to == self.id()`,
    /// [`NetError::UnknownParty`] for an out-of-range id, and
    /// [`NetError::Disconnected`] if the peer's endpoint has been dropped.
    /// A message consumed by the fault plan — dropped, blocked by a
    /// partition, or suppressed because this party has crash-stopped —
    /// still returns `Ok(())`: the sender cannot tell (that is the point of
    /// the environment adversary).
    pub fn send(&self, to: PartyId, payload: M) -> Result<(), NetError> {
        if to == self.id {
            return Err(NetError::SelfSend);
        }
        let Some(sender) = self.senders.get(to.0) else {
            return Err(NetError::UnknownParty(to));
        };
        let seq = {
            let mut seq = self.shared.seq.lock();
            let cur = *seq;
            *seq += 1;
            cur
        };
        self.shared.stats.lock().messages_sent += 1;

        // Crash-stop: once this party exhausts its send budget it is dead —
        // every later send is silently swallowed.
        let my_sends = {
            let mut sent_by = self.shared.sent_by.lock();
            sent_by[self.id.0] += 1;
            sent_by[self.id.0]
        };
        if let Some(budget) = self.shared.plan.crash_limit(self.id.0) {
            if my_sends > budget {
                {
                    let mut crashed = self.shared.crashed.lock();
                    if !crashed[self.id.0] {
                        crashed[self.id.0] = true;
                        self.shared.stats.lock().parties_crashed += 1;
                    }
                }
                self.block(seq, to, &payload, TranscriptEvent::DeadSender);
                return Ok(());
            }
        }

        // Partition: the link between the two parties is severed.
        if self.shared.plan.is_severed(self.id.0, to.0) {
            self.block(seq, to, &payload, TranscriptEvent::Partitioned);
            return Ok(());
        }

        let fate = self.shared.faults.lock().decide();
        let env = Envelope {
            from: self.id,
            to,
            seq,
            payload,
        };
        let link = self.shared.link(self.id.0, to.0, self.n);
        match fate {
            Fate::Drop => {
                self.shared.stats.lock().messages_dropped += 1;
                if let Some(link) = link {
                    link.dropped.inc();
                }
                self.record(seq, to, &env.payload, TranscriptEvent::Dropped);
                Ok(())
            }
            Fate::Deliver => {
                self.shared.stats.lock().messages_delivered += 1;
                if let Some(link) = link {
                    link.delivered.inc();
                }
                self.record(seq, to, &env.payload, TranscriptEvent::Delivered);
                sender
                    .send(Wire { env, due: None })
                    .map_err(|_| NetError::Disconnected)
            }
            Fate::Duplicate => {
                {
                    let mut stats = self.shared.stats.lock();
                    stats.messages_duplicated += 1;
                    stats.messages_delivered += 2;
                }
                if let Some(link) = link {
                    link.duplicated.inc();
                    link.delivered.add(2);
                }
                self.record(seq, to, &env.payload, TranscriptEvent::Duplicated);
                let wire = Wire { env, due: None };
                sender
                    .send(wire.clone())
                    .and_then(|()| sender.send(wire))
                    .map_err(|_| NetError::Disconnected)
            }
            Fate::Delay(d) => {
                {
                    let mut stats = self.shared.stats.lock();
                    stats.messages_delayed += 1;
                    stats.messages_delivered += 1;
                }
                if let Some(link) = link {
                    link.delayed.inc();
                    link.delivered.inc();
                }
                self.record(seq, to, &env.payload, TranscriptEvent::Delayed(d));
                sender
                    .send(Wire {
                        env,
                        due: Some(Instant::now() + d),
                    })
                    .map_err(|_| NetError::Disconnected)
            }
        }
    }

    /// Sends `payload` to every other party.
    ///
    /// # Errors
    ///
    /// Fails on the first delivery error; earlier sends are not rolled back.
    pub fn broadcast(&self, payload: M) -> Result<(), NetError> {
        for i in 0..self.n {
            if i != self.id.0 {
                self.send(PartyId(i), payload.clone())?;
            }
        }
        Ok(())
    }

    /// Pops the first buffered message, in sender-id order.
    fn pop_pending(&mut self) -> Option<Wire<M>> {
        self.pending.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Receives the next message in arrival order, blocking (including
    /// through any injected delay). Messages previously buffered by
    /// [`Endpoint::recv_from`] are returned first in sender-id order.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if all senders are gone.
    pub fn recv(&mut self) -> Result<Envelope<M>, NetError> {
        if let Some(w) = self.pop_pending() {
            return Ok(w.surface());
        }
        self.receiver
            .recv()
            .map(Wire::surface)
            .map_err(|_| NetError::Disconnected)
    }

    /// Like [`Endpoint::recv`] with a timeout. A message whose injected
    /// delay extends past the timeout is kept buffered (it will surface on a
    /// later receive) and [`NetError::Timeout`] is returned.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if nothing surfaces within `dur`;
    /// [`NetError::Disconnected`] if all senders are gone.
    pub fn recv_timeout(&mut self, dur: Duration) -> Result<Envelope<M>, NetError> {
        let deadline = Instant::now() + dur;
        for q in &mut self.pending {
            if q.front().is_some_and(|w| w.due_by(deadline)) {
                let w = q.pop_front().expect("nonempty queue");
                return Ok(w.surface());
            }
        }
        loop {
            let now = Instant::now();
            let Some(budget) = deadline
                .checked_duration_since(now)
                .filter(|b| !b.is_zero())
            else {
                return Err(NetError::Timeout);
            };
            match self.receiver.recv_timeout(budget) {
                Ok(w) if w.due_by(deadline) => return Ok(w.surface()),
                // Not due yet: keep it for a later receive, keep waiting.
                Ok(w) => self.pending[w.env.from.0].push_back(w),
                Err(RecvTimeoutError::Timeout) => return Err(NetError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
            }
        }
    }

    /// Receives the next message *from a specific sender*, buffering
    /// out-of-order messages from other senders for later delivery.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownParty`] for an out-of-range id;
    /// [`NetError::Disconnected`] if the channel closes first.
    pub fn recv_from(&mut self, from: PartyId) -> Result<M, NetError> {
        if from.0 >= self.n {
            return Err(NetError::UnknownParty(from));
        }
        if let Some(w) = self.pending[from.0].pop_front() {
            return Ok(w.surface().payload);
        }
        loop {
            let w = self.receiver.recv().map_err(|_| NetError::Disconnected)?;
            if w.env.from == from {
                return Ok(w.surface().payload);
            }
            self.pending[w.env.from.0].push_back(w);
        }
    }

    /// Like [`Endpoint::recv_from`] with a timeout: the bounded wait every
    /// signing-session round uses so no protocol step can hang on a crashed
    /// or partitioned peer.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownParty`] for an out-of-range id;
    /// [`NetError::Timeout`] if nothing from `from` surfaces within `dur`;
    /// [`NetError::Disconnected`] if the channel closes first.
    pub fn recv_from_timeout(&mut self, from: PartyId, dur: Duration) -> Result<M, NetError> {
        if from.0 >= self.n {
            return Err(NetError::UnknownParty(from));
        }
        let deadline = Instant::now() + dur;
        if self.pending[from.0]
            .front()
            .is_some_and(|w| w.due_by(deadline))
        {
            let w = self.pending[from.0].pop_front().expect("nonempty queue");
            return Ok(w.surface().payload);
        }
        loop {
            let now = Instant::now();
            let Some(budget) = deadline
                .checked_duration_since(now)
                .filter(|b| !b.is_zero())
            else {
                return Err(NetError::Timeout);
            };
            match self.receiver.recv_timeout(budget) {
                Ok(w) if w.env.from == from && w.due_by(deadline) => {
                    return Ok(w.surface().payload);
                }
                Ok(w) => self.pending[w.env.from.0].push_back(w),
                Err(RecvTimeoutError::Timeout) => return Err(NetError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
            }
        }
    }

    /// Receives exactly one message from every other party, returning
    /// payloads indexed by sender (position `self.id()` is `None`).
    ///
    /// This is the synchronisation point between protocol rounds.
    ///
    /// # Errors
    ///
    /// Propagates [`Endpoint::recv_from`] errors.
    pub fn gather_round(&mut self) -> Result<Vec<Option<M>>, NetError> {
        let me = self.id.0;
        let mut out: Vec<Option<M>> = (0..self.n).map(|_| None).collect();
        for i in (0..self.n).filter(|&i| i != me) {
            out[i] = Some(self.recv_from(PartyId(i))?);
        }
        Ok(out)
    }
}

impl<M> core::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::network::Network;
    use crate::run_parties;

    #[test]
    fn self_send_rejected() {
        let (mut eps, _h) = Network::<u8>::mesh(2);
        let ep = eps.remove(0);
        assert_eq!(ep.send(PartyId(0), 1), Err(NetError::SelfSend));
    }

    #[test]
    fn unknown_party_rejected() {
        let (mut eps, _h) = Network::<u8>::mesh(2);
        let ep = eps.remove(0);
        assert_eq!(
            ep.send(PartyId(9), 1),
            Err(NetError::UnknownParty(PartyId(9)))
        );
    }

    #[test]
    fn recv_from_buffers_other_senders() {
        let (eps, _h) = Network::<u32>::mesh(3);
        let results = run_parties(eps, |mut ep| match ep.id().0 {
            0 => {
                // Receive specifically from 2 first, then from 1, regardless
                // of arrival order.
                let from2 = ep.recv_from(PartyId(2)).expect("from 2");
                let from1 = ep.recv_from(PartyId(1)).expect("from 1");
                vec![from2, from1]
            }
            me => {
                ep.send(PartyId(0), me as u32 * 10).expect("send");
                vec![]
            }
        });
        assert_eq!(results[0], vec![20, 10]);
    }

    #[test]
    fn gather_round_collects_all_peers() {
        let (eps, _h) = Network::<usize>::mesh(4);
        let results = run_parties(eps, |mut ep| {
            ep.broadcast(ep.id().0).expect("broadcast");
            ep.gather_round().expect("gather")
        });
        for (me, row) in results.iter().enumerate() {
            for (i, slot) in row.iter().enumerate() {
                if i == me {
                    assert!(slot.is_none());
                } else {
                    assert_eq!(*slot, Some(i));
                }
            }
        }
    }

    #[test]
    fn recv_drains_pending_before_channel() {
        let (eps, _h) = Network::<u32>::mesh(3);
        let results = run_parties(eps, |mut ep| match ep.id().0 {
            0 => {
                // Force buffering: wait for 2 first even though 1 may arrive.
                let _ = ep.recv_from(PartyId(2)).expect("from 2");
                // Now recv() must surface the buffered message from 1.
                let env = ep.recv().expect("recv");
                Some((env.from, env.payload))
            }
            1 => {
                ep.send(PartyId(0), 111).expect("send");
                None
            }
            _ => {
                // Give party 1 a head start so its message is buffered.
                std::thread::sleep(Duration::from_millis(20));
                ep.send(PartyId(0), 222).expect("send");
                None
            }
        });
        assert_eq!(results[0], Some((PartyId(1), 111)));
    }

    #[test]
    fn timeout_on_silence() {
        let (mut eps, _h) = Network::<u8>::mesh(2);
        let mut ep = eps.remove(0);
        assert_eq!(
            ep.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn recv_from_timeout_times_out_on_wrong_sender() {
        let (eps, _h) = Network::<u8>::mesh(3);
        let results = run_parties(eps, |mut ep| match ep.id().0 {
            0 => {
                // Party 1 sends, party 2 stays silent: waiting on 2 times out
                // while 1's message stays buffered for later.
                let r = ep.recv_from_timeout(PartyId(2), Duration::from_millis(50));
                assert_eq!(r, Err(NetError::Timeout));
                ep.recv_from(PartyId(1)).expect("buffered message from 1")
            }
            1 => {
                ep.send(PartyId(0), 42).expect("send");
                0
            }
            _ => 0,
        });
        assert_eq!(results[0], 42);
    }

    #[test]
    fn delayed_message_past_timeout_surfaces_later() {
        let plan = FaultPlan::seeded(11).with_delay(1.0, Duration::from_millis(60));
        let (eps, _h) = Network::<u8>::mesh_with(2, plan, false);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 9).expect("send");
            } else {
                // Give the wire time to arrive in the channel, then poll with
                // a window shorter than any possible residual delay sleep.
                let mut got = None;
                for _ in 0..100 {
                    match ep.recv_timeout(Duration::from_millis(5)) {
                        Ok(env) => {
                            got = Some(env.payload);
                            break;
                        }
                        Err(NetError::Timeout) => continue,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                assert_eq!(got, Some(9), "delayed message never surfaced");
            }
        });
    }

    #[test]
    fn error_display() {
        assert_eq!(
            NetError::SelfSend.to_string(),
            "a party cannot send to itself"
        );
        assert!(NetError::UnknownParty(PartyId(3))
            .to_string()
            .contains("party#3"));
    }
}
