//! Network construction and the party-thread harness.

use std::collections::VecDeque;
use std::fmt::Debug;
use std::sync::Arc;

use crossbeam_channel::unbounded;
use jaap_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;

use crate::endpoint::{Endpoint, NetError, Wire};
use crate::fault::{FaultPlan, FaultRng};
use crate::transcript::TranscriptEntry;

/// Default bound on the recorded transcript, in entries. Long chaos runs
/// used to grow the transcript without limit; now the oldest entries are
/// evicted past this capacity and counted, matching the bounded-cache
/// convention used by the verify and replay caches.
pub const DEFAULT_TRANSCRIPT_CAPACITY: usize = 4096;

/// Bounded transcript buffer: keeps the newest `capacity` entries,
/// evicting oldest-first and counting what it dropped.
#[derive(Debug)]
pub(crate) struct TranscriptBuffer {
    entries: VecDeque<TranscriptEntry>,
    capacity: usize,
    dropped: u64,
}

impl TranscriptBuffer {
    fn new(capacity: usize) -> Self {
        TranscriptBuffer {
            entries: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, entry: TranscriptEntry) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
    }
}

/// Aggregate statistics for a network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to `send`/`broadcast` (before faults).
    pub messages_sent: u64,
    /// Messages actually delivered (a duplicate counts twice).
    pub messages_delivered: u64,
    /// Messages dropped by the fault plan.
    pub messages_dropped: u64,
    /// Messages delivered twice.
    pub messages_duplicated: u64,
    /// Messages delivered late because of an injected delay.
    pub messages_delayed: u64,
    /// Messages suppressed by a severed link or a crashed sender.
    pub messages_blocked: u64,
    /// Parties that have crash-stopped (exhausted their send budget).
    pub parties_crashed: u64,
}

/// Pre-resolved per-link counters for an observed mesh: one row per
/// directed `(from, to)` pair, indexed `from * n + to`. Resolving them at
/// mesh-construction time keeps the send path at atomic increments only.
#[derive(Debug, Clone)]
pub(crate) struct LinkMetrics {
    pub(crate) delivered: Arc<Counter>,
    pub(crate) dropped: Arc<Counter>,
    pub(crate) delayed: Arc<Counter>,
    pub(crate) duplicated: Arc<Counter>,
    pub(crate) blocked: Arc<Counter>,
}

pub(crate) struct Shared {
    pub(crate) seq: Mutex<u64>,
    pub(crate) stats: Mutex<NetworkStats>,
    pub(crate) transcript: Mutex<TranscriptBuffer>,
    pub(crate) faults: Mutex<FaultRng>,
    pub(crate) plan: FaultPlan,
    /// Per-party outbound send attempts (drives the crash-stop schedule).
    pub(crate) sent_by: Mutex<Vec<u64>>,
    /// Which parties have already crash-stopped (so each is counted once).
    pub(crate) crashed: Mutex<Vec<bool>>,
    pub(crate) record_transcript: bool,
    /// Per-link counters, present only on observed meshes.
    pub(crate) links: Option<Vec<LinkMetrics>>,
}

impl Shared {
    /// The metrics row for the `from → to` link, when observed.
    pub(crate) fn link(&self, from: usize, to: usize, n: usize) -> Option<&LinkMetrics> {
        self.links.as_ref().and_then(|rows| rows.get(from * n + to))
    }
}

/// Constructor namespace for simulated networks; see [`Network::mesh`].
#[derive(Debug)]
pub struct Network<M> {
    _marker: core::marker::PhantomData<M>,
}

/// Inspection handle held by the test/bench harness while parties run.
#[derive(Clone)]
pub struct NetworkHandle {
    shared: Arc<Shared>,
}

impl NetworkHandle {
    /// Snapshot of the statistics so far.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        *self.shared.stats.lock()
    }

    /// Snapshot of the transcript so far (empty unless recording was enabled
    /// via [`Network::mesh_with`]). Only the newest entries up to the
    /// buffer's capacity are retained; see
    /// [`NetworkHandle::transcript_dropped`].
    #[must_use]
    pub fn transcript(&self) -> Vec<TranscriptEntry> {
        self.shared
            .transcript
            .lock()
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Entries evicted (or refused, at capacity 0) from the bounded
    /// transcript buffer so far.
    #[must_use]
    pub fn transcript_dropped(&self) -> u64 {
        self.shared.transcript.lock().dropped
    }

    /// Re-bounds the transcript buffer, evicting oldest entries
    /// immediately if the new capacity is smaller than the current length.
    pub fn set_transcript_capacity(&self, capacity: usize) {
        self.shared.transcript.lock().set_capacity(capacity);
    }
}

impl core::fmt::Debug for NetworkHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NetworkHandle")
            .field("stats", &self.stats())
            .finish()
    }
}

impl<M: Clone + Debug + Send + 'static> Network<M> {
    /// Builds a reliable fully connected mesh of `n` parties.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn mesh(n: usize) -> (Vec<Endpoint<M>>, NetworkHandle) {
        Self::mesh_with(n, FaultPlan::reliable(), false)
    }

    /// Builds a mesh with a fault plan and optional transcript recording.
    ///
    /// This is the panicking convenience wrapper around
    /// [`Network::try_mesh_with`]; library consumers that construct meshes
    /// from caller-supplied fault plans should use the `try_` form and
    /// handle the error instead.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, if [`FaultPlan::validate`] rejects the plan
    /// (e.g. a probability outside `[0, 1]`), or if a crash or partition
    /// entry names a party outside `0..n`.
    #[must_use]
    pub fn mesh_with(
        n: usize,
        faults: FaultPlan,
        record_transcript: bool,
    ) -> (Vec<Endpoint<M>>, NetworkHandle) {
        match Self::try_mesh_with(n, faults, record_transcript) {
            Ok(mesh) => mesh,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a mesh with a fault plan and optional transcript recording,
    /// rejecting invalid configurations with [`NetError::InvalidMesh`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidMesh`] when `n == 0`, when
    /// [`FaultPlan::validate`] rejects the plan (e.g. a probability outside
    /// `[0, 1]`), or when a crash or partition entry names a party outside
    /// `0..n`.
    pub fn try_mesh_with(
        n: usize,
        faults: FaultPlan,
        record_transcript: bool,
    ) -> Result<(Vec<Endpoint<M>>, NetworkHandle), NetError> {
        Self::build_mesh(n, faults, record_transcript, None)
    }

    /// Like [`Network::try_mesh_with`], but additionally records per-link
    /// delivery outcomes into `metrics`: for every directed pair the
    /// counters `net.link.{from}->{to}.{delivered,dropped,delayed,
    /// duplicated,blocked}` are resolved up front, so the send path only
    /// performs atomic increments.
    ///
    /// # Errors
    ///
    /// See [`Network::try_mesh_with`].
    pub fn try_mesh_observed(
        n: usize,
        faults: FaultPlan,
        record_transcript: bool,
        metrics: &MetricsRegistry,
    ) -> Result<(Vec<Endpoint<M>>, NetworkHandle), NetError> {
        Self::build_mesh(n, faults, record_transcript, Some(metrics))
    }

    fn build_mesh(
        n: usize,
        faults: FaultPlan,
        record_transcript: bool,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<(Vec<Endpoint<M>>, NetworkHandle), NetError> {
        if n == 0 {
            return Err(NetError::InvalidMesh(
                "a network needs at least one party".into(),
            ));
        }
        if let Err(why) = faults.validate() {
            return Err(NetError::InvalidMesh(format!("invalid FaultPlan: {why}")));
        }
        for c in &faults.crashes {
            if c.party >= n {
                return Err(NetError::InvalidMesh(format!(
                    "crash entry names unknown party {}",
                    c.party
                )));
            }
        }
        for &(a, b) in &faults.severed {
            if a >= n || b >= n {
                return Err(NetError::InvalidMesh(format!(
                    "partition names unknown party ({a}, {b})"
                )));
            }
        }
        let links = metrics.map(|registry| {
            (0..n * n)
                .map(|idx| {
                    let (from, to) = (idx / n, idx % n);
                    let name = |kind: &str| format!("net.link.{from}->{to}.{kind}");
                    LinkMetrics {
                        delivered: registry.counter(&name("delivered")),
                        dropped: registry.counter(&name("dropped")),
                        delayed: registry.counter(&name("delayed")),
                        duplicated: registry.counter(&name("duplicated")),
                        blocked: registry.counter(&name("blocked")),
                    }
                })
                .collect()
        });
        let shared = Arc::new(Shared {
            seq: Mutex::new(0),
            stats: Mutex::new(NetworkStats::default()),
            transcript: Mutex::new(TranscriptBuffer::new(DEFAULT_TRANSCRIPT_CAPACITY)),
            faults: Mutex::new(FaultRng::new(faults.clone())),
            plan: faults,
            sent_by: Mutex::new(vec![0; n]),
            crashed: Mutex::new(vec![false; n]),
            record_transcript,
            links,
        });
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Wire<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint::new(i, n, senders.clone(), rx, Arc::clone(&shared)))
            .collect();
        Ok((endpoints, NetworkHandle { shared }))
    }
}

/// Runs one closure per endpoint on scoped threads, returning results in
/// party order. This is the standard harness for executing a round of a
/// multi-party protocol.
///
/// # Panics
///
/// Propagates any panic from a party thread.
pub fn run_parties<M, R, F>(endpoints: Vec<Endpoint<M>>, f: F) -> Vec<R>
where
    M: Clone + Debug + Send + 'static,
    R: Send,
    F: Fn(Endpoint<M>) -> R + Sync,
{
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| scope.spawn(move || f(ep)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartyId;

    #[test]
    fn mesh_assigns_dense_ids() {
        let (eps, _h) = Network::<u32>::mesh(4);
        let ids: Vec<_> = eps.iter().map(Endpoint::id).collect();
        assert_eq!(ids, vec![PartyId(0), PartyId(1), PartyId(2), PartyId(3)]);
        assert!(eps.iter().all(|e| e.n() == 4));
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn empty_mesh_panics() {
        let _ = Network::<u32>::mesh(0);
    }

    #[test]
    fn ring_pass_sums_ids() {
        let (eps, handle) = Network::<u64>::mesh(5);
        let results = run_parties(eps, |mut ep| {
            let me = ep.id().0;
            let next = PartyId((me + 1) % ep.n());
            ep.send(next, me as u64).expect("send");
            let env = ep.recv().expect("recv");
            (env.from, env.payload)
        });
        for (i, (from, payload)) in results.iter().enumerate() {
            let expect_from = (i + 5 - 1) % 5;
            assert_eq!(*from, PartyId(expect_from));
            assert_eq!(*payload, expect_from as u64);
        }
        assert_eq!(handle.stats().messages_sent, 5);
        assert_eq!(handle.stats().messages_delivered, 5);
    }

    #[test]
    fn transcript_records_when_enabled() {
        let (eps, handle) = Network::<&'static str>::mesh_with(2, FaultPlan::reliable(), true);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), "hello").expect("send");
                None
            } else {
                Some(ep.recv().expect("recv").payload)
            }
        });
        let t = handle.transcript();
        assert_eq!(t.len(), 1);
        assert!(t[0].payload.contains("hello"));
    }

    #[test]
    fn transcript_bounded_with_oldest_first_eviction() {
        let (eps, handle) = Network::<u64>::mesh_with(2, FaultPlan::reliable(), true);
        handle.set_transcript_capacity(3);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                for v in 0..10u64 {
                    ep.send(PartyId(1), v).expect("send");
                }
            } else {
                for _ in 0..10 {
                    let _ = ep.recv().expect("recv");
                }
            }
        });
        let t = handle.transcript();
        assert_eq!(t.len(), 3);
        assert_eq!(handle.transcript_dropped(), 7);
        // The newest entries survive.
        assert!(t[0].payload.contains('7'));
        assert!(t[2].payload.contains('9'));
    }

    #[test]
    fn transcript_capacity_zero_records_nothing_but_counts() {
        let (eps, handle) = Network::<u8>::mesh_with(2, FaultPlan::reliable(), true);
        handle.set_transcript_capacity(0);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 1).expect("send");
            } else {
                let _ = ep.recv().expect("recv");
            }
        });
        assert!(handle.transcript().is_empty());
        assert_eq!(handle.transcript_dropped(), 1);
    }

    #[test]
    fn shrinking_transcript_capacity_evicts_immediately() {
        let (eps, handle) = Network::<u64>::mesh_with(2, FaultPlan::reliable(), true);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                for v in 0..5u64 {
                    ep.send(PartyId(1), v).expect("send");
                }
            } else {
                for _ in 0..5 {
                    let _ = ep.recv().expect("recv");
                }
            }
        });
        assert_eq!(handle.transcript().len(), 5);
        handle.set_transcript_capacity(2);
        assert_eq!(handle.transcript().len(), 2);
        assert_eq!(handle.transcript_dropped(), 3);
    }

    #[test]
    fn transcript_empty_when_disabled() {
        let (eps, handle) = Network::<u8>::mesh(2);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 9).expect("send");
            } else {
                let _ = ep.recv().expect("recv");
            }
        });
        assert!(handle.transcript().is_empty());
        assert_eq!(handle.stats().messages_delivered, 1);
    }

    #[test]
    fn dropped_messages_counted_not_delivered() {
        let plan = FaultPlan::seeded(1).with_drop(1.0);
        let (eps, handle) = Network::<u8>::mesh_with(2, plan, false);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 1).expect("send");
                ep.send(PartyId(1), 2).expect("send");
            } else {
                assert!(ep
                    .recv_timeout(std::time::Duration::from_millis(50))
                    .is_err());
            }
        });
        let s = handle.stats();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_dropped, 2);
        assert_eq!(s.messages_delivered, 0);
    }

    #[test]
    fn duplicated_messages_delivered_twice() {
        let plan = FaultPlan::seeded(1).with_duplicate(1.0);
        let (eps, handle) = Network::<u8>::mesh_with(2, plan, false);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 7).expect("send");
            } else {
                assert_eq!(ep.recv().expect("first").payload, 7);
                assert_eq!(ep.recv().expect("replay").payload, 7);
            }
        });
        assert_eq!(handle.stats().messages_duplicated, 1);
        assert_eq!(handle.stats().messages_delivered, 2);
    }

    #[test]
    #[should_panic(expected = "invalid FaultPlan")]
    fn mesh_with_rejects_out_of_range_probability() {
        let plan = FaultPlan {
            drop_prob: 1.7,
            ..FaultPlan::reliable()
        };
        let _ = Network::<u8>::mesh_with(2, plan, false);
    }

    #[test]
    #[should_panic(expected = "unknown party")]
    fn mesh_with_rejects_crash_of_unknown_party() {
        let _ = Network::<u8>::mesh_with(2, FaultPlan::reliable().with_crash(7, 0), false);
    }

    #[test]
    fn crashed_party_goes_mute_after_send_budget() {
        let plan = FaultPlan::reliable().with_crash(0, 2);
        let (eps, handle) = Network::<u8>::mesh_with(2, plan, true);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                for v in 0..5 {
                    ep.send(PartyId(1), v).expect("send never errors for crash");
                }
            } else {
                assert_eq!(ep.recv().expect("first").payload, 0);
                assert_eq!(ep.recv().expect("second").payload, 1);
                assert!(ep
                    .recv_timeout(std::time::Duration::from_millis(50))
                    .is_err());
            }
        });
        let s = handle.stats();
        assert_eq!(s.messages_sent, 5);
        assert_eq!(s.messages_delivered, 2);
        assert_eq!(s.messages_blocked, 3);
        assert_eq!(s.parties_crashed, 1);
        use crate::transcript::TranscriptEvent;
        let dead = handle
            .transcript()
            .iter()
            .filter(|e| e.event == TranscriptEvent::DeadSender)
            .count();
        assert_eq!(dead, 3);
    }

    #[test]
    fn partitioned_link_blocks_both_directions() {
        let plan = FaultPlan::reliable().with_partition(&[0], &[1]);
        let (eps, handle) = Network::<u8>::mesh_with(3, plan, true);
        let _ = run_parties(eps, |mut ep| match ep.id().0 {
            0 => {
                ep.send(PartyId(1), 10).expect("blocked send still ok");
                ep.send(PartyId(2), 20).expect("send");
            }
            1 => {
                ep.send(PartyId(0), 30).expect("blocked send still ok");
                assert!(ep
                    .recv_timeout(std::time::Duration::from_millis(50))
                    .is_err());
            }
            _ => {
                assert_eq!(ep.recv().expect("recv").payload, 20);
            }
        });
        let s = handle.stats();
        assert_eq!(s.messages_blocked, 2);
        assert_eq!(s.messages_delivered, 1);
        use crate::transcript::TranscriptEvent;
        let cut = handle
            .transcript()
            .iter()
            .filter(|e| e.event == TranscriptEvent::Partitioned)
            .count();
        assert_eq!(cut, 2);
    }

    #[test]
    fn try_mesh_with_rejects_bad_configurations_without_panicking() {
        let err = Network::<u8>::try_mesh_with(0, FaultPlan::reliable(), false).unwrap_err();
        assert!(matches!(&err, NetError::InvalidMesh(m) if m.contains("at least one party")));

        let plan = FaultPlan {
            drop_prob: 1.7,
            ..FaultPlan::reliable()
        };
        let err = Network::<u8>::try_mesh_with(2, plan, false).unwrap_err();
        assert!(matches!(&err, NetError::InvalidMesh(m) if m.contains("invalid FaultPlan")));

        let err = Network::<u8>::try_mesh_with(2, FaultPlan::reliable().with_crash(7, 0), false)
            .unwrap_err();
        assert!(matches!(&err, NetError::InvalidMesh(m) if m.contains("unknown party 7")));

        let err = Network::<u8>::try_mesh_with(
            2,
            FaultPlan::reliable().with_partition(&[0], &[5]),
            false,
        )
        .unwrap_err();
        assert!(matches!(&err, NetError::InvalidMesh(m) if m.contains("unknown party (0, 5)")));
    }

    #[test]
    fn try_mesh_with_accepts_valid_plans() {
        let (eps, handle) =
            Network::<u8>::try_mesh_with(3, FaultPlan::reliable(), false).expect("valid mesh");
        assert_eq!(eps.len(), 3);
        assert_eq!(handle.stats(), NetworkStats::default());
    }

    #[test]
    fn observed_mesh_records_per_link_counters() {
        let registry = jaap_obs::MetricsRegistry::new();
        let plan = FaultPlan::seeded(1).with_drop(1.0);
        let (eps, handle) =
            Network::<u8>::try_mesh_observed(2, plan, false, &registry).expect("mesh");
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 1).expect("send");
                ep.send(PartyId(1), 2).expect("send");
            } else {
                assert!(ep
                    .recv_timeout(std::time::Duration::from_millis(50))
                    .is_err());
            }
        });
        assert_eq!(handle.stats().messages_dropped, 2);
        assert_eq!(registry.counter_value("net.link.0->1.dropped"), Some(2));
        assert_eq!(registry.counter_value("net.link.0->1.delivered"), Some(0));
        assert_eq!(registry.counter_value("net.link.1->0.dropped"), Some(0));
    }

    #[test]
    fn observed_mesh_counts_blocked_sends_per_link() {
        let registry = jaap_obs::MetricsRegistry::new();
        let plan = FaultPlan::reliable().with_partition(&[0], &[1]);
        let (eps, _handle) =
            Network::<u8>::try_mesh_observed(3, plan, false, &registry).expect("mesh");
        let _ = run_parties(eps, |mut ep| match ep.id().0 {
            0 => {
                ep.send(PartyId(1), 1).expect("blocked send still ok");
                ep.send(PartyId(2), 2).expect("send");
            }
            2 => {
                let _ = ep.recv().expect("recv");
            }
            _ => {}
        });
        assert_eq!(registry.counter_value("net.link.0->1.blocked"), Some(1));
        assert_eq!(registry.counter_value("net.link.0->2.delivered"), Some(1));
    }

    #[test]
    fn delayed_messages_arrive_late_but_arrive() {
        let plan = FaultPlan::seeded(9).with_delay(1.0, std::time::Duration::from_millis(30));
        let (eps, handle) = Network::<u8>::mesh_with(2, plan, false);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 5).expect("send");
            } else {
                let env = ep
                    .recv_timeout(std::time::Duration::from_secs(2))
                    .expect("delayed message must still arrive");
                assert_eq!(env.payload, 5);
            }
        });
        let s = handle.stats();
        assert_eq!(s.messages_delayed, 1);
        assert_eq!(s.messages_delivered, 1);
    }
}
