//! Network construction and the party-thread harness.

use std::fmt::Debug;
use std::sync::Arc;

use crossbeam_channel::unbounded;
use parking_lot::Mutex;

use crate::endpoint::{Endpoint, Envelope};
use crate::fault::{FaultPlan, FaultRng};
use crate::transcript::TranscriptEntry;

/// Aggregate statistics for a network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to `send`/`broadcast` (before faults).
    pub messages_sent: u64,
    /// Messages actually delivered (a duplicate counts twice).
    pub messages_delivered: u64,
    /// Messages dropped by the fault plan.
    pub messages_dropped: u64,
    /// Messages delivered twice.
    pub messages_duplicated: u64,
}

pub(crate) struct Shared {
    pub(crate) seq: Mutex<u64>,
    pub(crate) stats: Mutex<NetworkStats>,
    pub(crate) transcript: Mutex<Vec<TranscriptEntry>>,
    pub(crate) faults: Mutex<FaultRng>,
    pub(crate) record_transcript: bool,
}

/// Constructor namespace for simulated networks; see [`Network::mesh`].
#[derive(Debug)]
pub struct Network<M> {
    _marker: core::marker::PhantomData<M>,
}

/// Inspection handle held by the test/bench harness while parties run.
#[derive(Clone)]
pub struct NetworkHandle {
    shared: Arc<Shared>,
}

impl NetworkHandle {
    /// Snapshot of the statistics so far.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        *self.shared.stats.lock()
    }

    /// Snapshot of the transcript so far (empty unless recording was enabled
    /// via [`Network::mesh_with`]).
    #[must_use]
    pub fn transcript(&self) -> Vec<TranscriptEntry> {
        self.shared.transcript.lock().clone()
    }
}

impl core::fmt::Debug for NetworkHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NetworkHandle")
            .field("stats", &self.stats())
            .finish()
    }
}

impl<M: Clone + Debug + Send + 'static> Network<M> {
    /// Builds a reliable fully connected mesh of `n` parties.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn mesh(n: usize) -> (Vec<Endpoint<M>>, NetworkHandle) {
        Self::mesh_with(n, FaultPlan::reliable(), false)
    }

    /// Builds a mesh with a fault plan and optional transcript recording.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn mesh_with(
        n: usize,
        faults: FaultPlan,
        record_transcript: bool,
    ) -> (Vec<Endpoint<M>>, NetworkHandle) {
        assert!(n > 0, "a network needs at least one party");
        let shared = Arc::new(Shared {
            seq: Mutex::new(0),
            stats: Mutex::new(NetworkStats::default()),
            transcript: Mutex::new(Vec::new()),
            faults: Mutex::new(FaultRng::new(faults)),
            record_transcript,
        });
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint::new(i, n, senders.clone(), rx, Arc::clone(&shared)))
            .collect();
        (endpoints, NetworkHandle { shared })
    }
}

/// Runs one closure per endpoint on scoped threads, returning results in
/// party order. This is the standard harness for executing a round of a
/// multi-party protocol.
///
/// # Panics
///
/// Propagates any panic from a party thread.
pub fn run_parties<M, R, F>(endpoints: Vec<Endpoint<M>>, f: F) -> Vec<R>
where
    M: Clone + Debug + Send + 'static,
    R: Send,
    F: Fn(Endpoint<M>) -> R + Sync,
{
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| scope.spawn(move || f(ep)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartyId;

    #[test]
    fn mesh_assigns_dense_ids() {
        let (eps, _h) = Network::<u32>::mesh(4);
        let ids: Vec<_> = eps.iter().map(Endpoint::id).collect();
        assert_eq!(ids, vec![PartyId(0), PartyId(1), PartyId(2), PartyId(3)]);
        assert!(eps.iter().all(|e| e.n() == 4));
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn empty_mesh_panics() {
        let _ = Network::<u32>::mesh(0);
    }

    #[test]
    fn ring_pass_sums_ids() {
        let (eps, handle) = Network::<u64>::mesh(5);
        let results = run_parties(eps, |mut ep| {
            let me = ep.id().0;
            let next = PartyId((me + 1) % ep.n());
            ep.send(next, me as u64).expect("send");
            let env = ep.recv().expect("recv");
            (env.from, env.payload)
        });
        for (i, (from, payload)) in results.iter().enumerate() {
            let expect_from = (i + 5 - 1) % 5;
            assert_eq!(*from, PartyId(expect_from));
            assert_eq!(*payload, expect_from as u64);
        }
        assert_eq!(handle.stats().messages_sent, 5);
        assert_eq!(handle.stats().messages_delivered, 5);
    }

    #[test]
    fn transcript_records_when_enabled() {
        let (eps, handle) = Network::<&'static str>::mesh_with(2, FaultPlan::reliable(), true);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), "hello").expect("send");
                None
            } else {
                Some(ep.recv().expect("recv").payload)
            }
        });
        let t = handle.transcript();
        assert_eq!(t.len(), 1);
        assert!(t[0].payload.contains("hello"));
    }

    #[test]
    fn transcript_empty_when_disabled() {
        let (eps, handle) = Network::<u8>::mesh(2);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 9).expect("send");
            } else {
                let _ = ep.recv().expect("recv");
            }
        });
        assert!(handle.transcript().is_empty());
        assert_eq!(handle.stats().messages_delivered, 1);
    }

    #[test]
    fn dropped_messages_counted_not_delivered() {
        let plan = FaultPlan {
            drop_prob: 1.0,
            duplicate_prob: 0.0,
            seed: 1,
        };
        let (eps, handle) = Network::<u8>::mesh_with(2, plan, false);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 1).expect("send");
                ep.send(PartyId(1), 2).expect("send");
            } else {
                assert!(ep.recv_timeout(std::time::Duration::from_millis(50)).is_err());
            }
        });
        let s = handle.stats();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_dropped, 2);
        assert_eq!(s.messages_delivered, 0);
    }

    #[test]
    fn duplicated_messages_delivered_twice() {
        let plan = FaultPlan {
            drop_prob: 0.0,
            duplicate_prob: 1.0,
            seed: 1,
        };
        let (eps, handle) = Network::<u8>::mesh_with(2, plan, false);
        let _ = run_parties(eps, |mut ep| {
            if ep.id().0 == 0 {
                ep.send(PartyId(1), 7).expect("send");
            } else {
                assert_eq!(ep.recv().expect("first").payload, 7);
                assert_eq!(ep.recv().expect("replay").payload, 7);
            }
        });
        assert_eq!(handle.stats().messages_duplicated, 1);
        assert_eq!(handle.stats().messages_delivered, 2);
    }
}
