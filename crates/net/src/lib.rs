//! An in-process simulated message-passing network.
//!
//! This crate is the transport substrate for the multi-party protocols of the
//! paper: Boneh–Franklin distributed RSA key generation (§3.1), joint
//! signatures (§3.2) and share refresh. It plays the role of the
//! *environment principal* `Pe` from the paper's model of computation
//! (Appendix C): it can deliver, drop, duplicate (replay) and reorder
//! messages, and it records a transcript of everything that happened.
//!
//! # Design
//!
//! * [`Network::mesh`] builds a fully connected mesh of `n` parties and hands
//!   back one [`Endpoint`] per party plus a [`NetworkHandle`] for transcript
//!   and statistics inspection.
//! * Each [`Endpoint`] can [`send`](Endpoint::send),
//!   [`broadcast`](Endpoint::broadcast), and receive either in arrival order
//!   ([`recv`](Endpoint::recv)) or per-sender ([`recv_from`](Endpoint::recv_from),
//!   which buffers out-of-order arrivals).
//! * [`run_parties`] runs one closure per party on scoped threads and
//!   collects the results in party order — the standard harness for an MPC
//!   round trip.
//!
//! # Example
//!
//! ```
//! use jaap_net::{Network, run_parties};
//!
//! let (endpoints, handle) = Network::<u64>::mesh(3);
//! let sums = run_parties(endpoints, |mut ep| {
//!     ep.broadcast(ep.id().0 as u64 + 1).unwrap();
//!     let mut sum = ep.id().0 as u64 + 1;
//!     for _ in 0..ep.n() - 1 {
//!         sum += ep.recv().unwrap().payload;
//!     }
//!     sum
//! });
//! assert_eq!(sums, vec![6, 6, 6]);
//! assert_eq!(handle.stats().messages_sent, 6);
//! ```

mod endpoint;
mod fault;
mod network;
mod repl;
mod transcript;

pub use endpoint::{Endpoint, Envelope, NetError};
pub use fault::{Crash, FaultPlan};
pub use network::{run_parties, Network, NetworkHandle, NetworkStats, DEFAULT_TRANSCRIPT_CAPACITY};
pub use repl::{RejectReason, ReplMessage};
pub use transcript::{TranscriptEntry, TranscriptEvent};

/// Identifies a party on a simulated network (dense indices `0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartyId(pub usize);

impl core::fmt::Display for PartyId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "party#{}", self.0)
    }
}
