//! Typed messages for WAL log shipping between a coalition primary and
//! its replicas.
//!
//! The net layer treats frames as opaque bytes — decoding and applying
//! them is the coalition replication module's job. What *is* modeled here
//! is the addressing and fencing vocabulary of the protocol:
//!
//! * every message carries the sender's **term** (the fencing epoch: a
//!   replica rejects traffic from a primary whose term is below the
//!   highest it has seen);
//! * log positions are addressed as `(gen, offset)` — `gen` is the log
//!   generation, bumped each time the primary's log is rewritten
//!   wholesale (snapshot compaction, bootstrap), and `offset` counts
//!   records appended since that rewrite. A replica on the wrong
//!   generation must be re-seeded with a [`ReplMessage::Snapshot`] before
//!   any [`ReplMessage::Append`] can land.

/// A replication protocol message shipped over an `Endpoint`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMessage {
    /// Primary → replica: one framed record at `(gen, offset)`.
    Append {
        /// The shipping primary's term.
        term: u64,
        /// Log generation the record belongs to.
        gen: u64,
        /// Record index within the generation (0-based).
        offset: u64,
        /// The framed record bytes, exactly as stored locally.
        frame: Vec<u8>,
    },
    /// Primary → replica: a full log image starting generation `gen`
    /// (late-joiner bootstrap or post-compaction catch-up).
    Snapshot {
        /// The shipping primary's term.
        term: u64,
        /// Generation this image begins.
        gen: u64,
        /// The full framed log image.
        image: Vec<u8>,
    },
    /// Replica → primary: everything below `(gen, next_offset)` is
    /// durably applied.
    Ack {
        /// The replica's current term (a primary seeing a higher term
        /// here learns it has been deposed).
        term: u64,
        /// The replica's current generation.
        gen: u64,
        /// Next record offset the replica expects.
        next_offset: u64,
    },
    /// Replica → primary: the message was refused.
    Reject {
        /// The replica's current term.
        term: u64,
        /// Why the message was refused.
        reason: RejectReason,
    },
}

impl ReplMessage {
    /// The sender's term, whatever the message kind.
    #[must_use]
    pub fn term(&self) -> u64 {
        match self {
            ReplMessage::Append { term, .. }
            | ReplMessage::Snapshot { term, .. }
            | ReplMessage::Ack { term, .. }
            | ReplMessage::Reject { term, .. } => *term,
        }
    }
}

/// Why a replica refused a replication message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The sender's term is below the highest this replica has seen —
    /// the fencing rule: a deposed primary must not mutate replicas.
    StaleTerm {
        /// The replica's highest observed term.
        have: u64,
    },
    /// The message addressed a position the replica does not hold; the
    /// reply carries where the replica actually is so the primary can
    /// rewind or re-seed.
    OutOfSync {
        /// The replica's current generation.
        gen: u64,
        /// Next record offset the replica expects.
        next_offset: u64,
    },
    /// The shipped frame was written by an incompatible format version.
    IncompatibleFormat {
        /// Version byte found in the frame.
        found: u8,
        /// Version the replica supports.
        supported: u8,
    },
    /// The shipped bytes failed strict frame decoding.
    Corrupt {
        /// Human-readable defect description.
        detail: String,
    },
}

impl core::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RejectReason::StaleTerm { have } => {
                write!(f, "stale term (replica has seen term {have})")
            }
            RejectReason::OutOfSync { gen, next_offset } => {
                write!(
                    f,
                    "out of sync (replica at gen {gen}, offset {next_offset})"
                )
            }
            RejectReason::IncompatibleFormat { found, supported } => {
                write!(
                    f,
                    "incompatible frame format {found} (supported: {supported})"
                )
            }
            RejectReason::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessor_covers_all_variants() {
        let msgs = [
            ReplMessage::Append {
                term: 1,
                gen: 0,
                offset: 0,
                frame: vec![],
            },
            ReplMessage::Snapshot {
                term: 2,
                gen: 1,
                image: vec![],
            },
            ReplMessage::Ack {
                term: 3,
                gen: 1,
                next_offset: 4,
            },
            ReplMessage::Reject {
                term: 4,
                reason: RejectReason::StaleTerm { have: 9 },
            },
        ];
        assert_eq!(
            msgs.iter().map(ReplMessage::term).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn reject_reasons_render() {
        let r = RejectReason::OutOfSync {
            gen: 2,
            next_offset: 7,
        };
        assert!(r.to_string().contains("gen 2"));
        assert!(RejectReason::StaleTerm { have: 5 }
            .to_string()
            .contains("term 5"));
    }
}
