//! Fault-injection policy applied on the send path.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// What the simulated environment does to messages in flight.
///
/// Probabilities are evaluated independently per message with a deterministic
/// seeded RNG, so a failing test can be replayed exactly.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a delivered message is delivered twice
    /// (a replay, in the paper's threat vocabulary).
    pub duplicate_prob: f64,
    /// Seed for the fault RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// A reliable network: nothing is dropped or replayed.
    #[must_use]
    pub fn reliable() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            seed: 0,
        }
    }

    /// Returns `true` if the plan can never interfere with delivery.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.drop_prob == 0.0 && self.duplicate_prob == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::reliable()
    }
}

/// Per-message fate decided by the fault RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fate {
    Deliver,
    Drop,
    Duplicate,
}

pub(crate) struct FaultRng {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultRng {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultRng { plan, rng }
    }

    pub(crate) fn decide(&mut self) -> Fate {
        if self.plan.is_reliable() {
            return Fate::Deliver;
        }
        let roll = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if roll < self.plan.drop_prob {
            Fate::Drop
        } else if roll < self.plan.drop_prob + self.plan.duplicate_prob {
            Fate::Duplicate
        } else {
            Fate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_always_delivers() {
        let mut rng = FaultRng::new(FaultPlan::reliable());
        for _ in 0..100 {
            assert_eq!(rng.decide(), Fate::Deliver);
        }
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut rng = FaultRng::new(FaultPlan {
            drop_prob: 1.0,
            duplicate_prob: 0.0,
            seed: 3,
        });
        for _ in 0..100 {
            assert_eq!(rng.decide(), Fate::Drop);
        }
    }

    #[test]
    fn duplicate_probability_one_always_duplicates() {
        let mut rng = FaultRng::new(FaultPlan {
            drop_prob: 0.0,
            duplicate_prob: 1.0,
            seed: 3,
        });
        for _ in 0..100 {
            assert_eq!(rng.decide(), Fate::Duplicate);
        }
    }

    #[test]
    fn mixed_plan_produces_all_fates_deterministically() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            duplicate_prob: 0.3,
            seed: 42,
        };
        let fates: Vec<Fate> = {
            let mut rng = FaultRng::new(plan.clone());
            (0..200).map(|_| rng.decide()).collect()
        };
        assert!(fates.contains(&Fate::Deliver));
        assert!(fates.contains(&Fate::Drop));
        assert!(fates.contains(&Fate::Duplicate));
        // Same seed, same fates.
        let mut rng2 = FaultRng::new(plan);
        let fates2: Vec<Fate> = (0..200).map(|_| rng2.decide()).collect();
        assert_eq!(fates, fates2);
    }
}
