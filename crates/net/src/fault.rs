//! Fault-injection policy applied on the send path.
//!
//! A [`FaultPlan`] composes four orthogonal fault classes, all evaluated
//! deterministically from the plan's seed so any failing run can be replayed
//! exactly:
//!
//! * **probabilistic loss** — each message is independently dropped with
//!   `drop_prob` or replayed (delivered twice) with `duplicate_prob`;
//! * **probabilistic delay** — each message is independently held back for a
//!   uniform duration in `(0, max_delay]` with `delay_prob`;
//! * **crash-stop parties** — a party listed in `crashes` dies after its
//!   `after_sends`-th outbound message and is silently mute from then on;
//! * **link partitions** — message flow across severed party pairs is
//!   blocked in both directions.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A crash-stop failure: the party completes `after_sends` sends and then
/// dies, never transmitting again (receivers observe only silence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// Index of the party that crashes.
    pub party: usize,
    /// Number of successful sends before the crash takes effect.
    pub after_sends: u64,
}

/// What the simulated environment does to messages in flight.
///
/// Probabilities are evaluated independently per message with a deterministic
/// seeded RNG, so a failing test can be replayed exactly. Construct with
/// [`FaultPlan::reliable`] and the `with_*` builders (which validate
/// eagerly), or as a struct literal — in which case
/// [`FaultPlan::validate`] runs when the plan is installed into a network.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a delivered message is delivered twice
    /// (a replay, in the paper's threat vocabulary).
    pub duplicate_prob: f64,
    /// Probability in `[0, 1]` that a message is delayed before delivery.
    pub delay_prob: f64,
    /// Upper bound on an injected delay; the actual delay is uniform in
    /// `(0, max_delay]`. Must be nonzero when `delay_prob > 0`.
    pub max_delay: Duration,
    /// Crash-stop schedule, at most one entry per party.
    pub crashes: Vec<Crash>,
    /// Severed links: messages between the two parties of each pair are
    /// blocked in both directions.
    pub severed: Vec<(usize, usize)>,
    /// Seed for the fault RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// A reliable network: nothing is dropped, replayed, delayed or blocked.
    #[must_use]
    pub fn reliable() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            crashes: Vec::new(),
            severed: Vec::new(),
            seed: 0,
        }
    }

    /// A reliable plan carrying a seed, as a base for the `with_*` builders.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::reliable()
        }
    }

    /// Sets the drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or the combined fault probability
    /// exceeds 1.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self.validate().expect("invalid FaultPlan");
        self
    }

    /// Sets the duplicate (replay) probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or the combined fault probability
    /// exceeds 1.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self.validate().expect("invalid FaultPlan");
        self
    }

    /// Sets the delay probability and the maximum injected delay.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`, the combined fault probability
    /// exceeds 1, or `p > 0` with a zero `max_delay`.
    #[must_use]
    pub fn with_delay(mut self, p: f64, max_delay: Duration) -> Self {
        self.delay_prob = p;
        self.max_delay = max_delay;
        self.validate().expect("invalid FaultPlan");
        self
    }

    /// Schedules `party` to crash after `after_sends` outbound messages.
    /// `after_sends == 0` means the party is dead from the start.
    ///
    /// # Panics
    ///
    /// Panics if the party already has a crash entry.
    #[must_use]
    pub fn with_crash(mut self, party: usize, after_sends: u64) -> Self {
        assert!(
            self.crashes.iter().all(|c| c.party != party),
            "party {party} already has a crash entry"
        );
        self.crashes.push(Crash { party, after_sends });
        self
    }

    /// Severs every link between a party in `a` and a party in `b`
    /// (both directions), partitioning the two groups from each other.
    #[must_use]
    pub fn with_partition(mut self, a: &[usize], b: &[usize]) -> Self {
        for &x in a {
            for &y in b {
                assert!(x != y, "party {x} cannot be partitioned from itself");
                self.severed.push((x, y));
            }
        }
        self
    }

    /// Checks the plan's probabilities and delay bound.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint: a probability outside
    /// `[0, 1]` (or non-finite), a combined per-message fault probability
    /// above 1, or a positive `delay_prob` with a zero `max_delay`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        let combined = self.drop_prob + self.duplicate_prob + self.delay_prob;
        if combined > 1.0 {
            return Err(format!("combined fault probability {combined} exceeds 1"));
        }
        if self.delay_prob > 0.0 && self.max_delay.is_zero() {
            return Err("delay_prob > 0 requires a nonzero max_delay".into());
        }
        Ok(())
    }

    /// Returns `true` if the plan can never interfere with delivery.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.crashes.is_empty()
            && self.severed.is_empty()
    }

    /// The send budget of `party` before it crash-stops, if scheduled.
    #[must_use]
    pub(crate) fn crash_limit(&self, party: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|c| c.party == party)
            .map(|c| c.after_sends)
    }

    /// Whether the link between `a` and `b` is severed (either direction).
    #[must_use]
    pub(crate) fn is_severed(&self, a: usize, b: usize) -> bool {
        self.severed
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::reliable()
    }
}

/// Per-message fate decided by the fault RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fate {
    Deliver,
    Drop,
    Duplicate,
    Delay(Duration),
}

pub(crate) struct FaultRng {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultRng {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultRng { plan, rng }
    }

    pub(crate) fn decide(&mut self) -> Fate {
        if self.plan.is_reliable() {
            return Fate::Deliver;
        }
        let roll = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if roll < self.plan.drop_prob {
            Fate::Drop
        } else if roll < self.plan.drop_prob + self.plan.duplicate_prob {
            Fate::Duplicate
        } else if roll < self.plan.drop_prob + self.plan.duplicate_prob + self.plan.delay_prob {
            let max_ms = self.plan.max_delay.as_millis().max(1) as u64;
            let ms = 1 + self.rng.next_u64() % max_ms;
            Fate::Delay(Duration::from_millis(ms))
        } else {
            Fate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_always_delivers() {
        let mut rng = FaultRng::new(FaultPlan::reliable());
        for _ in 0..100 {
            assert_eq!(rng.decide(), Fate::Deliver);
        }
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut rng = FaultRng::new(FaultPlan::seeded(3).with_drop(1.0));
        for _ in 0..100 {
            assert_eq!(rng.decide(), Fate::Drop);
        }
    }

    #[test]
    fn duplicate_probability_one_always_duplicates() {
        let mut rng = FaultRng::new(FaultPlan::seeded(3).with_duplicate(1.0));
        for _ in 0..100 {
            assert_eq!(rng.decide(), Fate::Duplicate);
        }
    }

    #[test]
    fn delay_probability_one_always_delays_within_bound() {
        let max = Duration::from_millis(20);
        let mut rng = FaultRng::new(FaultPlan::seeded(5).with_delay(1.0, max));
        for _ in 0..100 {
            match rng.decide() {
                Fate::Delay(d) => assert!(d > Duration::ZERO && d <= max, "delay {d:?}"),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn mixed_plan_produces_all_fates_deterministically() {
        let plan = FaultPlan::seeded(42)
            .with_drop(0.25)
            .with_duplicate(0.25)
            .with_delay(0.25, Duration::from_millis(5));
        let fates: Vec<Fate> = {
            let mut rng = FaultRng::new(plan.clone());
            (0..200).map(|_| rng.decide()).collect()
        };
        assert!(fates.contains(&Fate::Deliver));
        assert!(fates.contains(&Fate::Drop));
        assert!(fates.contains(&Fate::Duplicate));
        assert!(fates.iter().any(|f| matches!(f, Fate::Delay(_))));
        // Same seed, same fates.
        let mut rng2 = FaultRng::new(plan);
        let fates2: Vec<Fate> = (0..200).map(|_| rng2.decide()).collect();
        assert_eq!(fates, fates2);
    }

    #[test]
    fn validate_rejects_out_of_range_probabilities() {
        let plan = FaultPlan {
            drop_prob: 1.7,
            ..FaultPlan::reliable()
        };
        let err = plan.validate().expect_err("1.7 must be rejected");
        assert!(err.contains("drop_prob"), "err = {err}");
        assert!(FaultPlan {
            duplicate_prob: -0.1,
            ..FaultPlan::reliable()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            delay_prob: f64::NAN,
            ..FaultPlan::reliable()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validate_rejects_combined_probability_above_one() {
        let plan = FaultPlan {
            drop_prob: 0.6,
            duplicate_prob: 0.6,
            ..FaultPlan::reliable()
        };
        assert!(plan.validate().unwrap_err().contains("combined"));
    }

    #[test]
    fn validate_rejects_delay_without_bound() {
        let plan = FaultPlan {
            delay_prob: 0.5,
            ..FaultPlan::reliable()
        };
        assert!(plan.validate().unwrap_err().contains("max_delay"));
    }

    #[test]
    #[should_panic(expected = "invalid FaultPlan")]
    fn builder_rejects_bad_probability_eagerly() {
        let _ = FaultPlan::reliable().with_drop(1.7);
    }

    #[test]
    #[should_panic(expected = "already has a crash entry")]
    fn duplicate_crash_entry_rejected() {
        let _ = FaultPlan::reliable().with_crash(1, 4).with_crash(1, 9);
    }

    #[test]
    fn partition_severs_all_cross_links_both_directions() {
        let plan = FaultPlan::reliable().with_partition(&[0, 1], &[2, 3]);
        for a in [0, 1] {
            for b in [2, 3] {
                assert!(plan.is_severed(a, b));
                assert!(plan.is_severed(b, a));
            }
        }
        assert!(!plan.is_severed(0, 1));
        assert!(!plan.is_severed(2, 3));
        assert!(!plan.is_reliable());
    }

    #[test]
    fn crash_limit_reports_schedule() {
        let plan = FaultPlan::reliable().with_crash(2, 5);
        assert_eq!(plan.crash_limit(2), Some(5));
        assert_eq!(plan.crash_limit(0), None);
        assert!(!plan.is_reliable());
    }
}
