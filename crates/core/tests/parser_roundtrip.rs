//! Property tests over randomly generated formulas:
//!
//! * `parse(display(f)) == f` — validates the `Display` implementations
//!   and the parser against each other across the whole syntax
//!   (Appendix A), including the `Arc`-shared recursive variants.
//! * `resolve(intern(f)) == f` and `intern(resolve(intern(f))) ==
//!   intern(f)` — the hash-consing arena loses nothing and assigns one id
//!   per structurally distinct term.

use jaap_core::syntax::{
    parse_formula, Formula, GroupId, Interner, KeyId, Message, PrincipalId, Subject, Time, TimeRef,
    Vocabulary,
};
use proptest::prelude::*;

fn arb_time() -> impl Strategy<Value = Time> {
    prop_oneof![(-50i64..50).prop_map(Time), Just(Time::INFINITY)]
}

fn arb_time_ref() -> impl Strategy<Value = TimeRef> {
    prop_oneof![
        arb_time().prop_map(TimeRef::At),
        (-50i64..0, 0i64..50).prop_map(|(a, b)| TimeRef::Closed(Time(a), Time(b))),
        (-50i64..0, 0i64..50).prop_map(|(a, b)| TimeRef::Within(Time(a), Time(b))),
    ]
}

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}"
}

fn arb_key() -> impl Strategy<Value = KeyId> {
    ident().prop_map(|s| KeyId::new(format!("K_{s}")))
}

fn arb_group() -> impl Strategy<Value = GroupId> {
    ident().prop_map(|s| GroupId::new(format!("G_{s}")))
}

fn arb_principal() -> impl Strategy<Value = PrincipalId> {
    ident().prop_map(PrincipalId::new)
}

fn arb_subject() -> impl Strategy<Value = Subject> {
    let leaf = prop_oneof![
        arb_principal().prop_map(Subject::Principal),
        (arb_principal(), arb_key()).prop_map(|(p, k)| Subject::Principal(p).bound(k)),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Subject::Compound),
            (proptest::collection::vec(inner, 1..4), 1usize..4).prop_map(|(members, m)| {
                let m = m.min(members.len());
                Subject::Threshold { members, m }
            }),
        ]
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9 ]{0,10}".prop_map(Message::Data),
        arb_principal().prop_map(Message::Name),
        any::<u32>().prop_map(|n| Message::Nonce(u64::from(n))),
        arb_time().prop_map(Message::TimeVal),
    ];
    leaf.prop_recursive(2, 10, 3, |inner| {
        prop_oneof![
            (inner.clone(), arb_key()).prop_map(|(m, k)| m.signed(k)),
            (inner.clone(), arb_key()).prop_map(|(m, k)| m.encrypted(k)),
            proptest::collection::vec(inner, 2..4).prop_map(Message::Tuple),
        ]
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        ident().prop_map(Formula::Prop),
        (arb_time(), arb_time()).prop_map(|(a, b)| Formula::TimeLe(a, b)),
        (arb_subject(), arb_time_ref(), arb_message()).prop_map(|(s, t, m)| Formula::Says(s, t, m)),
        (arb_subject(), arb_time_ref(), arb_message()).prop_map(|(s, t, m)| Formula::Said(s, t, m)),
        (arb_subject(), arb_time_ref(), arb_message())
            .prop_map(|(s, t, m)| Formula::Received(s, t, m)),
        (arb_subject(), arb_time_ref(), arb_key()).prop_map(|(s, t, k)| Formula::Has(s, t, k)),
        (
            arb_key(),
            arb_time_ref(),
            proptest::option::of(arb_principal()),
            arb_subject()
        )
            .prop_map(|(key, when, relative_to, subject)| Formula::KeySpeaksFor {
                key,
                when,
                relative_to,
                subject,
            }),
        (
            arb_subject(),
            arb_time_ref(),
            proptest::option::of(arb_principal()),
            arb_group()
        )
            .prop_map(|(subject, when, relative_to, group)| Formula::MemberOf {
                subject,
                when,
                relative_to,
                group,
            }),
        (arb_group(), arb_time_ref(), arb_message())
            .prop_map(|(g, t, m)| Formula::GroupSays(g, t, m)),
        (arb_subject(), arb_time_ref(), arb_message()).prop_map(|(observer, when, msg)| {
            Formula::Fresh {
                observer,
                when,
                msg,
            }
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (arb_subject(), arb_time_ref(), inner.clone())
                .prop_map(|(s, t, f)| Formula::believes(s, t, f)),
            (arb_subject(), arb_time_ref(), inner.clone())
                .prop_map(|(s, t, f)| Formula::controls(s, t, f)),
            (inner, arb_subject(), arb_time_ref()).prop_map(|(f, s, t)| Formula::at(f, s, t)),
        ]
    })
}

/// Formulas whose display is ambiguous with other sorts are excluded: a
/// group/principal name may not collide across sorts, and `Data` payloads
/// must not look like identifiers already used as names.
fn well_sorted(f: &Formula) -> bool {
    // Principal names starting with K_/G_ would be mis-sorted on re-parse;
    // the generators above never produce them, except via `ident()` for
    // principals ("K" alone is fine, "K_x" is not — filter).
    fn bad_name(p: &PrincipalId) -> bool {
        p.as_str().starts_with("K_")
            || p.as_str().starts_with("G_")
            || p.as_str() == "t"
            || (p.as_str().starts_with('t') && p.as_str()[1..].chars().all(|c| c.is_ascii_digit()))
    }
    fn check_subject(s: &Subject) -> bool {
        match s {
            Subject::Principal(p) => !bad_name(p),
            Subject::Compound(ms) | Subject::Threshold { members: ms, .. } => {
                ms.iter().all(check_subject)
            }
            Subject::Bound(inner, _) => check_subject(inner),
        }
    }
    fn check_message(m: &Message) -> bool {
        match m {
            Message::Name(p) => !bad_name(p),
            Message::Formula(f) => check(f),
            Message::Tuple(ps) => ps.iter().all(check_message),
            Message::Signed(inner, _) | Message::Encrypted(inner, _) => check_message(inner),
            _ => true,
        }
    }
    fn check(f: &Formula) -> bool {
        match f {
            Formula::Prop(p) => {
                !(p.starts_with("K_")
                    || p.starts_with("G_")
                    || (p.starts_with('t') && p[1..].chars().all(|c| c.is_ascii_digit())))
            }
            Formula::Not(a) => check(a),
            Formula::And(a, b) | Formula::Implies(a, b) => check(a) && check(b),
            Formula::TimeLe(_, _) => true,
            Formula::Believes(s, _, a) | Formula::Controls(s, _, a) => check_subject(s) && check(a),
            Formula::Says(s, _, m) | Formula::Said(s, _, m) | Formula::Received(s, _, m) => {
                check_subject(s) && check_message(m)
            }
            Formula::KeySpeaksFor {
                subject,
                relative_to,
                ..
            } => check_subject(subject) && relative_to.as_ref().is_none_or(|r| !bad_name(r)),
            Formula::Has(s, _, _) => check_subject(s),
            Formula::MemberOf {
                subject,
                relative_to,
                ..
            } => check_subject(subject) && relative_to.as_ref().is_none_or(|r| !bad_name(r)),
            Formula::GroupSays(_, _, m) => check_message(m),
            Formula::Fresh { observer, msg, .. } => check_subject(observer) && check_message(msg),
            Formula::At(a, s, _) => check(a) && check_subject(s),
        }
    }
    check(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_then_parse_is_identity(f in arb_formula().prop_filter("well-sorted", well_sorted)) {
        let text = f.to_string();
        let vocab = Vocabulary::from_formula(&f);
        match parse_formula(&text, &vocab) {
            Ok(parsed) => prop_assert_eq!(parsed, f, "text: {}", text),
            Err(e) => prop_assert!(false, "failed to parse {:?}: {}", text, e),
        }
    }

    #[test]
    fn intern_then_resolve_is_identity(f in arb_formula()) {
        let mut interner = Interner::new();
        let id = interner.intern_formula(&f);
        let resolved = interner.resolve_formula(id);
        prop_assert_eq!(&resolved, &f);
        // Hash-consing: the resolved copy re-interns to the same id, and
        // so does the original again (idempotence).
        prop_assert_eq!(interner.intern_formula(&resolved), id);
        prop_assert_eq!(interner.intern_formula(&f), id);
    }

    #[test]
    fn message_intern_round_trips(m in arb_message()) {
        let mut interner = Interner::new();
        let id = interner.intern_message(&m);
        prop_assert_eq!(&interner.resolve_message(id), &m);
        prop_assert_eq!(interner.intern_message(&m), id);
    }

    #[test]
    fn subject_intern_round_trips(s in arb_subject()) {
        let mut interner = Interner::new();
        let id = interner.intern_subject(&s);
        prop_assert_eq!(&interner.resolve_subject(id), &s);
        prop_assert_eq!(interner.intern_subject(&s), id);
    }

    /// The display of an interned-then-resolved formula matches the
    /// original's display — pretty-printing resolves through the arena
    /// without drift.
    #[test]
    fn display_is_stable_through_the_arena(f in arb_formula()) {
        let mut interner = Interner::new();
        let id = interner.intern_formula(&f);
        prop_assert_eq!(interner.resolve_formula(id).to_string(), f.to_string());
    }
}
