//! The soundness theorem applied to the *actual protocol run*: execute the
//! §4.3 authorization protocol in the engine, build the corresponding
//! runs-based model (Appendix C) of the message exchange, and check that
//! every model-checkable conclusion in the derivation is true in the model.
//!
//! This is the operational content of Appendix D: "any derivation allowed
//! by the logic corresponds to a truth in the model."

use jaap_core::certs::{Certs, Validity};
use jaap_core::engine::{Engine, TrustAssumptions};
use jaap_core::protocol::{authorize, AccessRequest, Acl, Operation, SignedStatement};
use jaap_core::semantics::{Model, RunBuilder};
use jaap_core::syntax::{Formula, GroupId, KeyId, Subject, Time, TimeRef};

fn k(s: &str) -> KeyId {
    KeyId::new(s)
}

fn cp_users() -> Subject {
    Subject::threshold(
        vec![
            Subject::principal("User_D1").bound(k("K_u1")),
            Subject::principal("User_D2").bound(k("K_u2")),
            Subject::principal("User_D3").bound(k("K_u3")),
        ],
        2,
    )
}

fn cp_domains() -> Subject {
    Subject::threshold(
        vec![
            Subject::principal("D1"),
            Subject::principal("D2"),
            Subject::principal("D3"),
        ],
        3,
    )
}

#[test]
fn every_checkable_conclusion_is_true_in_the_model() {
    // ---- Engine side: run the protocol. ----
    let mut assumptions = TrustAssumptions::new(Time(0));
    assumptions.own_key(k("K_AA"), cp_domains());
    assumptions.own_key(k("K_AA"), Subject::principal("AA"));
    assumptions.group_authority("AA");
    for i in 1..=2 {
        assumptions.own_key(k(&format!("K_CA{i}")), Subject::principal(format!("CA{i}")));
        assumptions.identity_authority(format!("CA{i}"));
    }
    let mut engine = Engine::new("P", assumptions);
    engine.advance_clock(Time(10)).expect("clock");
    let validity = Validity::new(Time(0), Time(100));
    let op = Operation::new("write", "Object O");

    let id1 = Certs::identity("CA1", k("K_CA1"), k("K_u1"), "User_D1", Time(2), validity);
    let id2 = Certs::identity("CA2", k("K_CA2"), k("K_u2"), "User_D2", Time(2), validity);
    let ac = Certs::threshold_attribute(
        "AA",
        k("K_AA"),
        cp_users(),
        GroupId::new("G_write"),
        Time(3),
        validity,
    );
    let s1 = SignedStatement::new("User_D1", k("K_u1"), &op, Time(10));
    let s2 = SignedStatement::new("User_D2", k("K_u2"), &op, Time(10));
    let request = AccessRequest {
        identity_certs: vec![id1.clone(), id2.clone()],
        attribute_certs: vec![ac.clone()],
        signed_statements: vec![s1.clone(), s2.clone()],
        operation: op.clone(),
        at: Time(10),
    };
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");
    let decision = authorize(&mut engine, &request, &acl);
    assert!(decision.granted);
    let derivation = decision.derivation.expect("proof");

    // ---- Model side: the same exchange as a legal run. ----
    let p = Subject::principal("P");
    let g_write = Subject::principal("G_write");
    let mut b = RunBuilder::new();
    for party in [
        Subject::principal("CA1"),
        Subject::principal("CA2"),
        Subject::principal("AA"),
        cp_domains(),
        Subject::principal("User_D1"),
        Subject::principal("User_D2"),
        p.clone(),
        g_write.clone(),
    ] {
        b.party(party, 0);
    }
    b.give_key(&Subject::principal("CA1"), k("K_CA1"), Time(0));
    b.give_key(&Subject::principal("CA2"), k("K_CA2"), Time(0));
    b.give_key(&cp_domains(), k("K_AA"), Time(0));
    b.give_key(&Subject::principal("AA"), k("K_AA"), Time(0));
    b.give_key(&Subject::principal("User_D1"), k("K_u1"), Time(0));
    b.give_key(&Subject::principal("User_D2"), k("K_u2"), Time(0));

    // The certificates travel to P. A10's conclusion attributes the AC to
    // the compound that holds the shared key, so the compound (and the AA
    // alias) both "send" it — the paper's reading convenience made literal.
    b.deliver(&Subject::principal("CA1"), &p, id1, Time(9), 1);
    b.deliver(&Subject::principal("CA2"), &p, id2, Time(9), 1);
    b.deliver(&cp_domains(), &p, ac.clone(), Time(9), 1);
    b.send_lost(&Subject::principal("AA"), &p, ac, Time(9));
    // Signing a statement *is* saying it: at issuance time each authority
    // utters the certificate body (the idealization's `says_{t_CA}`).
    let ksf1 = Formula::key_speaks_for_at(
        k("K_u1"),
        validity.time_ref(),
        "CA1".into(),
        Subject::principal("User_D1"),
    );
    let ksf2 = Formula::key_speaks_for_at(
        k("K_u2"),
        validity.time_ref(),
        "CA2".into(),
        Subject::principal("User_D2"),
    );
    let membership = Formula::member_of_at(
        cp_users(),
        validity.time_ref(),
        "AA".into(),
        GroupId::new("G_write"),
    );
    b.send_lost(&Subject::principal("CA1"), &p, ksf1.into(), Time(2));
    b.send_lost(&Subject::principal("CA2"), &p, ksf2.into(), Time(2));
    b.send_lost(&cp_domains(), &p, membership.clone().into(), Time(3));
    b.send_lost(&Subject::principal("AA"), &p, membership.into(), Time(3));
    // The signed request components.
    b.deliver(
        &Subject::principal("User_D1"),
        &p,
        s1.message.clone(),
        Time(10),
        0,
    );
    b.deliver(
        &Subject::principal("User_D2"),
        &p,
        s2.message.clone(),
        Time(10),
        0,
    );
    // The semantic counterpart of the grant: the group speaks.
    b.send_lost(&g_write, &p, op.payload(), Time(10));
    let model = Model::new(b.build());
    assert!(model.run().is_legal());

    // ---- Cross-check: every checkable conclusion holds at (r, t10). ----
    let mut checked = 0;
    for conclusion in derivation.conclusions() {
        let ok = match conclusion {
            Formula::Received(_, TimeRef::At(_), _)
            | Formula::Said(_, TimeRef::At(_), _)
            | Formula::GroupSays(_, TimeRef::At(_), _) => Some(model.eval(Time(10), conclusion)),
            // Says-conclusions about signed statements: the statement time
            // is the point to check.
            Formula::Says(_, TimeRef::At(t), _) => Some(model.eval(*t, conclusion)),
            // Initial beliefs, jurisdiction, at-wrapped and interval-scoped
            // formulas are assumptions or engine-internal forms, not
            // model-checkable message facts.
            _ => None,
        };
        if let Some(ok) = ok {
            assert!(ok, "conclusion not true in the model: {conclusion}");
            checked += 1;
        }
    }
    // The derivation contains the received certificates, the said/says
    // attributions, and the final group statement.
    assert!(checked >= 8, "only {checked} conclusions were checkable");
}

#[test]
fn a_false_grant_would_be_caught() {
    // Negative control for the cross-check method: a group statement the
    // group never made evaluates false.
    let p = Subject::principal("P");
    let g = Subject::principal("G_write");
    let mut b = RunBuilder::new();
    b.party(p.clone(), 0).party(g.clone(), 0);
    let model = Model::new(b.build());
    let bogus = Formula::group_says(
        GroupId::new("G_write"),
        Time(10),
        Operation::new("write", "Object O").payload(),
    );
    assert!(!model.eval(Time(10), &bogus));
}
