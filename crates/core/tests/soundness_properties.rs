//! Soundness reproduction (paper Appendix D, experiment E12).
//!
//! The paper proves: every axiom schema is valid on all worlds of the model
//! of computation, hence any derivation yields truths. We reproduce the
//! theorem empirically: generate random **legal runs** (Appendix C), then
//! check every instantiation of the axiom schemas over the run's finite
//! universe — exactly the schemas whose validity the paper's proof details
//! (A10 and the access-control axioms A24–A38), plus the structural axioms
//! they lean on (A8, A12, A15–A20, A22).

use jaap_core::semantics::{Model, RunBuilder};
use jaap_core::syntax::{Formula, GroupId, KeyId, Message, Subject, Time, TimeRef};
use proptest::prelude::*;

const HORIZON: i64 = 16;

/// Configuration of a randomly generated run.
#[derive(Debug, Clone)]
struct RunSpec {
    /// (sender, receiver, key index or None, payload index, time, delivered)
    sends: Vec<(usize, usize, Option<usize>, usize, i64, bool)>,
    /// Which principal holds each key (a second holder models key theft).
    key_holders: Vec<(usize, Option<usize>)>,
    /// For each signed payload index, does the group echo it (same tick)?
    group_echoes: Vec<bool>,
}

const PRINCIPALS: [&str; 4] = ["U1", "U2", "U3", "CA"];
const PAYLOADS: [&str; 3] = ["write O", "read O", "policy update"];

fn principal(i: usize) -> Subject {
    Subject::principal(PRINCIPALS[i % PRINCIPALS.len()])
}

fn key(i: usize) -> KeyId {
    KeyId::new(format!("K{i}"))
}

fn payload(i: usize) -> Message {
    Message::data(PAYLOADS[i % PAYLOADS.len()])
}

fn arb_spec() -> impl Strategy<Value = RunSpec> {
    let send = (
        0..PRINCIPALS.len(),
        0..PRINCIPALS.len(),
        proptest::option::of(0usize..3),
        0..PAYLOADS.len(),
        1i64..HORIZON - 2,
        proptest::bool::weighted(0.9),
    );
    (
        proptest::collection::vec(send, 1..12),
        proptest::collection::vec(
            (
                0..PRINCIPALS.len(),
                proptest::option::of(0..PRINCIPALS.len()),
            ),
            3,
        ),
        proptest::collection::vec(any::<bool>(), PAYLOADS.len()),
    )
        .prop_map(|(sends, key_holders, group_echoes)| RunSpec {
            sends,
            key_holders,
            group_echoes,
        })
}

fn build_model(spec: &RunSpec) -> Model {
    let mut b = RunBuilder::new();
    for p in PRINCIPALS {
        b.party(Subject::principal(p), 0);
    }
    let group = Subject::principal("G");
    b.party(group.clone(), 0);
    let server = Subject::principal("P");
    b.party(server.clone(), 0);

    for (ki, (holder, thief)) in spec.key_holders.iter().enumerate() {
        b.give_key(&principal(*holder), key(ki), Time(0));
        if let Some(t) = thief {
            b.give_key(&principal(*t), key(ki), Time(0));
        }
    }

    for (from, to, key_idx, pay_idx, t, delivered) in &spec.sends {
        let sender = principal(*from);
        let recipient = if from == to {
            server.clone()
        } else {
            principal(*to)
        };
        // Senders only sign with keys they hold (legal runs don't forge).
        let msg = match key_idx {
            Some(ki)
                if spec.key_holders.get(*ki).is_some_and(|(h, thief)| {
                    principal(*h) == sender || thief.is_some_and(|th| principal(th) == sender)
                }) =>
            {
                payload(*pay_idx).signed(key(*ki))
            }
            _ => payload(*pay_idx),
        };
        if *delivered {
            b.deliver(&sender, &recipient, msg.clone(), Time(*t), 1);
        } else {
            b.send_lost(&sender, &recipient, msg.clone(), Time(*t));
        }
        // Group echo: when enabled for this payload, the group says the
        // payload at the same tick (used to make memberships true).
        if spec.group_echoes.get(*pay_idx).copied().unwrap_or(false) {
            b.send_lost(&group, &server, payload(*pay_idx), Time(*t));
            if msg.as_signed().is_some() {
                b.send_lost(&group, &server, msg, Time(*t));
            }
        }
    }
    Model::new(b.build())
}

fn all_times() -> impl Iterator<Item = Time> {
    (0..HORIZON).map(Time)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated runs satisfy the legality conditions of Appendix C.
    #[test]
    fn generated_runs_are_legal(spec in arb_spec()) {
        let model = build_model(&spec);
        prop_assert!(model.run().is_legal());
    }

    /// A10 (originator identification): K ⇒_{t,Q} S ∧ Q received_t ⟨X⟩_{K⁻¹}
    /// ⊃ S said_t X — for every key, observer, owner candidate, payload and
    /// time in the run.
    #[test]
    fn a10_originator_identification(spec in arb_spec()) {
        let model = build_model(&spec);
        for t in all_times() {
            for ki in 0..3 {
                for owner in 0..PRINCIPALS.len() {
                    for q in 0..PRINCIPALS.len() {
                        for pi in 0..PAYLOADS.len() {
                            let signed = payload(pi).signed(key(ki));
                            let observer = principal(q);
                            let obs_id = observer.principal_id().expect("single").clone();
                            let antecedent = Formula::and(
                                Formula::KeySpeaksFor {
                                    key: key(ki),
                                    when: TimeRef::At(t),
                                    relative_to: Some(obs_id),
                                    subject: principal(owner),
                                },
                                Formula::received(observer, t, signed.clone()),
                            );
                            let consequent = Formula::and(
                                Formula::said(principal(owner), t, payload(pi)),
                                Formula::said(principal(owner), t, signed),
                            );
                            prop_assert!(
                                model.eval(t, &Formula::implies(antecedent, consequent)),
                                "A10 failed: key K{ki}, owner {owner}, observer {q}, t {t}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// A12: P received_t ⟨X⟩_{K⁻¹} ⊃ P received_t X.
    #[test]
    fn a12_received_unwraps_signatures(spec in arb_spec()) {
        let model = build_model(&spec);
        for t in all_times() {
            for p in 0..PRINCIPALS.len() {
                for ki in 0..3 {
                    for pi in 0..PAYLOADS.len() {
                        let f = Formula::implies(
                            Formula::received(principal(p), t, payload(pi).signed(key(ki))),
                            Formula::received(principal(p), t, payload(pi)),
                        );
                        prop_assert!(model.eval(t, &f));
                    }
                }
            }
        }
    }

    /// A17/A18/A20: said/says of a signed message implies said/says of the
    /// payload; says implies said.
    #[test]
    fn a17_a18_a20_saying(spec in arb_spec()) {
        let model = build_model(&spec);
        for t in all_times() {
            for p in 0..PRINCIPALS.len() {
                for ki in 0..3 {
                    for pi in 0..PAYLOADS.len() {
                        let signed = payload(pi).signed(key(ki));
                        let a17 = Formula::implies(
                            Formula::said(principal(p), t, signed.clone()),
                            Formula::said(principal(p), t, payload(pi)),
                        );
                        let a18 = Formula::implies(
                            Formula::says(principal(p), t, signed.clone()),
                            Formula::says(principal(p), t, payload(pi)),
                        );
                        let a20 = Formula::implies(
                            Formula::says(principal(p), t, signed.clone()),
                            Formula::said(principal(p), t, signed),
                        );
                        prop_assert!(model.eval(t, &a17), "A17 failed");
                        prop_assert!(model.eval(t, &a18), "A18 failed");
                        prop_assert!(model.eval(t, &a20), "A20 failed");
                    }
                }
            }
        }
    }

    /// A19: P said_t X ⊃ ∃t' >= t (within the horizon)… evaluated in its
    /// contrapositive-free finite form: said at t implies says at some
    /// t'' <= t, hence Within(0, t) says.
    #[test]
    fn a19_said_has_a_witness(spec in arb_spec()) {
        let model = build_model(&spec);
        for t in all_times() {
            for p in 0..PRINCIPALS.len() {
                for pi in 0..PAYLOADS.len() {
                    let f = Formula::implies(
                        Formula::said(principal(p), t, payload(pi)),
                        Formula::Says(principal(p), TimeRef::Within(Time(0), t), payload(pi)),
                    );
                    prop_assert!(model.eval(t, &f));
                }
            }
        }
    }

    /// A8 monotonicity: received/said persist forward in time.
    #[test]
    fn a8_monotonicity(spec in arb_spec()) {
        let model = build_model(&spec);
        for t in all_times() {
            let t_next = t.plus(1);
            for p in 0..PRINCIPALS.len() {
                for pi in 0..PAYLOADS.len() {
                    let recv = Formula::implies(
                        Formula::received(principal(p), t, payload(pi)),
                        Formula::received(principal(p), t_next, payload(pi)),
                    );
                    let said = Formula::implies(
                        Formula::said(principal(p), t, payload(pi)),
                        Formula::said(principal(p), t_next, payload(pi)),
                    );
                    prop_assert!(model.eval(t_next, &recv), "A8a failed");
                    prop_assert!(model.eval(t_next, &said), "A8b failed");
                }
            }
        }
    }

    /// A8d: freshness persists backward: fresh_t X ∧ t' <= t ⊃ fresh_{t'} X.
    #[test]
    fn a8d_freshness_backward(spec in arb_spec()) {
        let model = build_model(&spec);
        let observer = Subject::principal("P");
        for t in all_times().skip(1) {
            let earlier = Time(t.0 - 1);
            for pi in 0..PAYLOADS.len() {
                let f = Formula::implies(
                    Formula::Fresh { observer: observer.clone(), when: TimeRef::At(t), msg: payload(pi) },
                    Formula::Fresh { observer: observer.clone(), when: TimeRef::At(earlier), msg: payload(pi) },
                );
                prop_assert!(model.eval(t, &f));
            }
        }
    }

    /// A34/A36: S ⇒ G ∧ S says_t X ⊃ G says_t X, for single principals and
    /// compounds.
    #[test]
    fn a34_a36_group_speaks_for(spec in arb_spec()) {
        let model = build_model(&spec);
        let g = GroupId::new("G");
        for t in all_times() {
            for p in 0..PRINCIPALS.len() {
                for pi in 0..PAYLOADS.len() {
                    let f = Formula::implies(
                        Formula::and(
                            Formula::member_of(principal(p), t, g.clone()),
                            Formula::says(principal(p), t, payload(pi)),
                        ),
                        Formula::group_says(g.clone(), t, payload(pi)),
                    );
                    prop_assert!(model.eval(t, &f), "A34 failed for {p} at {t}");
                }
            }
        }
    }

    /// A35: Q|K ⇒ G ∧ K ⇒ Q ∧ Q says_t ⟨X⟩_{K⁻¹} ⊃ G says_t X.
    #[test]
    fn a35_bound_group_speaks_for(spec in arb_spec()) {
        let model = build_model(&spec);
        let g = GroupId::new("G");
        for t in all_times() {
            for p in 0..PRINCIPALS.len() {
                for ki in 0..3 {
                    for pi in 0..PAYLOADS.len() {
                        let bound = principal(p).bound(key(ki));
                        let f = Formula::implies(
                            Formula::and(
                                Formula::and(
                                    Formula::member_of(bound, t, g.clone()),
                                    Formula::key_speaks_for(key(ki), t, principal(p)),
                                ),
                                Formula::says(principal(p), t, payload(pi).signed(key(ki))),
                            ),
                            Formula::group_says(g.clone(), t, payload(pi)),
                        );
                        prop_assert!(model.eval(t, &f), "A35 failed");
                    }
                }
            }
        }
    }

    /// A38: CP_{m,n} ⇒ G ∧ m members sign X at t ⊃ G says_t X.
    #[test]
    fn a38_threshold_group_speaks_for(spec in arb_spec()) {
        let model = build_model(&spec);
        let g = GroupId::new("G");
        let members: Vec<Subject> = (0..3).map(|i| principal(i).bound(key(i))).collect();
        for m in 1..=3usize {
            let cp = Subject::threshold(members.clone(), m);
            for t in all_times() {
                for pi in 0..PAYLOADS.len() {
                    let mut signer_conj = Formula::member_of(cp.clone(), t, g.clone());
                    for member in members.iter().take(m) {
                        let Subject::Bound(inner, k) = member else { unreachable!() };
                        signer_conj = Formula::and(
                            signer_conj,
                            Formula::says((**inner).clone(), t, payload(pi).signed(k.clone())),
                        );
                    }
                    let f = Formula::implies(
                        signer_conj,
                        Formula::group_says(g.clone(), t, payload(pi)),
                    );
                    prop_assert!(model.eval(t, &f), "A38 failed for m={m} at {t}");
                }
            }
        }
    }

    /// A22 (jurisdiction): S controls_t φ ∧ S says_t φ ⊃ φ at_S t.
    #[test]
    fn a22_jurisdiction(spec in arb_spec()) {
        let model = build_model(&spec);
        for t in all_times() {
            for p in 0..PRINCIPALS.len() {
                for pi in 0..PAYLOADS.len() {
                    // φ: some other principal said the payload by now.
                    let phi = Formula::said(principal((p + 1) % PRINCIPALS.len()), t, payload(pi));
                    let f = Formula::implies(
                        Formula::and(
                            Formula::controls(principal(p), t, phi.clone()),
                            Formula::says(principal(p), t, Message::formula(phi.clone())),
                        ),
                        Formula::at(phi, principal(p), t),
                    );
                    prop_assert!(model.eval(t, &f), "A22 failed");
                }
            }
        }
    }
}
