//! Compile-level checks that the optional `serde` feature provides
//! `Serialize`/`Deserialize` for the data types (guideline C-SERDE).
//!
//! Run with `cargo test -p jaap-core --features serde`.

#![cfg(feature = "serde")]

use jaap_core::axioms::Axiom;
use jaap_core::certs::Validity;
use jaap_core::syntax::{Formula, GroupId, KeyId, Message, PrincipalId, Subject, Time, TimeRef};
use jaap_core::{Derivation, Rule};

fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

#[test]
fn all_data_types_are_serde() {
    assert_serde::<Time>();
    assert_serde::<TimeRef>();
    assert_serde::<PrincipalId>();
    assert_serde::<KeyId>();
    assert_serde::<GroupId>();
    assert_serde::<Subject>();
    assert_serde::<Message>();
    assert_serde::<Formula>();
    assert_serde::<Validity>();
    assert_serde::<Axiom>();
    assert_serde::<Rule>();
    assert_serde::<Derivation>();
}
