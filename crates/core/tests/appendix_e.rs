//! A line-by-line reproduction of the paper's Appendix E walkthrough:
//! initial beliefs (Statements 1–11), Messages 1-1 … 1-4, the four protocol
//! steps (Statements 12–25), and the revocation coda (Message 2,
//! Statement 26).

use jaap_core::axioms::Axiom;
use jaap_core::certs::{Certs, Validity};
use jaap_core::engine::{Engine, TrustAssumptions};
use jaap_core::protocol::{authorize, AccessRequest, Acl, Operation, SignedStatement};
use jaap_core::syntax::{GroupId, KeyId, Subject, Time};

fn k(s: &str) -> KeyId {
    KeyId::new(s)
}

/// The paper's CP′ = {User_D1|K_u1, User_D2|K_u2, User_D3|K_u3}, 2-of-3.
fn cp_prime() -> Subject {
    Subject::threshold(
        vec![
            Subject::principal("User_D1").bound(k("K_u1")),
            Subject::principal("User_D2").bound(k("K_u2")),
            Subject::principal("User_D3").bound(k("K_u3")),
        ],
        2,
    )
}

/// Statements 1–11: server P's initial beliefs.
fn initial_beliefs() -> TrustAssumptions {
    let mut a = TrustAssumptions::new(Time(0)); // t*
                                                // Statement 1: K_AA ⇒ CP₃,₃ where CP = {D1, D2, D3}.
    a.own_key(
        k("K_AA"),
        Subject::threshold(
            vec![
                Subject::principal("D1"),
                Subject::principal("D2"),
                Subject::principal("D3"),
            ],
            3,
        ),
    );
    a.own_key(k("K_AA"), Subject::principal("AA")); // reading convenience
                                                    // Statements 2–5: AA's jurisdiction over group membership and its own
                                                    // timestamps.
    a.group_authority("AA");
    // Statements 6–11: CA1..CA3 jurisdiction over their users' keys.
    for i in 1..=3 {
        a.own_key(k(&format!("K_CA{i}")), Subject::principal(format!("CA{i}")));
        a.identity_authority(format!("CA{i}"));
    }
    // Revocation coda: RA speaks revocations for AA.
    a.own_key(k("K_RA"), Subject::principal("RA"));
    a.revocation_authority("RA", "AA");
    a
}

fn the_request() -> AccessRequest {
    let validity = Validity::new(Time(0), Time(100));
    let op = Operation::new("write", "Object O");
    AccessRequest {
        identity_certs: vec![
            // Message 1-1: ⟨CA1 says_tCA1 (K_u1 ⇒ [tb,te] User_D1)⟩_K_CA1⁻¹
            Certs::identity("CA1", k("K_CA1"), k("K_u1"), "User_D1", Time(2), validity),
            // Message 1-2: same for User_D2 from CA2.
            Certs::identity("CA2", k("K_CA2"), k("K_u2"), "User_D2", Time(2), validity),
        ],
        // Message 1-3: ⟨AA says_tAA (CP′₂,₃ ⇒ [tb′,te′] G_write)⟩_K_AA⁻¹
        attribute_certs: vec![Certs::threshold_attribute(
            "AA",
            k("K_AA"),
            cp_prime(),
            GroupId::new("G_write"),
            Time(3),
            validity,
        )],
        // Message 1-4: the signed request components.
        signed_statements: vec![
            SignedStatement::new("User_D1", k("K_u1"), &op, Time(9)),
            SignedStatement::new("User_D2", k("K_u2"), &op, Time(9)),
        ],
        operation: op,
        at: Time(9), // t1
    }
}

#[test]
fn statements_12_through_25_in_order() {
    let mut engine = Engine::new("P", initial_beliefs());
    engine.advance_clock(Time(10)).expect("clock");
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");

    let decision = authorize(&mut engine, &the_request(), &acl);
    assert!(decision.granted, "{:?}", decision.reason);
    let proof = decision.derivation.expect("proof");
    let text = proof.render_numbered();

    // Step 1 (statements 12–17): identity keys believed via A10 → A22 → A9.
    let idx = |needle: &str| {
        text.find(needle)
            .unwrap_or_else(|| panic!("missing: {needle}\n{text}"))
    };
    let s_key1 = idx("K_u1 ⇒_{[t0,t100],CA1} User_D1   [axiom A9");
    // Step 2 (statements 18–22): threshold membership believed via A23 → A28.
    let s_member = idx("⇒_{[t0,t100],AA} G_write   [axiom A9");
    // Step 3 (statements 23–25): A38 concludes G_write says "write" O.
    let s_group = idx("G_write says_t10 \"\"write\" Object O\"   [axiom A38");
    // Step 4: the ACL side condition closes the proof.
    let s_acl = idx("access approved");

    assert!(s_key1 < s_group, "keys are verified before the request");
    assert!(s_member < s_group, "membership precedes A38");
    assert!(s_group < s_acl, "the ACL check is last");

    // The axioms cited match the paper's walkthrough (modulo our precise
    // A28 labeling of what the paper's prose calls A25 — see protocol docs).
    let used = proof.axioms_used();
    for ax in [
        Axiom::A10,
        Axiom::A22,
        Axiom::A23,
        Axiom::A9,
        Axiom::A28,
        Axiom::A38,
    ] {
        assert!(used.contains(&ax), "missing {ax} in {used:?}");
    }
}

#[test]
fn the_revocation_coda_message_2() {
    let mut engine = Engine::new("P", initial_beliefs());
    engine.advance_clock(Time(10)).expect("clock");
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");

    // First the grant, as above.
    assert!(authorize(&mut engine, &the_request(), &acl).granted);

    // Message 2: RA says ¬(CP′₂,₃ ⇒_t′ G_write), signed K_RA⁻¹, at t7.
    engine.advance_clock(Time(20)).expect("clock");
    let message_2 = Certs::attribute_revocation(
        "RA",
        k("K_RA"),
        cp_prime(),
        GroupId::new("G_write"),
        Time(20),
        Time(20),
    );
    engine.admit_certificate(&message_2).expect("statement 26");

    // "We will be unable to obtain this belief for t4 ≥ t8": the same
    // request, re-evaluated after the revocation, is refused.
    engine.advance_clock(Time(21)).expect("clock");
    let mut replay = the_request();
    replay.at = Time(21);
    replay.signed_statements = vec![
        SignedStatement::new("User_D1", k("K_u1"), &replay.operation, Time(21)),
        SignedStatement::new("User_D2", k("K_u2"), &replay.operation, Time(21)),
    ];
    let decision = authorize(&mut engine, &replay, &acl);
    assert!(!decision.granted);
}

#[test]
fn numbered_rendering_reads_like_the_paper() {
    let mut engine = Engine::new("P", initial_beliefs());
    engine.advance_clock(Time(10)).expect("clock");
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");
    let proof = authorize(&mut engine, &the_request(), &acl)
        .derivation
        .expect("proof");
    let text = proof.render_numbered();
    // Every numbered line cites either a base rule or earlier statements.
    for (i, line) in text.lines().enumerate() {
        assert!(
            line.trim_start().starts_with(&format!("{}.", i + 1)),
            "line {i} misnumbered: {line}"
        );
        assert!(line.contains('['), "line {i} lacks a citation: {line}");
    }
    // Citations only reference earlier statements.
    for (i, line) in text.lines().enumerate() {
        if let Some(on) = line.split(" on ").nth(1) {
            let nums = on.trim_end_matches(']');
            for n in nums.split(", ") {
                let n: usize = n.parse().expect("citation number");
                assert!(n <= i, "forward citation on line {}: {line}", i + 1);
            }
        }
    }
}
