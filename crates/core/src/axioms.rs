//! The axiom system (paper Appendix B): inference rules R1–R2 and axiom
//! schemas A1–A38, as first-class values.
//!
//! Every [`crate::Derivation`] node is labeled with the [`Axiom`] that
//! justified it, so proofs printed by the engine read like the paper's
//! statement sequences (e.g. statements 12–25 of Appendix E).

use core::fmt;

/// An axiom schema or inference rule of the logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // the variants are the paper's axiom numbers
pub enum Axiom {
    R1,
    R2,
    A1,
    A2,
    A3,
    A4,
    A5,
    A6,
    A7,
    A8,
    A9,
    A10,
    A11,
    A12,
    A13,
    A14,
    A15,
    A16,
    A17,
    A18,
    A19,
    A20,
    A21,
    A22,
    A23,
    A24,
    A25,
    A26,
    A27,
    A28,
    A29,
    A30,
    A31,
    A32,
    A33,
    A34,
    A35,
    A36,
    A37,
    A38,
}

impl Axiom {
    /// All axioms and rules, in paper order.
    pub const ALL: [Axiom; 40] = [
        Axiom::R1,
        Axiom::R2,
        Axiom::A1,
        Axiom::A2,
        Axiom::A3,
        Axiom::A4,
        Axiom::A5,
        Axiom::A6,
        Axiom::A7,
        Axiom::A8,
        Axiom::A9,
        Axiom::A10,
        Axiom::A11,
        Axiom::A12,
        Axiom::A13,
        Axiom::A14,
        Axiom::A15,
        Axiom::A16,
        Axiom::A17,
        Axiom::A18,
        Axiom::A19,
        Axiom::A20,
        Axiom::A21,
        Axiom::A22,
        Axiom::A23,
        Axiom::A24,
        Axiom::A25,
        Axiom::A26,
        Axiom::A27,
        Axiom::A28,
        Axiom::A29,
        Axiom::A30,
        Axiom::A31,
        Axiom::A32,
        Axiom::A33,
        Axiom::A34,
        Axiom::A35,
        Axiom::A36,
        Axiom::A37,
        Axiom::A38,
    ];

    /// The paper's identifier, e.g. `"A10"`.
    #[must_use]
    pub fn id(&self) -> &'static str {
        match self {
            Axiom::R1 => "R1",
            Axiom::R2 => "R2",
            Axiom::A1 => "A1",
            Axiom::A2 => "A2",
            Axiom::A3 => "A3",
            Axiom::A4 => "A4",
            Axiom::A5 => "A5",
            Axiom::A6 => "A6",
            Axiom::A7 => "A7",
            Axiom::A8 => "A8",
            Axiom::A9 => "A9",
            Axiom::A10 => "A10",
            Axiom::A11 => "A11",
            Axiom::A12 => "A12",
            Axiom::A13 => "A13",
            Axiom::A14 => "A14",
            Axiom::A15 => "A15",
            Axiom::A16 => "A16",
            Axiom::A17 => "A17",
            Axiom::A18 => "A18",
            Axiom::A19 => "A19",
            Axiom::A20 => "A20",
            Axiom::A21 => "A21",
            Axiom::A22 => "A22",
            Axiom::A23 => "A23",
            Axiom::A24 => "A24",
            Axiom::A25 => "A25",
            Axiom::A26 => "A26",
            Axiom::A27 => "A27",
            Axiom::A28 => "A28",
            Axiom::A29 => "A29",
            Axiom::A30 => "A30",
            Axiom::A31 => "A31",
            Axiom::A32 => "A32",
            Axiom::A33 => "A33",
            Axiom::A34 => "A34",
            Axiom::A35 => "A35",
            Axiom::A36 => "A36",
            Axiom::A37 => "A37",
            Axiom::A38 => "A38",
        }
    }

    /// The schema as stated in the paper (Appendix B), in our notation.
    #[must_use]
    pub fn statement(&self) -> &'static str {
        match self {
            Axiom::R1 => "Modus Ponens: from φ and φ ⊃ ψ infer ψ",
            Axiom::R2 => "Necessitation: if ⊢ φ, from φ infer P believes_t φ",
            Axiom::A1 => "P believes_t φ ∧ P believes_t (φ ⊃ ψ) ⊃ P believes_t ψ",
            Axiom::A2 => "P believes_t φ ≡ P believes_t P believes_t φ",
            Axiom::A3 => "P believes_t φ ≡ P believes_t (φ at_P t)",
            Axiom::A4 => "CP believes_t φ ∧ CP believes_t (φ ⊃ ψ) ⊃ CP believes_t ψ",
            Axiom::A5 => "CP believes_t φ ≡ CP believes_t CP believes_t φ",
            Axiom::A6 => "CP believes_t φ ≡ CP believes_t (φ at_CP t)",
            Axiom::A7 => "time-interval: S believes_[t1,t2] φ ≡ ∀t ∈ [t1,t2]. S believes_t φ (and for controls/received/says/said/has/⇒)",
            Axiom::A8 => "monotonicity: received/said/has persist forward; fresh persists backward; at composes",
            Axiom::A9 => "reduction: (φ at_P t1) at_P t2 ∧ t2 ≥ t1 ⊃ φ at_P t2 (for says/said/received bodies)",
            Axiom::A10 => "originator identification: K ⇒_{t,P} S ∧ P received_t ⟨X⟩_{K⁻¹} ⊃ S said_{t,P} X ∧ S said_{t,P} ⟨X⟩_{K⁻¹} (S a principal, compound, or threshold compound)",
            Axiom::A11 => "P received_t {X}_K ∧ P has_t K⁻¹ ⊃ P received_t X",
            Axiom::A12 => "P received_t ⟨X⟩_{K⁻¹} ⊃ P received_t X",
            Axiom::A13 => "CP received_t {X}_K ∧ CP has_t K⁻¹ ⊃ CP received_t X",
            Axiom::A14 => "CP received_t ⟨X⟩_{K⁻¹} ⊃ CP received_t X",
            Axiom::A15 => "P said_t (X1,…,Xn) ⊃ P said_t Xi",
            Axiom::A16 => "P says_t (X1,…,Xn) ⊃ P says_t Xi",
            Axiom::A17 => "P said_t ⟨X⟩_{K⁻¹} ⊃ P said_t X",
            Axiom::A18 => "P says_t ⟨X⟩_{K⁻¹} ⊃ P says_t X",
            Axiom::A19 => "P said_t X ⊃ ∃t' ≥ t. P says_{t'} X",
            Axiom::A20 => "P says_t X ⊃ P said_t X",
            Axiom::A21 => "freshness: fresh_t X ⊃ fresh_t F(X,Y)",
            Axiom::A22 => "jurisdiction: P controls_t φ ∧ P says_t φ ⊃ φ at_P t",
            Axiom::A23 => "multi-principal jurisdiction: CP controls_t φ ∧ CP says_t φ ⊃ φ at_CP t",
            Axiom::A24 => "P controls_t Q ⇒_{t'} G ∧ P says_t Q ⇒_{t'} G ⊃ Q ⇒_{t'} G at_P t",
            Axiom::A25 => "P controls_t CP' ⇒_{t'} G ∧ P says_t CP' ⇒_{t'} G ⊃ CP' ⇒_{t'} G at_P t",
            Axiom::A26 => "P controls_t Q|K ⇒_{t'} G ∧ P says_t Q|K ⇒_{t'} G ⊃ Q|K ⇒_{t'} G at_P t",
            Axiom::A27 => "P controls_t CP'|K ⇒_{t'} G ∧ P says_t CP'|K ⇒_{t'} G ⊃ CP'|K ⇒_{t'} G at_P t",
            Axiom::A28 => "P controls_t CP'_{m,n} ⇒_{t'} G ∧ P says_t CP'_{m,n} ⇒_{t'} G ⊃ CP'_{m,n} ⇒_{t'} G at_P t",
            Axiom::A29 => "CP controls_t Q ⇒_{t'} G ∧ CP says_t Q ⇒_{t'} G ⊃ Q ⇒_{t'} G at_CP t",
            Axiom::A30 => "CP controls_t CP' ⇒_{t'} G ∧ CP says_t CP' ⇒_{t'} G ⊃ CP' ⇒_{t'} G at_CP t",
            Axiom::A31 => "CP controls_t Q|K ⇒_{t'} G ∧ CP says_t Q|K ⇒_{t'} G ⊃ Q|K ⇒_{t'} G at_CP t",
            Axiom::A32 => "CP controls_t CP'|K ⇒_{t'} G ∧ CP says_t CP'|K ⇒_{t'} G ⊃ CP'|K ⇒_{t'} G at_CP t",
            Axiom::A33 => "CP controls_t CP'_{m,n} ⇒_{t'} G ∧ CP says_t CP'_{m,n} ⇒_{t'} G ⊃ CP'_{m,n} ⇒_{t'} G at_CP t",
            Axiom::A34 => "Q ⇒_t G ∧ Q says_t X ⊃ G says_t X",
            Axiom::A35 => "Q|K ⇒_t G ∧ K ⇒_{t,P} Q ∧ Q says_t ⟨X⟩_{K⁻¹} ⊃ G says_t X",
            Axiom::A36 => "CP ⇒_t G ∧ CP says_t X ⊃ G says_t X",
            Axiom::A37 => "CP|K ⇒_t G ∧ K ⇒_{t,P} CP ∧ CP says_t ⟨X⟩_{K⁻¹} ⊃ G says_t X",
            Axiom::A38 => "CP_{m,n} ⇒_t G ∧ P1 says_t ⟨X⟩_{K1⁻¹} ∧ … ∧ Pm says_t ⟨X⟩_{Km⁻¹} ⊃ G says_t X",
        }
    }

    /// `true` for the schemas the paper adds over the prior logics of
    /// Lampson/Abadi/Stubblebine–Wright (the extensions: A10 compound and
    /// threshold originator cases, and A24–A38).
    #[must_use]
    pub fn is_extension(&self) -> bool {
        matches!(
            self,
            Axiom::A10
                | Axiom::A23
                | Axiom::A24
                | Axiom::A25
                | Axiom::A26
                | Axiom::A27
                | Axiom::A28
                | Axiom::A29
                | Axiom::A30
                | Axiom::A31
                | Axiom::A32
                | Axiom::A33
                | Axiom::A34
                | Axiom::A35
                | Axiom::A36
                | Axiom::A37
                | Axiom::A38
        )
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_axioms_and_rules() {
        assert_eq!(Axiom::ALL.len(), 40);
        let mut ids: Vec<&str> = Axiom::ALL.iter().map(Axiom::id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 40, "ids must be unique");
    }

    #[test]
    fn ids_match_variants() {
        assert_eq!(Axiom::A10.id(), "A10");
        assert_eq!(Axiom::R1.id(), "R1");
        assert_eq!(Axiom::A38.to_string(), "A38");
    }

    #[test]
    fn every_axiom_has_a_statement() {
        for ax in Axiom::ALL {
            assert!(!ax.statement().is_empty(), "{ax} lacks a statement");
        }
    }

    #[test]
    fn extensions_match_paper_claim() {
        // "These extensions are reflected in Axioms 10, 24 – 38."
        assert!(Axiom::A10.is_extension());
        for a in [Axiom::A24, Axiom::A28, Axiom::A33, Axiom::A34, Axiom::A38] {
            assert!(a.is_extension(), "{a} is an extension");
        }
        assert!(!Axiom::A1.is_extension());
        assert!(!Axiom::A22.is_extension());
    }

    #[test]
    fn key_statements_quote_the_paper() {
        assert!(Axiom::A38.statement().contains("CP_{m,n}"));
        assert!(Axiom::A22.statement().contains("controls"));
        assert!(Axiom::R1.statement().contains("Modus Ponens"));
    }
}
