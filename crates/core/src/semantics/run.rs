//! Runs: histories of timestamped events per (compound) principal.

use std::collections::BTreeMap;

use crate::syntax::{KeyId, Message, Subject, Time};

/// A basic event in a party's history (Appendix C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `send(X, Q)`: send message `X` to party `Q`.
    Send {
        /// Recipient.
        to: Subject,
        /// The message.
        msg: Message,
    },
    /// `receive(X)`.
    Receive {
        /// The message.
        msg: Message,
    },
    /// `generate(X)` (e.g. key generation).
    Generate {
        /// The message.
        msg: Message,
    },
}

/// An event stamped with the party's local time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// The event.
    pub event: Event,
    /// Local time at which it occurred.
    pub at: Time,
}

/// One (possibly compound) principal's local state over the whole run.
#[derive(Debug, Clone)]
pub struct PartyState {
    /// The party (a principal, compound, threshold compound, or a group).
    pub subject: Subject,
    /// Clock skew: local time = global time + offset.
    pub clock_offset: i64,
    /// Keys with acquisition times (key sets grow monotonically).
    pub keys: Vec<(KeyId, Time)>,
    /// Timestamped history, sorted by local time.
    pub history: Vec<TimedEvent>,
}

impl PartyState {
    /// Local time corresponding to global time `t`.
    #[must_use]
    pub fn local_time(&self, global: Time) -> Time {
        Time(global.0.saturating_add(self.clock_offset))
    }

    /// Global time corresponding to local time `t`.
    #[must_use]
    pub fn global_time(&self, local: Time) -> Time {
        Time(local.0.saturating_sub(self.clock_offset))
    }

    /// The key set available at local time `t`.
    #[must_use]
    pub fn keyset_at(&self, local: Time) -> Vec<KeyId> {
        self.keys
            .iter()
            .filter(|(_, acquired)| *acquired <= local)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Messages received at local times `<= local`.
    #[must_use]
    pub fn received_by(&self, local: Time) -> Vec<&Message> {
        self.history
            .iter()
            .filter(|e| e.at <= local)
            .filter_map(|e| match &e.event {
                Event::Receive { msg } => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// Send events at exactly local time `local`.
    #[must_use]
    pub fn sends_at(&self, local: Time) -> Vec<&Message> {
        self.history
            .iter()
            .filter(|e| e.at == local)
            .filter_map(|e| match &e.event {
                Event::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// All send events with their local times.
    #[must_use]
    pub fn all_sends(&self) -> Vec<(Time, &Message)> {
        self.history
            .iter()
            .filter_map(|e| match &e.event {
                Event::Send { msg, .. } => Some((e.at, msg)),
                _ => None,
            })
            .collect()
    }
}

/// A run: local states for every party (Appendix C's global state as a
/// function of time, flattened into per-party histories).
#[derive(Debug, Clone, Default)]
pub struct Run {
    parties: BTreeMap<String, PartyState>,
}

impl Run {
    /// The party state for `subject`, if present.
    #[must_use]
    pub fn party(&self, subject: &Subject) -> Option<&PartyState> {
        self.parties.get(&subject.to_string())
    }

    /// Iterates over all party states.
    pub fn parties(&self) -> impl Iterator<Item = &PartyState> {
        self.parties.values()
    }

    /// All messages appearing anywhere in the run (the finite message
    /// universe over which truth-condition quantifiers range).
    #[must_use]
    pub fn message_universe(&self) -> Vec<&Message> {
        let mut out = Vec::new();
        for p in self.parties.values() {
            for e in &p.history {
                match &e.event {
                    Event::Send { msg, .. } | Event::Receive { msg } | Event::Generate { msg } => {
                        out.push(msg);
                    }
                }
            }
        }
        out
    }

    /// Legality check (Appendix C): every `receive(X)` must be preceded by
    /// a matching `send(X, recipient)` at an earlier-or-equal global time,
    /// and histories must be sorted.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        for p in self.parties.values() {
            if !p.history.windows(2).all(|w| w[0].at <= w[1].at) {
                return false;
            }
        }
        for receiver in self.parties.values() {
            for e in &receiver.history {
                let Event::Receive { msg } = &e.event else {
                    continue;
                };
                let recv_global = receiver.global_time(e.at);
                let matched = self.parties.values().any(|sender| {
                    sender.history.iter().any(|se| {
                        matches!(&se.event, Event::Send { to, msg: m }
                            if to == &receiver.subject && m == msg)
                            && sender.global_time(se.at) <= recv_global
                    })
                });
                if !matched {
                    return false;
                }
            }
        }
        true
    }
}

/// Builder for runs; delivery is recorded symmetrically (a `send` here plus
/// a `receive` at the recipient after `delay` ticks).
#[derive(Debug, Default)]
pub struct RunBuilder {
    run: Run,
}

impl RunBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        RunBuilder::default()
    }

    /// Registers a party with a clock offset.
    pub fn party(&mut self, subject: Subject, clock_offset: i64) -> &mut Self {
        self.run.parties.insert(
            subject.to_string(),
            PartyState {
                subject,
                clock_offset,
                keys: Vec::new(),
                history: Vec::new(),
            },
        );
        self
    }

    /// Gives `subject` a key from local time `at`.
    ///
    /// # Panics
    ///
    /// Panics if the party is unknown.
    pub fn give_key(&mut self, subject: &Subject, key: KeyId, at: Time) -> &mut Self {
        self.party_mut(subject).keys.push((key, at));
        self
    }

    /// Records a message transfer: `from` sends at global time `sent`,
    /// `to` receives `delay` ticks later (both stamped in local times).
    ///
    /// # Panics
    ///
    /// Panics if either party is unknown.
    pub fn deliver(
        &mut self,
        from: &Subject,
        to: &Subject,
        msg: Message,
        sent_global: Time,
        delay: i64,
    ) -> &mut Self {
        let to_subject = self.party_mut(to).subject.clone();
        let sender = self.party_mut(from);
        let send_local = sender.local_time(sent_global);
        sender.history.push(TimedEvent {
            event: Event::Send {
                to: to_subject,
                msg: msg.clone(),
            },
            at: send_local,
        });
        sender.history.sort_by_key(|e| e.at);
        let receiver = self.party_mut(to);
        let recv_local = receiver.local_time(sent_global.plus(delay));
        receiver.history.push(TimedEvent {
            event: Event::Receive { msg },
            at: recv_local,
        });
        receiver.history.sort_by_key(|e| e.at);
        self
    }

    /// Records a bare send with no delivery (message lost in transit).
    ///
    /// # Panics
    ///
    /// Panics if either party is unknown.
    pub fn send_lost(
        &mut self,
        from: &Subject,
        to: &Subject,
        msg: Message,
        sent_global: Time,
    ) -> &mut Self {
        let to_subject = self.party_mut(to).subject.clone();
        let sender = self.party_mut(from);
        let at = sender.local_time(sent_global);
        sender.history.push(TimedEvent {
            event: Event::Send {
                to: to_subject,
                msg,
            },
            at,
        });
        sender.history.sort_by_key(|e| e.at);
        self
    }

    /// Records a `generate` event.
    ///
    /// # Panics
    ///
    /// Panics if the party is unknown.
    pub fn generate(&mut self, subject: &Subject, msg: Message, at_global: Time) -> &mut Self {
        let p = self.party_mut(subject);
        let at = p.local_time(at_global);
        p.history.push(TimedEvent {
            event: Event::Generate { msg },
            at,
        });
        p.history.sort_by_key(|e| e.at);
        self
    }

    /// Finishes the run.
    #[must_use]
    pub fn build(self) -> Run {
        self.run
    }

    fn party_mut(&mut self, subject: &Subject) -> &mut PartyState {
        self.run
            .parties
            .get_mut(&subject.to_string())
            .unwrap_or_else(|| panic!("unknown party {subject}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Subject {
        Subject::principal(name)
    }

    #[test]
    fn delivered_messages_make_legal_runs() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 0).party(p("B"), 0);
        b.deliver(&p("A"), &p("B"), Message::data("hi"), Time(5), 1);
        let run = b.build();
        assert!(run.is_legal());
        let bob = run.party(&p("B")).expect("B");
        assert_eq!(bob.received_by(Time(6)).len(), 1);
        assert_eq!(bob.received_by(Time(5)).len(), 0);
    }

    #[test]
    fn receive_without_send_is_illegal() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 0);
        let mut run = b.build();
        // Manually inject an orphan receive.
        run.parties
            .get_mut("A")
            .expect("A")
            .history
            .push(TimedEvent {
                event: Event::Receive {
                    msg: Message::data("forged"),
                },
                at: Time(1),
            });
        assert!(!run.is_legal());
    }

    #[test]
    fn lost_sends_are_legal() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 0).party(p("B"), 0);
        b.send_lost(&p("A"), &p("B"), Message::data("dropped"), Time(5));
        assert!(b.build().is_legal());
    }

    #[test]
    fn clock_offsets_shift_local_times() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 10).party(p("B"), -5);
        b.deliver(&p("A"), &p("B"), Message::data("m"), Time(20), 2);
        let run = b.build();
        assert!(run.is_legal());
        let a = run.party(&p("A")).expect("A");
        let bobs = run.party(&p("B")).expect("B");
        assert_eq!(a.all_sends()[0].0, Time(30)); // 20 + 10
        assert_eq!(bobs.received_by(Time(17)).len(), 1); // (20+2) - 5
        assert_eq!(a.local_time(Time(0)), Time(10));
        assert_eq!(a.global_time(Time(10)), Time(0));
    }

    #[test]
    fn keyset_monotone() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 0);
        b.give_key(&p("A"), KeyId::new("K1"), Time(5));
        let run = b.build();
        let a = run.party(&p("A")).expect("A");
        assert!(a.keyset_at(Time(4)).is_empty());
        assert_eq!(a.keyset_at(Time(5)), vec![KeyId::new("K1")]);
        assert_eq!(a.keyset_at(Time(100)), vec![KeyId::new("K1")]);
    }

    #[test]
    fn compound_principals_are_parties() {
        let cp = Subject::compound(vec![p("D1"), p("D2")]);
        let mut b = RunBuilder::new();
        b.party(cp.clone(), 0).party(p("P"), 0);
        b.deliver(&cp, &p("P"), Message::data("joint"), Time(1), 1);
        let run = b.build();
        assert!(run.is_legal());
        assert!(run.party(&cp).is_some());
    }

    #[test]
    fn message_universe_collects_everything() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 0).party(p("B"), 0);
        b.deliver(&p("A"), &p("B"), Message::data("x"), Time(1), 1);
        b.generate(&p("A"), Message::data("k"), Time(0));
        let run = b.build();
        // send + receive + generate = 3 entries.
        assert_eq!(run.message_universe().len(), 3);
    }

    #[test]
    fn unsorted_history_is_illegal() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 0);
        let mut run = b.build();
        let hist = &mut run.parties.get_mut("A").expect("A").history;
        hist.push(TimedEvent {
            event: Event::Generate {
                msg: Message::data("later"),
            },
            at: Time(10),
        });
        hist.push(TimedEvent {
            event: Event::Generate {
                msg: Message::data("earlier"),
            },
            at: Time(5),
        });
        assert!(!run.is_legal());
    }
}
