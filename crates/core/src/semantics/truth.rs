//! Truth conditions (Appendix C): evaluating formulas at a point `(r, t)`.

use crate::syntax::{Formula, GroupId, KeyId, Message, Subject, Time, TimeRef};

use super::run::Run;

/// An interpreted system `(R, π)` restricted to one run, with an evaluator
/// for the Appendix C truth conditions.
#[derive(Debug, Clone)]
pub struct Model {
    run: Run,
    /// Truth assignment for primitive propositions (π). Propositions not
    /// listed are false.
    true_props: Vec<String>,
}

impl Model {
    /// Wraps a run as a model.
    #[must_use]
    pub fn new(run: Run) -> Self {
        Model {
            run,
            true_props: Vec::new(),
        }
    }

    /// Marks a primitive proposition as true (the interpretation π).
    pub fn assert_prop(&mut self, p: impl Into<String>) -> &mut Self {
        self.true_props.push(p.into());
        self
    }

    /// The underlying run.
    #[must_use]
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// Evaluates `(r, t) ⊨ φ` at *global* time `t`.
    #[must_use]
    pub fn eval(&self, t: Time, f: &Formula) -> bool {
        match f {
            Formula::Prop(p) => self.true_props.contains(p),
            Formula::Not(inner) => !self.eval(t, inner),
            Formula::And(a, b) => self.eval(t, a) && self.eval(t, b),
            Formula::Implies(a, b) => !self.eval(t, a) || self.eval(t, b),
            Formula::TimeLe(a, b) => a <= b,
            Formula::Received(s, when, msg) => {
                self.eval_time_ref(when, |tt| self.received(s, tt, t, msg))
            }
            Formula::Says(s, when, msg) => self.eval_time_ref(when, |tt| self.says(s, tt, t, msg)),
            Formula::Said(s, when, msg) => self.eval_time_ref(when, |tt| self.said(s, tt, t, msg)),
            Formula::Has(s, when, key) => self.eval_time_ref(when, |tt| self.has(s, tt, t, key)),
            Formula::KeySpeaksFor {
                key,
                when,
                relative_to,
                subject,
            } => self.eval_time_ref(when, |tt| {
                self.key_speaks_for(key, tt, t, relative_to.as_ref(), subject)
            }),
            Formula::MemberOf {
                subject,
                when,
                group,
                ..
            } => self.eval_time_ref(when, |tt| self.member_of(subject, tt, t, group)),
            Formula::GroupSays(g, when, msg) => {
                let gs = Subject::principal(g.as_str());
                self.eval_time_ref(when, |tt| self.says(&gs, tt, t, msg))
            }
            Formula::Fresh {
                observer,
                when,
                msg,
            } => self.eval_time_ref(when, |tt| self.fresh(observer, tt, t, msg)),
            Formula::Controls(s, when, inner) => {
                self.eval_time_ref(when, |tt| self.controls(s, tt, t, inner))
            }
            Formula::Believes(s, when, inner) => {
                // Single-run strengthening: believes ≈ presence at the
                // believer (see module docs).
                self.eval_time_ref(when, |tt| self.holds_at(s, tt, inner))
            }
            Formula::At(inner, place, when) => {
                self.eval_time_ref(when, |tt| self.holds_at(place, tt, inner))
            }
        }
    }

    /// Universal/existential expansion of a [`TimeRef`], where the times in
    /// formulas are *local* to the subject — evaluated against the global
    /// clock via each check's own locality handling.
    fn eval_time_ref(&self, when: &TimeRef, mut check: impl FnMut(Time) -> bool) -> bool {
        match when {
            TimeRef::At(t) => check(*t),
            TimeRef::Closed(lo, hi) => (lo.0..=hi.0).all(|x| check(Time(x))),
            TimeRef::Within(lo, hi) => (lo.0..=hi.0).any(|x| check(Time(x))),
        }
    }

    /// `φ at_S t`: evaluate at the global time corresponding to `S`'s local
    /// time `t` (Appendix C "At").
    fn holds_at(&self, place: &Subject, local: Time, f: &Formula) -> bool {
        let Some(p) = self.run.party(place) else {
            return false;
        };
        self.eval(p.global_time(local), f)
    }

    /// `S received_{t'} X` (local `t'`).
    fn received(&self, s: &Subject, local: Time, at: Time, msg: &Message) -> bool {
        let Some(p) = self.run.party(s) else {
            return false;
        };
        if local > p.local_time(at) {
            return false; // Appendix C: only the past of (r, t) can be true
        }
        let keys = p.keyset_at(local);
        p.received_by(local)
            .iter()
            .any(|m| m.submessages(&keys).contains(&msg))
    }

    /// `S says_{t'} X`: a send event at exactly `t'` containing `X` as a
    /// submessage.
    fn says(&self, s: &Subject, local: Time, at: Time, msg: &Message) -> bool {
        let Some(p) = self.run.party(s) else {
            return false;
        };
        if local > p.local_time(at) {
            return false;
        }
        let keys = p.keyset_at(local);
        p.sends_at(local)
            .iter()
            .any(|m| m.submessages(&keys).contains(&msg))
    }

    /// `S said_{t'} X`: says at some `t'' <= t'`.
    fn said(&self, s: &Subject, local: Time, at: Time, msg: &Message) -> bool {
        let Some(p) = self.run.party(s) else {
            return false;
        };
        if local > p.local_time(at) {
            return false;
        }
        let keys = p.keyset_at(local);
        p.all_sends()
            .iter()
            .any(|(tt, m)| *tt <= local && m.submessages(&keys).contains(&msg))
    }

    /// `S has_{t'} K`.
    fn has(&self, s: &Subject, local: Time, at: Time, key: &KeyId) -> bool {
        self.run
            .party(s)
            .is_some_and(|p| local <= p.local_time(at) && p.keyset_at(local).contains(key))
    }

    /// `fresh_{t',P} X`: `t'` is within the observer's horizon and no
    /// party said `X` at any local time `<= t'`.
    fn fresh(&self, observer: &Subject, local: Time, at: Time, msg: &Message) -> bool {
        if let Some(obs) = self.run.party(observer) {
            if local > obs.local_time(at) {
                return false;
            }
        }
        !self.run.parties().any(|p| {
            let keys = p.keyset_at(local);
            p.all_sends()
                .iter()
                .any(|(tt, m)| *tt <= local && m.submessages(&keys).contains(&msg))
        })
    }

    /// `K ⇒_{t',Q} S`: signature-checking keys are good if they properly
    /// identify signatures — every `⟨X⟩_{K⁻¹}` received by the observer
    /// must have been said by `S`.
    fn key_speaks_for(
        &self,
        key: &KeyId,
        local: Time,
        at: Time,
        observer: Option<&crate::syntax::PrincipalId>,
        subject: &Subject,
    ) -> bool {
        let observers: Vec<&Subject> = match observer {
            Some(q) => {
                let qs = Subject::Principal(q.clone());
                match self.run.party(&qs) {
                    Some(p) if local <= p.local_time(at) => vec![&p.subject],
                    _ => return false,
                }
            }
            None => self.run.parties().map(|p| &p.subject).collect(),
        };
        for q in observers {
            let Some(qp) = self.run.party(q) else {
                continue;
            };
            let keys = qp.keyset_at(local);
            for m in qp.received_by(local) {
                for sub in m.submessages(&keys) {
                    if let Message::Signed(_, k) = sub {
                        // A good key's signatures originate from the owner:
                        // the owner said the signed message (and hence, by
                        // A17, its payload). The paper's condition asks only
                        // for the payload; we use the stronger form so both
                        // conjuncts of A10's conclusion are sound.
                        if k == key && !self.said(subject, local, at, sub) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// `S ⇒_{t'} G`: membership/speaks-for, per subject shape.
    fn member_of(&self, subject: &Subject, local: Time, at: Time, group: &GroupId) -> bool {
        let g = Subject::principal(group.as_str());
        match subject {
            // CP_{m,n} with key-bound members: whenever ≥ m members sign the
            // same X at t, the group says X at t.
            Subject::Threshold { members, m } => {
                let mut obligations: Vec<(Time, Message)> = Vec::new();
                // Collect all (t, X) signed by members with their keys.
                for member in members {
                    let Subject::Bound(inner, key) = member else {
                        // Unbound members: treat their plain says as signing.
                        let says = self
                            .run
                            .party(member)
                            .map(|p| p.all_sends())
                            .unwrap_or_default();
                        for (tt, msg) in says {
                            if tt <= local {
                                obligations.push((tt, msg.clone()));
                            }
                        }
                        continue;
                    };
                    let inner_subject: &Subject = inner;
                    let Some(p) = self.run.party(inner_subject) else {
                        continue;
                    };
                    for (tt, msg) in p.all_sends() {
                        if tt > local {
                            continue;
                        }
                        for sub in msg.submessages(&p.keyset_at(tt)) {
                            if let Message::Signed(x, k) = sub {
                                if k == key {
                                    obligations.push((tt, (**x).clone()));
                                }
                            }
                        }
                    }
                }
                // For each (t, X) reached by >= m distinct members, require
                // G says_t X.
                let mut checked: Vec<(Time, &Message)> = Vec::new();
                for (tt, x) in &obligations {
                    if checked.iter().any(|(ct, cx)| ct == tt && *cx == x) {
                        continue;
                    }
                    checked.push((*tt, x));
                    let signer_count = members
                        .iter()
                        .filter(|member| self.member_signed(member, *tt, at, x))
                        .count();
                    if signer_count >= *m && !self.says(&g, *tt, at, x) {
                        return false;
                    }
                }
                true
            }
            // P|K ⇒ G: P says ⟨X⟩_{K⁻¹} implies G says X (and K must speak
            // for P).
            Subject::Bound(inner, key) => {
                if !self.key_speaks_for(key, local, at, None, inner) {
                    return false;
                }
                let Some(p) = self.run.party(inner) else {
                    return true;
                };
                for (tt, msg) in p.all_sends() {
                    if tt > local {
                        continue;
                    }
                    for sub in msg.submessages(&p.keyset_at(tt)) {
                        if let Message::Signed(x, k) = sub {
                            if k == key && !self.says(&g, tt, at, x) {
                                return false;
                            }
                        }
                    }
                }
                true
            }
            // P ⇒ G / CP ⇒ G: whatever the subject says, the group says.
            _ => {
                let Some(p) = self.run.party(subject) else {
                    return true;
                };
                for (tt, msg) in p.all_sends() {
                    if tt <= local && !self.says(&g, tt, at, msg) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Did `member` (a bound or plain subject) sign `x` at local time `t`?
    fn member_signed(&self, member: &Subject, t: Time, at: Time, x: &Message) -> bool {
        match member {
            Subject::Bound(inner, key) => {
                let Some(p) = self.run.party(inner) else {
                    return false;
                };
                p.sends_at(t).iter().any(|m| {
                    m.submessages(&p.keyset_at(t))
                        .iter()
                        .any(|sub| matches!(sub, Message::Signed(ix, k) if k == key && **ix == *x))
                })
            }
            other => self.says(other, t, at, x),
        }
    }

    /// `S controls_{t'} φ`: `S says φ` (as a message) implies `φ at_S t'`.
    fn controls(&self, s: &Subject, local: Time, at: Time, f: &Formula) -> bool {
        let as_msg = Message::formula(f.clone());
        if self.says(s, local, at, &as_msg) {
            self.holds_at(s, local, f)
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::RunBuilder;

    fn p(name: &str) -> Subject {
        Subject::principal(name)
    }

    fn k(name: &str) -> KeyId {
        KeyId::new(name)
    }

    /// A run where CA sends P a message signed with K_CA, honestly.
    fn honest_run() -> Model {
        let mut b = RunBuilder::new();
        b.party(p("CA"), 0).party(p("P"), 0);
        b.give_key(&p("CA"), k("K_CA"), Time(0));
        let signed = Message::data("cert").signed(k("K_CA"));
        b.deliver(&p("CA"), &p("P"), signed, Time(5), 1);
        Model::new(b.build())
    }

    #[test]
    fn received_and_says_basics() {
        let m = honest_run();
        let signed = Message::data("cert").signed(k("K_CA"));
        assert!(m.eval(Time(6), &Formula::received(p("P"), Time(6), signed.clone())));
        assert!(!m.eval(Time(6), &Formula::received(p("P"), Time(5), signed.clone())));
        assert!(m.eval(Time(5), &Formula::says(p("CA"), Time(5), signed.clone())));
        assert!(m.eval(Time(9), &Formula::said(p("CA"), Time(9), signed)));
        // A12: received ⟨X⟩ implies received X.
        assert!(m.eval(
            Time(6),
            &Formula::received(p("P"), Time(6), Message::data("cert"))
        ));
    }

    #[test]
    fn key_speaks_for_holds_in_honest_run() {
        let m = honest_run();
        let f = Formula::key_speaks_for(k("K_CA"), Time(6), p("CA"));
        assert!(m.eval(Time(6), &f));
    }

    #[test]
    fn key_speaks_for_fails_when_key_is_stolen() {
        // Mallory also signs with K_CA; the key no longer speaks for CA
        // alone.
        let mut b = RunBuilder::new();
        b.party(p("CA"), 0).party(p("P"), 0).party(p("Mallory"), 0);
        b.give_key(&p("CA"), k("K_CA"), Time(0));
        b.give_key(&p("Mallory"), k("K_CA"), Time(0));
        let forged = Message::data("forged").signed(k("K_CA"));
        b.deliver(&p("Mallory"), &p("P"), forged, Time(3), 1);
        let m = Model::new(b.build());
        let f = Formula::key_speaks_for(k("K_CA"), Time(6), p("CA"));
        assert!(!m.eval(Time(6), &f), "CA never said the forged message");
    }

    #[test]
    fn a10_schema_holds_in_model() {
        // K ⇒_{t,P} Q ∧ P received_t ⟨X⟩_{K⁻¹} ⊃ Q said_{t} X.
        let m = honest_run();
        let signed = Message::data("cert").signed(k("K_CA"));
        let antecedent = Formula::and(
            Formula::key_speaks_for(k("K_CA"), Time(6), p("CA")),
            Formula::received(p("P"), Time(6), signed),
        );
        let consequent = Formula::said(p("CA"), Time(6), Message::data("cert"));
        assert!(m.eval(Time(6), &Formula::implies(antecedent, consequent)));
    }

    #[test]
    fn member_of_plain_subject() {
        // U says "x" at t3 and the group (as a principal) also says "x" at
        // t3 → U ⇒ G holds; without the group echo it fails.
        let mut b = RunBuilder::new();
        b.party(p("U"), 0).party(p("G_write"), 0).party(p("P"), 0);
        b.deliver(&p("U"), &p("P"), Message::data("x"), Time(3), 1);
        b.deliver(&p("G_write"), &p("P"), Message::data("x"), Time(3), 1);
        let m = Model::new(b.build());
        assert!(m.eval(
            Time(5),
            &Formula::member_of(p("U"), Time(5), GroupId::new("G_write"))
        ));

        let mut b2 = RunBuilder::new();
        b2.party(p("U"), 0).party(p("G_write"), 0).party(p("P"), 0);
        b2.deliver(&p("U"), &p("P"), Message::data("x"), Time(3), 1);
        let m2 = Model::new(b2.build());
        assert!(!m2.eval(
            Time(5),
            &Formula::member_of(p("U"), Time(5), GroupId::new("G_write"))
        ));
    }

    #[test]
    fn threshold_membership_obligation() {
        // 2-of-3: two members sign the same X at t4; group must say X at t4.
        let members = vec![
            p("U1").bound(k("K1")),
            p("U2").bound(k("K2")),
            p("U3").bound(k("K3")),
        ];
        let cp = Subject::threshold(members, 2);
        let x = Message::data("write O");

        let mut b = RunBuilder::new();
        for (i, u) in ["U1", "U2", "U3"].iter().enumerate() {
            b.party(p(u), 0);
            b.give_key(&p(u), k(&format!("K{}", i + 1)), Time(0));
        }
        b.party(p("G_write"), 0).party(p("P"), 0);
        b.deliver(&p("U1"), &p("P"), x.clone().signed(k("K1")), Time(4), 1);
        b.deliver(&p("U2"), &p("P"), x.clone().signed(k("K2")), Time(4), 1);
        b.deliver(&p("G_write"), &p("P"), x.clone(), Time(4), 1);
        let m = Model::new(b.build());
        assert!(m.eval(
            Time(6),
            &Formula::member_of(cp.clone(), Time(6), GroupId::new("G_write"))
        ));

        // Without the group echo, membership is false (the threshold was
        // met but the group did not speak).
        let mut b2 = RunBuilder::new();
        for (i, u) in ["U1", "U2", "U3"].iter().enumerate() {
            b2.party(p(u), 0);
            b2.give_key(&p(u), k(&format!("K{}", i + 1)), Time(0));
        }
        b2.party(p("G_write"), 0).party(p("P"), 0);
        b2.deliver(&p("U1"), &p("P"), x.clone().signed(k("K1")), Time(4), 1);
        b2.deliver(&p("U2"), &p("P"), x.clone().signed(k("K2")), Time(4), 1);
        let m2 = Model::new(b2.build());
        assert!(!m2.eval(
            Time(6),
            &Formula::member_of(cp.clone(), Time(6), GroupId::new("G_write"))
        ));

        // One signature only: below threshold, no obligation, membership
        // holds vacuously.
        let mut b3 = RunBuilder::new();
        for (i, u) in ["U1", "U2", "U3"].iter().enumerate() {
            b3.party(p(u), 0);
            b3.give_key(&p(u), k(&format!("K{}", i + 1)), Time(0));
        }
        b3.party(p("G_write"), 0).party(p("P"), 0);
        b3.deliver(&p("U1"), &p("P"), x.clone().signed(k("K1")), Time(4), 1);
        let m3 = Model::new(b3.build());
        assert!(m3.eval(
            Time(6),
            &Formula::member_of(cp, Time(6), GroupId::new("G_write"))
        ));
    }

    #[test]
    fn fresh_until_said() {
        let m = honest_run();
        let msg = Message::data("cert");
        let fresh_before = Formula::Fresh {
            observer: p("P"),
            when: TimeRef::At(Time(4)),
            msg: msg.clone(),
        };
        let fresh_after = Formula::Fresh {
            observer: p("P"),
            when: TimeRef::At(Time(6)),
            msg,
        };
        assert!(m.eval(Time(4), &fresh_before));
        assert!(!m.eval(Time(6), &fresh_after));
    }

    #[test]
    fn controls_vacuous_and_active() {
        // S controls φ is vacuously true when S never says φ.
        let m = honest_run();
        let phi = Formula::Prop("policy".into());
        assert!(m.eval(Time(5), &Formula::controls(p("CA"), Time(5), phi.clone())));

        // When S says φ and φ is false, controls fails.
        let mut b = RunBuilder::new();
        b.party(p("S"), 0).party(p("P"), 0);
        b.deliver(&p("S"), &p("P"), Message::formula(phi.clone()), Time(3), 1);
        let m2 = Model::new(b.build());
        assert!(!m2.eval(Time(3), &Formula::controls(p("S"), Time(3), phi.clone())));
        // ... and succeeds when φ is true.
        let mut m3 = m2.clone();
        m3.assert_prop("policy");
        assert!(m3.eval(Time(3), &Formula::controls(p("S"), Time(3), phi)));
    }

    #[test]
    fn interval_time_refs() {
        let m = honest_run();
        let said = |tr: TimeRef| Formula::Said(p("CA"), tr, Message::data("cert"));
        // said holds from t5 onward.
        assert!(m.eval(Time(9), &said(TimeRef::Closed(Time(5), Time(9)))));
        assert!(!m.eval(Time(9), &said(TimeRef::Closed(Time(3), Time(9)))));
        assert!(m.eval(Time(9), &said(TimeRef::Within(Time(0), Time(9)))));
        assert!(!m.eval(Time(9), &said(TimeRef::Within(Time(0), Time(4)))));
    }

    #[test]
    fn clock_skew_respected_by_at() {
        let mut b = RunBuilder::new();
        b.party(p("A"), 100).party(p("B"), 0);
        b.deliver(&p("A"), &p("B"), Message::data("m"), Time(5), 0);
        let m = Model::new(b.build());
        // A's send happened at A-local t105.
        assert!(m.eval(
            Time(5),
            &Formula::says(p("A"), Time(105), Message::data("m"))
        ));
        assert!(!m.eval(Time(5), &Formula::says(p("A"), Time(5), Message::data("m"))));
        // φ at_A works in A's local time.
        let at = Formula::at(
            Formula::says(p("A"), Time(105), Message::data("m")),
            p("A"),
            Time(105),
        );
        assert!(m.eval(Time(5), &at));
    }

    #[test]
    fn formulas_about_the_future_are_false() {
        // Appendix C: "for nonnegated basic formulas, only formulas about
        // the past can be true" — t' must satisfy t' <= Time_P(r, t).
        let m = honest_run();
        let signed = Message::data("cert").signed(k("K_CA"));
        // At evaluation point t3, a statement subscripted t5 is not yet
        // true, even though the send does occur at t5 in the run.
        assert!(!m.eval(Time(3), &Formula::says(p("CA"), Time(5), signed.clone())));
        assert!(!m.eval(Time(3), &Formula::received(p("P"), Time(6), signed.clone())));
        assert!(!m.eval(Time(3), &Formula::said(p("CA"), Time(5), signed.clone())));
        // From t5 / t6 onward they become true and stay true (stability).
        assert!(m.eval(Time(5), &Formula::says(p("CA"), Time(5), signed.clone())));
        assert!(m.eval(Time(9), &Formula::received(p("P"), Time(6), signed)));
    }

    #[test]
    fn logical_connectives() {
        let mut m = honest_run();
        m.assert_prop("a");
        let a = Formula::Prop("a".into());
        let b = Formula::Prop("b".into());
        assert!(m.eval(Time(0), &a));
        assert!(!m.eval(Time(0), &b));
        assert!(m.eval(Time(0), &Formula::not(b.clone())));
        assert!(!m.eval(Time(0), &Formula::and(a.clone(), b.clone())));
        assert!(m.eval(Time(0), &Formula::implies(b, a)));
        assert!(m.eval(Time(0), &Formula::TimeLe(Time(1), Time(2))));
    }
}
