//! The model of computation and truth conditions (paper Appendix C), used
//! to reproduce the soundness theorem (Appendix D) as executable checks.
//!
//! A [`Run`] assigns each principal — and each *compound* principal — a
//! local state: a clock, a monotone key set, and a history of timestamped
//! `send`/`receive`/`generate` events. The [`Model`] evaluates formulas at
//! a point `(r, t)` against the truth conditions of Appendix C.
//!
//! # Fidelity notes
//!
//! * Quantifications in the truth conditions ("for all X", "for all
//!   principals Q") range over the *finite* message/party universe of the
//!   run, which is exactly what makes the conditions checkable.
//! * `P believes_t φ` is evaluated as `φ at_P t` on the given run. The
//!   paper's possible-worlds definition quantifies over all runs
//!   indistinguishable to `P`; evaluating on the actual run is the
//!   standard single-run strengthening — sound formulas remain true under
//!   it, which is what the soundness reproduction needs.
//! * Clock skew is modeled by a per-party offset (local = global + offset);
//!   the paper's `Start`/`End` window of a local time collapses to a point.

mod run;
mod truth;

pub use run::{Event, PartyState, Run, RunBuilder, TimedEvent};
pub use truth::Model;
