//! The derivation engine: initial beliefs + received messages + axioms ⟹
//! new beliefs, with proof trees.
//!
//! The engine plays the role of server `P` in §4.3: it holds the initial
//! beliefs (Statements 1–11 of Appendix E) as [`TrustAssumptions`], receives
//! idealized certificates, and derives beliefs by applying the axioms —
//! recording every step in a [`Derivation`].
//!
//! The paper's universally quantified initial beliefs are represented as
//! schemas that instantiate on use:
//!
//! * **Key ownership** (Statement 1): `K_AA ⇒ [t*, t] CP₃,₃` — registered
//!   via [`TrustAssumptions::own_key`].
//! * **Group-membership jurisdiction** (Statements 2–5): "AA controls
//!   (∀G′,CP′,…) CP′ ⇒ G′" — via [`TrustAssumptions::group_authority`].
//! * **Identity jurisdiction** (Statements 6–11): "CAᵢ controls (∀Q′,K,…)
//!   K ⇒ Q′" — via [`TrustAssumptions::identity_authority`].
//! * **Timestamp jurisdiction** (Statements 3/5/7/…): every registered
//!   authority is also trusted for the recency of its own timestamps after
//!   `t*`.
//! * **Revocation authority** (§4.3 "Reasoning about revocation"): an RA
//!   may speak revocations on behalf of an authority — via
//!   [`TrustAssumptions::revocation_authority`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::axioms::Axiom;
use crate::certs::CertView;
use crate::derivation::{Derivation, Rule};
use crate::memo::{DerivationMemo, MemoKey, MemoStats};
use crate::protocol::{AccessDecision, AccessRequest, Acl};
use crate::syntax::{
    Formula, FormulaId, GroupId, InternStats, Interner, KeyId, Message, PrincipalId, Subject, Time,
    TimeRef,
};
use crate::LogicError;

/// The verifier's initial beliefs, as assumption schemas.
#[derive(Debug, Clone, Default)]
pub struct TrustAssumptions {
    /// `t*`: the time from which timestamp jurisdiction holds.
    t_star: Time,
    /// Key ownership: `K ⇒ S` from `t_star` (a key may have several owners,
    /// e.g. `K_AA ⇒ AA` as an alias and `K_AA ⇒ {D1,D2,D3}₃,₃`).
    key_owners: HashMap<KeyId, Vec<Subject>>,
    /// Authorities with jurisdiction over group membership formulas.
    group_authorities: Vec<PrincipalId>,
    /// Authorities with jurisdiction over identity (key-ownership) formulas.
    identity_authorities: Vec<PrincipalId>,
    /// `(ra, on_behalf_of)`: RA may issue revocations for the authority.
    revocation_authorities: Vec<(PrincipalId, PrincipalId)>,
}

impl TrustAssumptions {
    /// Creates an empty assumption set with jurisdiction anchor `t_star`.
    #[must_use]
    pub fn new(t_star: Time) -> Self {
        TrustAssumptions {
            t_star,
            ..TrustAssumptions::default()
        }
    }

    /// Registers key ownership (Statement 1): `key ⇒ owner` from `t*`.
    pub fn own_key(&mut self, key: KeyId, owner: Subject) -> &mut Self {
        self.key_owners.entry(key).or_default().push(owner);
        self
    }

    /// Registers `authority` as having jurisdiction over group membership
    /// (Statements 2–5).
    pub fn group_authority(&mut self, authority: impl Into<PrincipalId>) -> &mut Self {
        self.group_authorities.push(authority.into());
        self
    }

    /// Registers `authority` (a CA) as having jurisdiction over identity
    /// certificates (Statements 6–11).
    pub fn identity_authority(&mut self, authority: impl Into<PrincipalId>) -> &mut Self {
        self.identity_authorities.push(authority.into());
        self
    }

    /// Registers `ra` as a revocation authority acting for `on_behalf_of`.
    pub fn revocation_authority(
        &mut self,
        ra: impl Into<PrincipalId>,
        on_behalf_of: impl Into<PrincipalId>,
    ) -> &mut Self {
        self.revocation_authorities
            .push((ra.into(), on_behalf_of.into()));
        self
    }

    /// The owners registered for `key`.
    #[must_use]
    pub fn owners_of(&self, key: &KeyId) -> &[Subject] {
        self.key_owners.get(key).map_or(&[], Vec::as_slice)
    }

    fn is_group_authority(&self, p: &PrincipalId) -> bool {
        self.group_authorities.contains(p)
            || self
                .revocation_authorities
                .iter()
                .any(|(ra, behalf)| ra == p && self.group_authorities.contains(behalf))
    }

    fn is_identity_authority(&self, p: &PrincipalId) -> bool {
        self.identity_authorities.contains(p)
            || self
                .revocation_authorities
                .iter()
                .any(|(ra, behalf)| ra == p && self.identity_authorities.contains(behalf))
    }
}

/// A belief held by the engine, with the proof that established it.
///
/// The derivation is shared ([`Arc`]): it is reused as a premise of every
/// proof built on this belief, so cloning a belief is cheap.
#[derive(Debug, Clone)]
pub struct Belief {
    /// The believed formula (the body, without the `P believes` wrapper).
    pub formula: Formula,
    /// The derivation that established it.
    pub derivation: Arc<Derivation>,
}

/// The derivation engine (server `P`'s reasoning state).
#[derive(Debug)]
pub struct Engine {
    observer: PrincipalId,
    now: Time,
    assumptions: TrustAssumptions,
    /// Positive key-ownership beliefs: `K ⇒ S` with validity window.
    key_beliefs: Vec<(KeyId, Subject, TimeRef, Belief)>,
    /// Dense-id index over `key_beliefs` by key, in admission order.
    /// Beliefs only accumulate, so the index is append-only.
    key_beliefs_by_key: HashMap<KeyId, Vec<u32>>,
    /// Positive membership beliefs: `S ⇒ G` with validity window.
    membership_beliefs: Vec<(Subject, GroupId, TimeRef, Belief)>,
    /// Dense-id index over `membership_beliefs` by group.
    memberships_by_group: HashMap<GroupId, Vec<u32>>,
    /// Signer-directed dense-id index: `(group, principal named in the
    /// member subject)` → positions in `membership_beliefs`. Lookup cost
    /// scales with one principal's memberships, never the group roster.
    memberships_by_member: HashMap<(GroupId, PrincipalId), Vec<u32>>,
    /// Revoked memberships: `(S, G, from)` — believe-until-revoked.
    revoked_memberships: Vec<(Subject, GroupId, Time)>,
    /// Dense-id index over `revoked_memberships` by group.
    membership_revocations_by_group: HashMap<GroupId, Vec<u32>>,
    /// Revoked keys: `(K, S, from)`.
    revoked_keys: Vec<(KeyId, Subject, Time)>,
    /// Dense-id index over `revoked_keys` by key.
    key_revocations_by_key: HashMap<KeyId, Vec<u32>>,
    /// Freshness acceptance window (ticks) for certificate timestamps.
    freshness_window: i64,
    /// Count of axiom applications performed (experiment E8 metric).
    axiom_count: usize,
    /// The hash-consing arena for formulas/messages/subjects.
    interner: Interner,
    /// Belief epoch: bumped whenever the belief state changes (new
    /// certificate body admitted, revocation/CRL entry, freshness-window
    /// move). Part of every memo key, and any bump clears the memo.
    epoch: u64,
    /// Monotone version of *all* decision-relevant engine state: bumped on
    /// every belief-epoch bump **and** on every actual clock move. The
    /// belief epoch deliberately ignores clock advances (memo keys already
    /// include the clock, so moving time must not flush the memo), but a
    /// published decision snapshot captures `now` and therefore goes stale
    /// when the clock moves. This is the one version number that all
    /// derived state (memo, verify cache, snapshot) can be validated
    /// against.
    state_version: u64,
    /// Interned bodies of every admitted certificate/revocation, so
    /// re-admitting the same certificate neither duplicates belief entries
    /// nor bumps the epoch.
    admitted_bodies: HashSet<FormulaId>,
    /// The derivation memo (None = off, the default).
    memo: Option<DerivationMemo>,
}

impl Engine {
    /// Creates an engine for observer `P` with the given assumptions,
    /// starting at time `t*`.
    #[must_use]
    pub fn new(observer: impl Into<PrincipalId>, assumptions: TrustAssumptions) -> Self {
        Engine {
            observer: observer.into(),
            now: assumptions.t_star,
            assumptions,
            key_beliefs: Vec::new(),
            key_beliefs_by_key: HashMap::new(),
            membership_beliefs: Vec::new(),
            memberships_by_group: HashMap::new(),
            memberships_by_member: HashMap::new(),
            revoked_memberships: Vec::new(),
            membership_revocations_by_group: HashMap::new(),
            revoked_keys: Vec::new(),
            key_revocations_by_key: HashMap::new(),
            freshness_window: i64::MAX,
            axiom_count: 0,
            interner: Interner::new(),
            epoch: 0,
            state_version: 0,
            admitted_bodies: HashSet::new(),
            memo: None,
        }
    }

    /// Sets the freshness acceptance window for certificate timestamps
    /// (how far in the past `t_CA` may lie; axiom A21 side condition).
    ///
    /// Changes admission outcomes, so it bumps the belief epoch (clearing
    /// any memoized decisions).
    pub fn set_freshness_window(&mut self, window: i64) {
        self.freshness_window = window;
        self.bump_epoch();
    }

    /// The current belief epoch (see the `epoch` field).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine's monotone state version: unlike [`Engine::epoch`], this
    /// also advances when the clock moves, so it versions *everything* a
    /// decision depends on. Two evaluations of the same request at the
    /// same `state_version` are byte-identical; any snapshot, cache, or
    /// memo entry tagged with a stale version must be re-derived.
    #[must_use]
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// Turns the derivation memo on or off. Off (the default) preserves the
    /// fully re-derived reference path; on, [`crate::protocol::authorize`]
    /// replays decisions for repeated requests at the same belief epoch.
    pub fn set_derivation_memo(&mut self, on: bool) {
        self.memo = on.then(DerivationMemo::new);
    }

    /// Bounds the derivation memo (`None` = unbounded). No-op when off.
    pub fn set_derivation_memo_capacity(&mut self, capacity: Option<usize>) {
        if let Some(memo) = &mut self.memo {
            memo.set_capacity(capacity);
        }
    }

    /// Memo hit/miss/eviction statistics, `None` when the memo is off.
    #[must_use]
    pub fn derivation_memo_stats(&self) -> Option<MemoStats> {
        self.memo.as_ref().map(DerivationMemo::stats)
    }

    /// Sizes of the hash-consing arena's tables.
    #[must_use]
    pub fn interner_stats(&self) -> InternStats {
        self.interner.stats()
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.state_version += 1;
        if let Some(memo) = &mut self.memo {
            memo.invalidate_all();
        }
    }

    /// Records an admitted certificate body. Returns `true` — bumping the
    /// belief epoch — only the first time this exact body is seen, so a
    /// re-admission (every repeated request re-presents its certificates)
    /// leaves the belief state and the epoch untouched.
    fn remember_admission(&mut self, body: &Formula) -> bool {
        let id = self.interner.intern_formula(body);
        let new = self.admitted_bodies.insert(id);
        if new {
            self.bump_epoch();
        }
        new
    }

    pub(crate) fn memo_enabled(&self) -> bool {
        self.memo.is_some()
    }

    pub(crate) fn memo_key(&mut self, request: &AccessRequest, acl: &Acl) -> MemoKey {
        MemoKey::build(&mut self.interner, self.epoch, self.now, request, acl)
    }

    pub(crate) fn memo_lookup(&mut self, key: &MemoKey) -> Option<AccessDecision> {
        self.memo.as_mut().and_then(|memo| memo.lookup(key))
    }

    pub(crate) fn memo_store(
        &mut self,
        request: &AccessRequest,
        acl: &Acl,
        decision: AccessDecision,
    ) {
        if self.memo.is_none() {
            return;
        }
        // Key under the *current* (post-run) epoch: admitting this
        // request's certificates may have bumped it mid-run.
        let key = MemoKey::build(&mut self.interner, self.epoch, self.now, request, acl);
        if let Some(memo) = &mut self.memo {
            memo.store(key, decision);
        }
    }

    /// The observer's current local time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances the observer's clock.
    ///
    /// # Errors
    ///
    /// [`LogicError::ClockRegression`] when `to` is earlier than the
    /// current time — runs are monotone (Appendix C), and a server
    /// recovering from a durable log must be able to reject a stale clock
    /// without tearing down the process.
    pub fn advance_clock(&mut self, to: Time) -> Result<(), LogicError> {
        if to < self.now {
            return Err(LogicError::ClockRegression(format!(
                "cannot move clock from {:?} back to {to:?}",
                self.now
            )));
        }
        if to > self.now {
            // The clock is part of every decision's inputs, so an actual
            // move retires published snapshots — without clearing the memo
            // (memo keys carry the clock themselves).
            self.state_version += 1;
        }
        self.now = to;
        Ok(())
    }

    /// Discards every piece of derived (non-belief) state: bumps the
    /// belief epoch, which also clears the derivation memo.
    ///
    /// Belief replay after a crash reconstructs admitted formulas exactly,
    /// but memoized decisions and epoch-tagged caches from the pre-crash
    /// process must not survive into the recovered one; recovery calls
    /// this once replay finishes so every later decision is re-derived
    /// against the rebuilt belief set.
    pub fn invalidate_derived_state(&mut self) {
        self.bump_epoch();
    }

    /// Total axiom applications so far.
    #[must_use]
    pub fn axiom_applications(&self) -> usize {
        self.axiom_count
    }

    /// The observer as a subject.
    #[must_use]
    pub fn observer(&self) -> Subject {
        Subject::Principal(self.observer.clone())
    }

    fn count_axiom(&mut self) {
        self.axiom_count += 1;
    }

    /// Admits an idealized certificate: verifies originator (A10),
    /// timestamp jurisdiction (A22/A23 + A9), freshness (A21 side
    /// condition), and content jurisdiction (A22–A33), then records the
    /// resulting belief (or revocation).
    ///
    /// Mirrors the paper's Appendix E statements 12–16 (identity
    /// certificates) and 18–22 (threshold attribute certificates).
    ///
    /// # Errors
    ///
    /// * [`LogicError::MalformedMessage`] if the message is not an
    ///   idealized certificate.
    /// * [`LogicError::NoJurisdiction`] if no trust assumption covers the
    ///   signing key or the issuer.
    /// * [`LogicError::Stale`] if the timestamp is outside the acceptance
    ///   window.
    pub fn admit_certificate(&mut self, msg: &Message) -> Result<Arc<Derivation>, LogicError> {
        let view = CertView::parse(msg)
            .ok_or_else(|| LogicError::MalformedMessage("not an idealized certificate".into()))?;
        match view {
            CertView::Identity {
                issuer,
                signing_key,
                issued_at,
                subject_key,
                subject,
                when,
                negated,
            } => self.admit_identity(
                msg,
                &issuer,
                &signing_key,
                issued_at,
                subject_key,
                subject,
                when,
                negated,
            ),
            CertView::Attribute {
                issuer,
                signing_key,
                issued_at,
                subject,
                group,
                when,
                negated,
            } => self.admit_attribute(
                msg,
                &issuer,
                &signing_key,
                issued_at,
                subject,
                group,
                when,
                negated,
            ),
        }
    }

    /// Shared front half of certificate admission: received message, A10
    /// originator identification, A21 freshness, and timestamp jurisdiction
    /// (A22/A23 with A9), concluding the formula `issuer says body`.
    fn authenticate_statement(
        &mut self,
        msg: &Message,
        issuer: &PrincipalId,
        signing_key: &KeyId,
        issued_at: Time,
        label: &str,
    ) -> Result<(Formula, Arc<Derivation>), LogicError> {
        // Premise: P received the signed message now.
        let received = Formula::received(self.observer(), self.now, msg.clone());
        let received_node = Derivation::leaf(received, Rule::Received(label.to_string())).share();

        // Statement-1-style premise: who owns the signing key?
        let owners = self.assumptions.owners_of(signing_key);
        if owners.is_empty() {
            return Err(LogicError::NoJurisdiction(format!(
                "no ownership assumption for signing key {signing_key}"
            )));
        }
        // Prefer a compound owner (the true signers); fall back to any.
        let owner = owners
            .iter()
            .find(|s| matches!(s, Subject::Compound(_) | Subject::Threshold { .. }))
            .unwrap_or(&owners[0])
            .clone();
        let ownership = Formula::key_speaks_for(
            signing_key.clone(),
            TimeRef::Closed(self.assumptions.t_star, Time::INFINITY),
            owner.clone(),
        );
        let ownership_node = Derivation::leaf(
            ownership,
            Rule::InitialBelief(format!("key ownership of {signing_key}")),
        )
        .share();

        // A10: originator identification.
        let payload = msg.as_signed().expect("certificate is signed").0.clone();
        let said = Formula::said(owner.clone(), self.now, payload);
        self.count_axiom();
        let said_node =
            Derivation::by_axiom(said, Axiom::A10, vec![ownership_node, received_node]).share();

        // A21 side condition: the timestamp must be recent.
        if issued_at > self.now {
            return Err(LogicError::Stale(format!(
                "timestamp {issued_at} is in the observer's future (now {})",
                self.now
            )));
        }
        if self.now.0.saturating_sub(issued_at.0) > self.freshness_window {
            return Err(LogicError::Stale(format!(
                "timestamp {issued_at} outside freshness window at {}",
                self.now
            )));
        }
        let fresh = Formula::Fresh {
            observer: self.observer(),
            when: TimeRef::At(self.now),
            msg: msg.clone(),
        };
        let fresh_node = Derivation::leaf(
            fresh,
            Rule::SideCondition(format!("freshness of timestamp {issued_at} (A21)")),
        )
        .share();

        // Timestamp jurisdiction: the issuer controls the recency of its own
        // statements after t*. A23 when the issuer's key is held by a
        // compound (multi-principal jurisdiction), A22 otherwise.
        let body_says = {
            // Reconstruct `issuer says_{issued_at} body` from the payload.
            let payload_formula = msg
                .as_signed()
                .and_then(|(p, _)| p.as_formula())
                .cloned()
                .ok_or_else(|| LogicError::MalformedMessage("payload is not a formula".into()))?;
            payload_formula
        };
        let ts_jurisdiction = Formula::controls(
            Subject::Principal(issuer.clone()),
            TimeRef::Closed(self.assumptions.t_star, self.now),
            body_says.clone(),
        );
        let ts_node = Derivation::leaf(
            ts_jurisdiction,
            Rule::InitialBelief(format!("timestamp jurisdiction of {issuer}")),
        )
        .share();
        let jurisdiction_axiom =
            if matches!(owner, Subject::Compound(_) | Subject::Threshold { .. }) {
                Axiom::A23
            } else {
                Axiom::A22
            };
        self.count_axiom();
        let at_says = Formula::at(
            body_says.clone(),
            self.observer(),
            TimeRef::Within(self.assumptions.t_star, self.now),
        );
        let at_node = Derivation::by_axiom(
            at_says,
            jurisdiction_axiom,
            vec![said_node, ts_node, fresh_node],
        )
        .share();
        // A9 reduction removes the at-wrapper.
        self.count_axiom();
        let says_node = Derivation::by_axiom(body_says.clone(), Axiom::A9, vec![at_node]).share();
        Ok((body_says, says_node))
    }

    #[allow(clippy::too_many_arguments)]
    fn admit_identity(
        &mut self,
        msg: &Message,
        issuer: &PrincipalId,
        signing_key: &KeyId,
        issued_at: Time,
        subject_key: KeyId,
        subject: Subject,
        when: TimeRef,
        negated: bool,
    ) -> Result<Arc<Derivation>, LogicError> {
        if !self.assumptions.is_identity_authority(issuer) {
            return Err(LogicError::NoJurisdiction(format!(
                "{issuer} has no identity jurisdiction"
            )));
        }
        let label = if negated {
            "identity revocation"
        } else {
            "identity certificate"
        };
        let (_says, says_node) =
            self.authenticate_statement(msg, issuer, signing_key, issued_at, label)?;

        // Content jurisdiction (Statements 6/8/10 → 15 → 16):
        let body =
            Formula::key_speaks_for_at(subject_key.clone(), when, issuer.clone(), subject.clone());
        let body = if negated { Formula::not(body) } else { body };
        let content_jurisdiction = Formula::controls(
            Subject::Principal(issuer.clone()),
            TimeRef::At(issued_at),
            body.clone(),
        );
        let cj_node = Derivation::leaf(
            content_jurisdiction,
            Rule::InitialBelief(format!("identity jurisdiction of {issuer}")),
        )
        .share();
        self.count_axiom(); // A22
        self.count_axiom(); // A9
        let belief_node =
            Derivation::by_axiom(body.clone(), Axiom::A22, vec![says_node, cj_node]).share();
        let final_node = Derivation::by_axiom(body.clone(), Axiom::A9, vec![belief_node]).share();

        // Dedup: re-admitting the same certificate re-derives the same proof
        // (identical axiom counts) but only the first admission records the
        // belief/revocation entry and bumps the epoch.
        if negated {
            let (from, _) = when.bounds();
            if self.remember_admission(&body) {
                let id = u32::try_from(self.revoked_keys.len()).expect("revocation id fits u32");
                self.key_revocations_by_key
                    .entry(subject_key.clone())
                    .or_default()
                    .push(id);
                self.revoked_keys.push((subject_key, subject, from));
            }
        } else if self.remember_admission(&body) {
            let id = u32::try_from(self.key_beliefs.len()).expect("belief id fits u32");
            self.key_beliefs_by_key
                .entry(subject_key.clone())
                .or_default()
                .push(id);
            self.key_beliefs.push((
                subject_key,
                subject,
                when,
                Belief {
                    formula: body,
                    derivation: Arc::clone(&final_node),
                },
            ));
        }
        Ok(final_node)
    }

    #[allow(clippy::too_many_arguments)]
    fn admit_attribute(
        &mut self,
        msg: &Message,
        issuer: &PrincipalId,
        signing_key: &KeyId,
        issued_at: Time,
        subject: Subject,
        group: GroupId,
        when: TimeRef,
        negated: bool,
    ) -> Result<Arc<Derivation>, LogicError> {
        if !self.assumptions.is_group_authority(issuer) {
            return Err(LogicError::NoJurisdiction(format!(
                "{issuer} has no group-membership jurisdiction"
            )));
        }
        let label = if negated {
            "attribute revocation"
        } else {
            "attribute certificate"
        };
        let (_says, says_node) =
            self.authenticate_statement(msg, issuer, signing_key, issued_at, label)?;

        let body = Formula::member_of_at(subject.clone(), when, issuer.clone(), group.clone());
        let body = if negated { Formula::not(body) } else { body };
        let content_jurisdiction = Formula::controls(
            Subject::Principal(issuer.clone()),
            TimeRef::At(issued_at),
            body.clone(),
        );
        let cj_node = Derivation::leaf(
            content_jurisdiction,
            Rule::InitialBelief(format!("group-membership jurisdiction of {issuer}")),
        )
        .share();
        // Group-membership jurisdiction axiom, selected by subject shape
        // (A24–A28; the paper's walkthrough cites A25 for its CP′₂,₃
        // example, we label with the exact schema A28 for thresholds).
        let axiom = match &subject {
            Subject::Principal(_) => Axiom::A24,
            Subject::Compound(_) => Axiom::A25,
            Subject::Bound(inner, _) => match **inner {
                Subject::Compound(_) => Axiom::A27,
                _ => Axiom::A26,
            },
            Subject::Threshold { .. } => Axiom::A28,
        };
        self.count_axiom(); // membership jurisdiction
        self.count_axiom(); // A9
        let belief_node =
            Derivation::by_axiom(body.clone(), axiom, vec![says_node, cj_node]).share();
        let final_node = Derivation::by_axiom(body.clone(), Axiom::A9, vec![belief_node]).share();

        if negated {
            let (from, _) = when.bounds();
            if self.remember_admission(&body) {
                let id =
                    u32::try_from(self.revoked_memberships.len()).expect("revocation id fits u32");
                self.membership_revocations_by_group
                    .entry(group.clone())
                    .or_default()
                    .push(id);
                self.revoked_memberships.push((subject, group, from));
            }
        } else if self.remember_admission(&body) {
            let id = u32::try_from(self.membership_beliefs.len()).expect("belief id fits u32");
            self.memberships_by_group
                .entry(group.clone())
                .or_default()
                .push(id);
            for principal in named_principals(&subject) {
                self.memberships_by_member
                    .entry((group.clone(), principal))
                    .or_default()
                    .push(id);
            }
            self.membership_beliefs.push((
                subject,
                group,
                when,
                Belief {
                    formula: body,
                    derivation: Arc::clone(&final_node),
                },
            ));
        }
        Ok(final_node)
    }

    /// Looks up a believed key ownership `K ⇒ S` valid at `t` (and not
    /// revoked at or before `t` — believe-until-revoked).
    #[must_use]
    pub fn key_belief_at(&self, key: &KeyId, t: Time) -> Option<(&Subject, &Belief)> {
        let revoked_from = self
            .key_revocations_by_key
            .get(key)
            .into_iter()
            .flatten()
            .map(|&id| self.revoked_keys[id as usize].2)
            .min();
        if revoked_from.is_some_and(|from| t >= from) {
            return None;
        }
        self.key_beliefs_by_key
            .get(key)?
            .iter()
            .map(|&id| &self.key_beliefs[id as usize])
            .find(|(_, _, when, _)| when.covers(t))
            .map(|(_, s, _, b)| (s, b))
    }

    /// Looks up a believed membership `S ⇒ G` valid at `t` (and not
    /// revoked — believe-until-revoked, §4.3).
    #[must_use]
    pub fn membership_belief_at(&self, group: &GroupId, t: Time) -> Option<(&Subject, &Belief)> {
        self.memberships_by_group
            .get(group)?
            .iter()
            .map(|&id| &self.membership_beliefs[id as usize])
            .find(|(subject, g, when, _)| {
                when.covers(t) && !self.is_membership_revoked(subject, g, t)
            })
            .map(|(s, _, _, b)| (s, b))
    }

    /// Every membership belief `S ⇒ G` whose subject *names* `member` —
    /// single, key-bound, compound, or threshold — with its validity
    /// window. Served from the signer-directed dense-id index, so the
    /// cost scales with that principal's own memberships rather than the
    /// group's roster (the lookup the million-principal path depends on).
    #[must_use]
    pub fn memberships_naming(
        &self,
        group: &GroupId,
        member: &PrincipalId,
    ) -> Vec<(&Subject, &TimeRef, &Belief)> {
        self.memberships_by_member
            .get(&(group.clone(), member.clone()))
            .into_iter()
            .flatten()
            .map(|&id| {
                let (subject, _, when, belief) = &self.membership_beliefs[id as usize];
                (subject, when, belief)
            })
            .collect()
    }

    /// `true` if `S ⇒ G` has been revoked at or before `t`.
    ///
    /// Revocation subjects match modulo the degenerate 1-of-1 threshold
    /// wrapper: CRL entries arrive in threshold form on the wire even
    /// when the grant they revoke was a single-subject certificate
    /// (`P|K ⇒ G`), and `{P|K}_{1,1}` names exactly the same signer.
    #[must_use]
    pub fn is_membership_revoked(&self, subject: &Subject, group: &GroupId, t: Time) -> bool {
        self.membership_revocations_by_group
            .get(group)
            .is_some_and(|ids| {
                ids.iter().any(|&id| {
                    let (s, _, from) = &self.revoked_memberships[id as usize];
                    t >= *from && subjects_equivalent(s, subject)
                })
            })
    }

    /// Applies A38 to conclude `G says_t X` from a believed threshold
    /// membership and `m` signer statements.
    ///
    /// Each signer statement is `(principal, key, says-node)` where the
    /// says-node concludes `Pᵢ says_t ⟨X⟩_{Kᵢ⁻¹}`. The engine checks that
    /// the signers are distinct members of the threshold subject with
    /// matching bound keys and that at least `m` of them signed.
    ///
    /// # Errors
    ///
    /// [`LogicError::NotDerivable`] if signers don't satisfy the threshold
    /// structure.
    pub fn apply_a38(
        &mut self,
        membership: &Belief,
        subject: &Subject,
        group: &GroupId,
        t: Time,
        payload: &Message,
        signers: Vec<(PrincipalId, KeyId, Arc<Derivation>)>,
    ) -> Result<Arc<Derivation>, LogicError> {
        let Subject::Threshold { members, m } = subject else {
            return Err(LogicError::NotDerivable(
                "A38 needs a threshold compound subject".into(),
            ));
        };
        if signers.len() < *m {
            return Err(LogicError::NotDerivable(format!(
                "threshold not met: need {m} signers, got {}",
                signers.len()
            )));
        }
        // Every signer must be a distinct member with its bound key.
        let mut matched: Vec<&Subject> = Vec::new();
        for (principal, key, _) in &signers {
            let member = members.iter().find(|member| {
                member.principal_id() == Some(principal)
                    && member.binding_key().is_none_or(|k| k == key)
            });
            let Some(member) = member else {
                return Err(LogicError::NotDerivable(format!(
                    "{principal} (key {key}) is not a member of the threshold subject"
                )));
            };
            if matched.contains(&member) {
                return Err(LogicError::NotDerivable(format!(
                    "duplicate signer {principal}"
                )));
            }
            matched.push(member);
        }
        let mut premises = vec![Arc::clone(&membership.derivation)];
        premises.extend(signers.into_iter().map(|(_, _, d)| d));
        let conclusion = Formula::group_says(group.clone(), t, payload.clone());
        self.count_axiom();
        Ok(Derivation::by_axiom(conclusion, Axiom::A38, premises).share())
    }

    /// Applies A36/A37 to conclude `G says_t X` from a believed compound
    /// membership (`CP ⇒ G` or `CP|K ⇒ G`) and a statement jointly signed
    /// under the compound's shared key.
    ///
    /// This is the paper's "alternate mechanism" (§2.2): "attribute
    /// certificates issued to a group of users that own a shared public key
    /// can also be devised. Such alternate mechanisms … can be supported by
    /// our logic."
    ///
    /// # Errors
    ///
    /// [`LogicError::NotDerivable`] if the subject/key shapes don't match.
    #[allow(clippy::too_many_arguments)] // mirrors the axiom's premise list
    pub fn apply_a36_a37(
        &mut self,
        membership: &Belief,
        subject: &Subject,
        group: &GroupId,
        t: Time,
        payload: &Message,
        joint_statement: &Arc<Derivation>,
        statement_key: Option<&KeyId>,
    ) -> Result<Arc<Derivation>, LogicError> {
        let axiom = match subject {
            Subject::Compound(_) => Axiom::A36,
            Subject::Bound(inner, bound_key) if matches!(**inner, Subject::Compound(_)) => {
                // A37 requires the signature to be under the bound key.
                if statement_key != Some(bound_key) {
                    return Err(LogicError::NotDerivable(format!(
                        "membership is selectively bound to {bound_key}, statement signed with {}",
                        statement_key.map_or("nothing".to_string(), ToString::to_string)
                    )));
                }
                Axiom::A37
            }
            _ => {
                return Err(LogicError::NotDerivable(
                    "A36/A37 need a compound (optionally key-bound) subject".into(),
                ))
            }
        };
        let conclusion = Formula::group_says(group.clone(), t, payload.clone());
        self.count_axiom();
        Ok(Derivation::by_axiom(
            conclusion,
            axiom,
            vec![
                Arc::clone(&membership.derivation),
                Arc::clone(joint_statement),
            ],
        )
        .share())
    }

    /// Authenticates a statement *jointly signed under a shared key* whose
    /// ownership is a trust assumption (e.g. a user group's shared key
    /// registered alongside the AA's). Concludes `CP says_t ⟨X⟩_{K⁻¹}`.
    ///
    /// # Errors
    ///
    /// [`LogicError::MalformedMessage`] / [`LogicError::NoJurisdiction`] as
    /// for [`Engine::authenticate_signed_statement`].
    pub fn authenticate_joint_statement(
        &mut self,
        signed: &Message,
        t: Time,
    ) -> Result<(Subject, KeyId, Arc<Derivation>), LogicError> {
        let (_payload, key) = signed
            .as_signed()
            .ok_or_else(|| LogicError::MalformedMessage("statement not signed".into()))?;
        let key = key.clone();
        let owners = self.assumptions.owners_of(&key);
        let owner = owners
            .iter()
            .find(|s| matches!(s, Subject::Compound(_) | Subject::Threshold { .. }))
            .or_else(|| owners.first())
            .cloned()
            .ok_or_else(|| {
                LogicError::NoJurisdiction(format!("no ownership assumption for {key}"))
            })?;
        let ownership = Formula::key_speaks_for(
            key.clone(),
            TimeRef::Closed(self.assumptions.t_star, Time::INFINITY),
            owner.clone(),
        );
        let ownership_node = Derivation::leaf(
            ownership,
            Rule::InitialBelief(format!("key ownership of {key}")),
        )
        .share();
        let received = Formula::received(self.observer(), self.now, signed.clone());
        let received_node =
            Derivation::leaf(received, Rule::Received("joint signed request".into())).share();
        let says = Formula::says(owner.clone(), t, signed.clone());
        self.count_axiom();
        let node =
            Derivation::by_axiom(says, Axiom::A10, vec![ownership_node, received_node]).share();
        Ok((owner, key, node))
    }

    /// Authenticates one signed request component (Message 1-4): applies
    /// A10 with the *believed* signer key from step 1, concluding
    /// `P believes (Pᵢ says_{tᵢ} ⟨X⟩_{Kᵢ⁻¹})` (paper statements 23–24).
    ///
    /// # Errors
    ///
    /// * [`LogicError::MalformedMessage`] if `signed` is not a signature.
    /// * [`LogicError::NoJurisdiction`] if no valid key belief covers the
    ///   signing key at `t`.
    pub fn authenticate_signed_statement(
        &mut self,
        signed: &Message,
        t: Time,
    ) -> Result<(PrincipalId, KeyId, Arc<Derivation>), LogicError> {
        let (_payload, key) = signed
            .as_signed()
            .ok_or_else(|| LogicError::MalformedMessage("request component not signed".into()))?;
        let key = key.clone();
        let (owner, key_belief) = self
            .key_belief_at(&key, t)
            .ok_or_else(|| {
                LogicError::NoJurisdiction(format!(
                    "no valid key belief for {key} at {t} (missing, expired, or revoked)"
                ))
            })
            .map(|(s, b)| (s.clone(), b.clone()))?;
        let principal = owner.principal_id().cloned().ok_or_else(|| {
            LogicError::NoJurisdiction(format!("key {key} is not bound to a single principal"))
        })?;
        let received = Formula::received(self.observer(), self.now, signed.clone());
        let received_node =
            Derivation::leaf(received, Rule::Received("signed request".into())).share();
        let says = Formula::says(owner.clone(), t, signed.clone());
        self.count_axiom();
        let node =
            Derivation::by_axiom(says, Axiom::A10, vec![key_belief.derivation, received_node])
                .share();
        Ok((principal, key, node))
    }
}

/// Every principal name appearing anywhere in a subject — the keys the
/// signer-directed membership index files the subject under.
fn named_principals(subject: &Subject) -> Vec<PrincipalId> {
    fn walk(subject: &Subject, out: &mut Vec<PrincipalId>) {
        match subject {
            Subject::Principal(p) => {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
            Subject::Compound(members) | Subject::Threshold { members, .. } => {
                for m in members {
                    walk(m, out);
                }
            }
            Subject::Bound(inner, _) => walk(inner, out),
        }
    }
    let mut out = Vec::new();
    walk(subject, &mut out);
    out
}

/// Structural equality modulo degenerate 1-of-1 thresholds: `{S}_{1,1}`
/// requires exactly the signature `S` requires, so a revocation naming
/// either form strikes the other.
fn subjects_equivalent(a: &Subject, b: &Subject) -> bool {
    if a == b {
        return true;
    }
    match (a, b) {
        (Subject::Threshold { members, m: 1 }, other)
        | (other, Subject::Threshold { members, m: 1 })
            if members.len() == 1 =>
        {
            subjects_equivalent(&members[0], other)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::{Certs, Validity};

    fn ca_key() -> KeyId {
        KeyId::new("K_CA1")
    }

    fn aa_key() -> KeyId {
        KeyId::new("K_AA")
    }

    fn domains_cp() -> Subject {
        Subject::threshold(
            vec![
                Subject::principal("D1"),
                Subject::principal("D2"),
                Subject::principal("D3"),
            ],
            3,
        )
    }

    fn assumptions() -> TrustAssumptions {
        let mut a = TrustAssumptions::new(Time(0));
        a.own_key(ca_key(), Subject::principal("CA1"));
        a.own_key(aa_key(), domains_cp());
        a.own_key(aa_key(), Subject::principal("AA"));
        a.identity_authority("CA1");
        a.group_authority("AA");
        a.revocation_authority("RA", "AA");
        a
    }

    fn engine_at(t: i64) -> Engine {
        let mut e = Engine::new("P", assumptions());
        e.advance_clock(Time(t)).expect("clock");
        e
    }

    fn id_cert() -> Message {
        Certs::identity(
            "CA1",
            ca_key(),
            KeyId::new("K_u1"),
            "User_D1",
            Time(5),
            Validity::new(Time(0), Time(100)),
        )
    }

    fn users_cp() -> Subject {
        Subject::threshold(
            vec![
                Subject::principal("User_D1").bound(KeyId::new("K_u1")),
                Subject::principal("User_D2").bound(KeyId::new("K_u2")),
                Subject::principal("User_D3").bound(KeyId::new("K_u3")),
            ],
            2,
        )
    }

    fn threshold_ac() -> Message {
        Certs::threshold_attribute(
            "AA",
            aa_key(),
            users_cp(),
            GroupId::new("G_write"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        )
    }

    #[test]
    fn identity_certificate_yields_key_belief() {
        let mut e = engine_at(10);
        let d = e.admit_certificate(&id_cert()).expect("admit");
        assert!(d.axioms_used().contains(&Axiom::A10));
        assert!(d.axioms_used().contains(&Axiom::A22));
        assert!(d.axioms_used().contains(&Axiom::A9));
        let (owner, _) = e
            .key_belief_at(&KeyId::new("K_u1"), Time(10))
            .expect("belief");
        assert_eq!(owner, &Subject::principal("User_D1"));
        // Outside the validity window the belief does not apply.
        assert!(e.key_belief_at(&KeyId::new("K_u1"), Time(101)).is_none());
    }

    #[test]
    fn threshold_ac_yields_membership_belief_via_a23_a28() {
        let mut e = engine_at(10);
        let d = e.admit_certificate(&threshold_ac()).expect("admit");
        let used = d.axioms_used();
        assert!(used.contains(&Axiom::A23), "multi-principal jurisdiction");
        assert!(
            used.contains(&Axiom::A28),
            "threshold membership jurisdiction"
        );
        let (subject, _) = e
            .membership_belief_at(&GroupId::new("G_write"), Time(10))
            .expect("belief");
        assert_eq!(subject.required_signers(), 2);
    }

    #[test]
    fn unknown_signing_key_rejected() {
        let mut e = engine_at(10);
        let bogus = Certs::identity(
            "CA1",
            KeyId::new("K_unknown"),
            KeyId::new("K_u1"),
            "User_D1",
            Time(5),
            Validity::new(Time(0), Time(100)),
        );
        assert!(matches!(
            e.admit_certificate(&bogus),
            Err(LogicError::NoJurisdiction(_))
        ));
    }

    #[test]
    fn issuer_without_jurisdiction_rejected() {
        let mut e = engine_at(10);
        // CA1's key signing a *group membership* statement: CA1 has no
        // group jurisdiction.
        let bad = Certs::attribute(
            "CA1",
            ca_key(),
            Subject::principal("User_D1").bound(KeyId::new("K_u1")),
            GroupId::new("G_write"),
            Time(5),
            Validity::new(Time(0), Time(100)),
        );
        assert!(matches!(
            e.admit_certificate(&bad),
            Err(LogicError::NoJurisdiction(_))
        ));
    }

    #[test]
    fn future_timestamp_rejected() {
        let mut e = engine_at(3);
        assert!(matches!(
            e.admit_certificate(&id_cert()), // issued at t5 > now t3
            Err(LogicError::Stale(_))
        ));
    }

    #[test]
    fn freshness_window_enforced() {
        let mut e = engine_at(100);
        e.set_freshness_window(10);
        assert!(matches!(
            e.admit_certificate(&id_cert()), // issued t5, now t100, window 10
            Err(LogicError::Stale(_))
        ));
    }

    #[test]
    fn revocation_from_ra_blocks_membership() {
        let mut e = engine_at(10);
        e.admit_certificate(&threshold_ac()).expect("admit");
        assert!(e
            .membership_belief_at(&GroupId::new("G_write"), Time(10))
            .is_some());
        let rev = Certs::attribute_revocation(
            "RA",
            KeyId::new("K_RA"),
            users_cp(),
            GroupId::new("G_write"),
            Time(12),
            Time(12),
        );
        // RA's key must be known.
        let mut a2 = assumptions();
        a2.own_key(KeyId::new("K_RA"), Subject::principal("RA"));
        let mut e = Engine::new("P", a2);
        e.advance_clock(Time(10)).expect("clock");
        e.admit_certificate(&threshold_ac()).expect("admit");
        e.advance_clock(Time(12)).expect("clock");
        e.admit_certificate(&rev).expect("revocation");
        // Believe-until-revoked: valid before t12, gone from t12 on.
        assert!(e
            .membership_belief_at(&GroupId::new("G_write"), Time(11))
            .is_some());
        assert!(e
            .membership_belief_at(&GroupId::new("G_write"), Time(12))
            .is_none());
        assert!(e
            .membership_belief_at(&GroupId::new("G_write"), Time(50))
            .is_none());
    }

    #[test]
    fn singleton_threshold_revocation_strikes_bound_membership() {
        // CRL entries arrive as {P|K}_{1,1} on the wire even when the
        // grant was a single-subject certificate P|K ⇒ G; the revocation
        // must strike the bound form all the same.
        let mut a = assumptions();
        a.own_key(KeyId::new("K_RA"), Subject::principal("RA"));
        let mut e = Engine::new("P", a);
        e.advance_clock(Time(10)).expect("clock");
        let bound = Subject::principal("User_D1").bound(KeyId::new("K_u1"));
        let ac = Certs::attribute(
            "AA",
            aa_key(),
            bound.clone(),
            GroupId::new("G_read"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        );
        e.admit_certificate(&ac).expect("admit");
        assert!(e
            .membership_belief_at(&GroupId::new("G_read"), Time(10))
            .is_some());
        e.advance_clock(Time(12)).expect("clock");
        let rev = Certs::attribute_revocation(
            "RA",
            KeyId::new("K_RA"),
            Subject::threshold(vec![bound.clone()], 1),
            GroupId::new("G_read"),
            Time(12),
            Time(12),
        );
        e.admit_certificate(&rev).expect("revocation");
        assert!(e.is_membership_revoked(&bound, &GroupId::new("G_read"), Time(12)));
        assert!(e
            .membership_belief_at(&GroupId::new("G_read"), Time(11))
            .is_some());
        assert!(e
            .membership_belief_at(&GroupId::new("G_read"), Time(12))
            .is_none());
    }

    #[test]
    fn identity_revocation_blocks_key_belief() {
        let mut a = assumptions();
        a.revocation_authority("CA1", "CA1"); // CA revokes its own certs
        let mut e = Engine::new("P", a);
        e.advance_clock(Time(10)).expect("clock");
        e.admit_certificate(&id_cert()).expect("admit");
        let rev = Certs::identity_revocation(
            "CA1",
            ca_key(),
            KeyId::new("K_u1"),
            "User_D1",
            Time(15),
            Time(15),
        );
        e.advance_clock(Time(15)).expect("clock");
        e.admit_certificate(&rev).expect("revocation");
        assert!(e.key_belief_at(&KeyId::new("K_u1"), Time(14)).is_some());
        assert!(e.key_belief_at(&KeyId::new("K_u1"), Time(15)).is_none());
    }

    #[test]
    fn a38_requires_threshold_and_distinct_members() {
        let mut e = engine_at(10);
        e.admit_certificate(&id_cert()).expect("admit id");
        e.admit_certificate(&threshold_ac()).expect("admit ac");
        let group = GroupId::new("G_write");
        let (subject, belief) = e
            .membership_belief_at(&group, Time(10))
            .map(|(s, b)| (s.clone(), b.clone()))
            .expect("membership");
        let payload = Message::data("write O");

        // One signer < threshold 2.
        let d1 = Derivation::leaf(
            Formula::says(Subject::principal("User_D1"), Time(10), payload.clone()),
            Rule::Received("sig".into()),
        )
        .share();
        let err = e.apply_a38(
            &belief,
            &subject,
            &group,
            Time(10),
            &payload,
            vec![(PrincipalId::new("User_D1"), KeyId::new("K_u1"), d1.clone())],
        );
        assert!(matches!(err, Err(LogicError::NotDerivable(_))));

        // Two distinct members meet the threshold.
        let d2 = Derivation::leaf(
            Formula::says(Subject::principal("User_D2"), Time(10), payload.clone()),
            Rule::Received("sig".into()),
        )
        .share();
        let ok = e
            .apply_a38(
                &belief,
                &subject,
                &group,
                Time(10),
                &payload,
                vec![
                    (PrincipalId::new("User_D1"), KeyId::new("K_u1"), d1.clone()),
                    (PrincipalId::new("User_D2"), KeyId::new("K_u2"), d2),
                ],
            )
            .expect("a38");
        assert!(matches!(ok.conclusion, Formula::GroupSays(_, _, _)));

        // Duplicate signers rejected.
        let err = e.apply_a38(
            &belief,
            &subject,
            &group,
            Time(10),
            &payload,
            vec![
                (PrincipalId::new("User_D1"), KeyId::new("K_u1"), d1.clone()),
                (PrincipalId::new("User_D1"), KeyId::new("K_u1"), d1.clone()),
            ],
        );
        assert!(matches!(err, Err(LogicError::NotDerivable(_))));

        // Wrong key for a member rejected.
        let err = e.apply_a38(
            &belief,
            &subject,
            &group,
            Time(10),
            &payload,
            vec![
                (PrincipalId::new("User_D1"), KeyId::new("K_u2"), d1.clone()),
                (PrincipalId::new("User_D2"), KeyId::new("K_u2"), d1),
            ],
        );
        assert!(matches!(err, Err(LogicError::NotDerivable(_))));
    }

    #[test]
    fn authenticate_signed_statement_uses_step1_beliefs() {
        let mut e = engine_at(10);
        e.admit_certificate(&id_cert()).expect("admit");
        let signed = Message::formula(Formula::says(
            Subject::principal("User_D1"),
            Time(10),
            Message::data("write O"),
        ))
        .signed(KeyId::new("K_u1"));
        let (principal, key, node) = e
            .authenticate_signed_statement(&signed, Time(10))
            .expect("auth");
        assert_eq!(principal.as_str(), "User_D1");
        assert_eq!(key.as_str(), "K_u1");
        assert!(node.axioms_used().contains(&Axiom::A10));

        // Unknown key fails.
        let bad = Message::data("x").signed(KeyId::new("K_unknown"));
        assert!(matches!(
            e.authenticate_signed_statement(&bad, Time(10)),
            Err(LogicError::NoJurisdiction(_))
        ));
    }

    #[test]
    fn a37_compound_shared_key_flow() {
        // The "alternate mechanism": AA certifies CP|K_cp ⇒ G_write where
        // K_cp is a shared key owned by the user group; one joint signature
        // authorizes the group statement.
        let cp = Subject::compound(vec![
            Subject::principal("User_D1"),
            Subject::principal("User_D2"),
            Subject::principal("User_D3"),
        ]);
        let k_cp = KeyId::new("K_cp");
        let mut a = assumptions();
        a.own_key(k_cp.clone(), cp.clone());
        let mut e = Engine::new("P", a);
        e.advance_clock(Time(10)).expect("clock");

        let bound = cp.clone().bound(k_cp.clone());
        let ac = Certs::attribute(
            "AA",
            aa_key(),
            bound.clone(),
            GroupId::new("G_write"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        );
        let cert_derivation = e.admit_certificate(&ac).expect("admit");
        assert!(cert_derivation.axioms_used().contains(&Axiom::A27));

        let group = GroupId::new("G_write");
        let (subject, belief) = e
            .membership_belief_at(&group, Time(10))
            .map(|(s, b)| (s.clone(), b.clone()))
            .expect("membership");
        assert_eq!(subject, bound);

        // The jointly signed request.
        let payload = Message::data("write O");
        let signed = payload.clone().signed(k_cp.clone());
        let (owner, key, stmt) = e
            .authenticate_joint_statement(&signed, Time(10))
            .expect("joint statement");
        assert_eq!(owner, cp);
        let d = e
            .apply_a36_a37(
                &belief,
                &subject,
                &group,
                Time(10),
                &payload,
                &stmt,
                Some(&key),
            )
            .expect("a37");
        assert!(d.axioms_used().contains(&Axiom::A37));
        assert!(matches!(d.conclusion, Formula::GroupSays(_, _, _)));

        // A wrong key is refused.
        let err = e.apply_a36_a37(
            &belief,
            &subject,
            &group,
            Time(10),
            &payload,
            &stmt,
            Some(&KeyId::new("K_other")),
        );
        assert!(matches!(err, Err(LogicError::NotDerivable(_))));
    }

    #[test]
    fn a36_plain_compound_flow() {
        let cp = Subject::compound(vec![Subject::principal("D1"), Subject::principal("D2")]);
        let k_cp = KeyId::new("K_cp2");
        let mut a = assumptions();
        a.own_key(k_cp.clone(), cp.clone());
        let mut e = Engine::new("P", a);
        e.advance_clock(Time(10)).expect("clock");
        let ac = Certs::attribute(
            "AA",
            aa_key(),
            cp.clone(),
            GroupId::new("G_read"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        );
        e.admit_certificate(&ac).expect("admit");
        let group = GroupId::new("G_read");
        let (subject, belief) = e
            .membership_belief_at(&group, Time(10))
            .map(|(s, b)| (s.clone(), b.clone()))
            .expect("membership");
        let payload = Message::data("read O");
        let signed = payload.clone().signed(k_cp);
        let (_, _, stmt) = e
            .authenticate_joint_statement(&signed, Time(10))
            .expect("joint");
        let d = e
            .apply_a36_a37(&belief, &subject, &group, Time(10), &payload, &stmt, None)
            .expect("a36");
        assert!(d.axioms_used().contains(&Axiom::A36));
    }

    #[test]
    fn a36_a37_reject_non_compounds() {
        let mut e = engine_at(10);
        e.admit_certificate(&id_cert()).expect("admit");
        let belief = Belief {
            formula: Formula::Prop("x".into()),
            derivation: Derivation::leaf(Formula::Prop("x".into()), Rule::Received("x".into()))
                .share(),
        };
        let err = e.apply_a36_a37(
            &belief,
            &Subject::principal("U"),
            &GroupId::new("G"),
            Time(10),
            &Message::data("m"),
            &belief.derivation.clone(),
            None,
        );
        assert!(matches!(err, Err(LogicError::NotDerivable(_))));
    }

    #[test]
    fn axiom_counter_increments() {
        let mut e = engine_at(10);
        assert_eq!(e.axiom_applications(), 0);
        e.admit_certificate(&id_cert()).expect("admit");
        assert!(e.axiom_applications() >= 4); // A10, A22 (ts), A9, A22 (content), A9
    }

    #[test]
    fn state_version_covers_epoch_and_clock() {
        let mut e = engine_at(10);
        let v0 = e.state_version();
        // A clock move advances the state version but not the epoch.
        e.advance_clock(Time(11)).expect("clock");
        assert_eq!(e.epoch(), 0);
        assert!(e.state_version() > v0);
        // A no-op advance changes nothing.
        let v1 = e.state_version();
        e.advance_clock(Time(11)).expect("clock");
        assert_eq!(e.state_version(), v1);
        // An epoch bump (new belief) advances it too.
        e.admit_certificate(&id_cert()).expect("admit");
        assert!(e.epoch() > 0);
        assert!(e.state_version() > v1);
        // Re-admitting a known body bumps neither.
        let v2 = e.state_version();
        e.admit_certificate(&id_cert()).expect("admit");
        assert_eq!(e.state_version(), v2);
    }

    #[test]
    fn clock_regression_is_rejected() {
        let mut e = engine_at(10);
        let err = e.advance_clock(Time(5));
        assert!(matches!(err, Err(LogicError::ClockRegression(_))));
        assert_eq!(e.now(), Time(10), "a rejected advance leaves time alone");
        e.advance_clock(Time(10)).expect("equal time is allowed");
        e.advance_clock(Time(11)).expect("forward is allowed");
    }

    #[test]
    fn invalidate_derived_state_bumps_epoch() {
        let mut e = engine_at(10);
        let before = e.epoch();
        e.invalidate_derived_state();
        assert!(e.epoch() > before);
    }
}
