//! A parser for the paper's formula notation, inverse to the `Display`
//! implementations.
//!
//! The textual forms of keys, groups and principals are all identifiers, so
//! the parser takes a [`Vocabulary`] declaring which identifiers denote
//! keys and which denote groups (everything else is a principal) — exactly
//! the sort information the paper's idealization step assumes.
//!
//! Round-trip law (checked by property tests): for any formula `f` whose
//! primitive propositions are identifiers,
//! `parse_formula(&f.to_string(), &Vocabulary::from_formula(&f)) == Ok(f)`.

use std::collections::BTreeSet;

use super::{Formula, GroupId, KeyId, Message, PrincipalId, Subject, Time, TimeRef};

/// Sort declarations: which identifiers are keys, which are groups.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    keys: BTreeSet<String>,
    groups: BTreeSet<String>,
}

impl Vocabulary {
    /// An empty vocabulary (every identifier is a principal).
    #[must_use]
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Declares a key identifier.
    pub fn key(&mut self, name: impl Into<String>) -> &mut Self {
        self.keys.insert(name.into());
        self
    }

    /// Declares a group identifier.
    pub fn group(&mut self, name: impl Into<String>) -> &mut Self {
        self.groups.insert(name.into());
        self
    }

    /// Collects the vocabulary used by a formula (for round-trips).
    #[must_use]
    pub fn from_formula(f: &Formula) -> Self {
        let mut v = Vocabulary::new();
        v.collect_formula(f);
        v
    }

    fn is_key(&self, s: &str) -> bool {
        self.keys.contains(s)
    }

    fn is_group(&self, s: &str) -> bool {
        self.groups.contains(s)
    }

    fn collect_formula(&mut self, f: &Formula) {
        match f {
            Formula::Prop(_) | Formula::TimeLe(_, _) => {}
            Formula::Not(a) => self.collect_formula(a),
            Formula::And(a, b) | Formula::Implies(a, b) => {
                self.collect_formula(a);
                self.collect_formula(b);
            }
            Formula::Believes(s, _, a) | Formula::Controls(s, _, a) => {
                self.collect_subject(s);
                self.collect_formula(a);
            }
            Formula::Says(s, _, m) | Formula::Said(s, _, m) | Formula::Received(s, _, m) => {
                self.collect_subject(s);
                self.collect_message(m);
            }
            Formula::KeySpeaksFor { key, subject, .. } => {
                self.key(key.as_str());
                self.collect_subject(subject);
            }
            Formula::Has(s, _, k) => {
                self.collect_subject(s);
                self.key(k.as_str());
            }
            Formula::MemberOf { subject, group, .. } => {
                self.collect_subject(subject);
                self.group(group.as_str());
            }
            Formula::GroupSays(g, _, m) => {
                self.group(g.as_str());
                self.collect_message(m);
            }
            Formula::Fresh { observer, msg, .. } => {
                self.collect_subject(observer);
                self.collect_message(msg);
            }
            Formula::At(a, place, _) => {
                self.collect_formula(a);
                self.collect_subject(place);
            }
        }
    }

    fn collect_subject(&mut self, s: &Subject) {
        match s {
            Subject::Principal(_) => {}
            Subject::Compound(ms) | Subject::Threshold { members: ms, .. } => {
                for m in ms {
                    self.collect_subject(m);
                }
            }
            Subject::Bound(inner, k) => {
                self.key(k.as_str());
                self.collect_subject(inner);
            }
        }
    }

    fn collect_message(&mut self, m: &Message) {
        match m {
            Message::Formula(f) => self.collect_formula(f),
            Message::Tuple(parts) => {
                for p in parts {
                    self.collect_message(p);
                }
            }
            Message::Signed(inner, k) | Message::Encrypted(inner, k) => {
                self.key(k.as_str());
                self.collect_message(inner);
            }
            _ => {}
        }
    }
}

/// A parse failure: byte position and explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    /// Byte offset where parsing failed.
    pub position: usize,
    /// What was expected.
    pub message: String,
}

impl core::fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseFormulaError {}

/// Parses a formula in display notation.
///
/// ```
/// use jaap_core::syntax::{parse_formula, Formula, Vocabulary};
///
/// # fn main() -> Result<(), jaap_core::syntax::ParseFormulaError> {
/// let mut vocab = Vocabulary::new();
/// vocab.key("K_u1").group("G_write");
/// let f = parse_formula("K_u1 ⇒_{[t0,t100],CA1} User_D1", &vocab)?;
/// assert!(matches!(f, Formula::KeySpeaksFor { .. }));
/// // Round-trip: display then re-parse.
/// assert_eq!(parse_formula(&f.to_string(), &Vocabulary::from_formula(&f))?, f);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`ParseFormulaError`] on malformed input or trailing garbage.
pub fn parse_formula(input: &str, vocab: &Vocabulary) -> Result<Formula, ParseFormulaError> {
    let mut c = Cursor::new(input, vocab);
    let f = c.formula()?;
    c.skip_ws();
    if c.pos < c.chars.len() {
        return Err(c.err("trailing input"));
    }
    Ok(f)
}

/// Parses a subject in display notation.
///
/// # Errors
///
/// [`ParseFormulaError`] on malformed input or trailing garbage.
pub fn parse_subject(input: &str, vocab: &Vocabulary) -> Result<Subject, ParseFormulaError> {
    let mut c = Cursor::new(input, vocab);
    let s = c.subject()?;
    c.skip_ws();
    if c.pos < c.chars.len() {
        return Err(c.err("trailing input"));
    }
    Ok(s)
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    vocab: &'a Vocabulary,
    /// Deepest failure seen, for useful messages after backtracking.
    best_err: Option<ParseFormulaError>,
}

impl<'a> Cursor<'a> {
    fn new(input: &str, vocab: &'a Vocabulary) -> Self {
        Cursor {
            chars: input.chars().collect(),
            pos: 0,
            vocab,
            best_err: None,
        }
    }

    fn err(&mut self, message: &str) -> ParseFormulaError {
        let e = ParseFormulaError {
            position: self.pos,
            message: message.to_string(),
        };
        if self
            .best_err
            .as_ref()
            .is_none_or(|b| e.position >= b.position)
        {
            self.best_err = Some(e.clone());
        }
        e
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while self.peek() == Some(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        let save = self.pos;
        for want in lit.chars() {
            if self.bump() != Some(want) {
                self.pos = save;
                return false;
            }
        }
        true
    }

    fn expect(&mut self, lit: &str) -> Result<(), ParseFormulaError> {
        if self.eat(lit) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseFormulaError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | ':' | '.' | '-' | '#') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    // ---- times ----

    fn time(&mut self) -> Result<Time, ParseFormulaError> {
        if self.eat("∞") {
            return Ok(Time::INFINITY);
        }
        self.expect("t")?;
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits
            .parse::<i64>()
            .map(Time)
            .map_err(|_| self.err("expected a time literal"))
    }

    fn time_ref(&mut self) -> Result<TimeRef, ParseFormulaError> {
        if self.eat("[") {
            let lo = self.time()?;
            self.expect(",")?;
            let hi = self.time()?;
            self.expect("]")?;
            return Ok(TimeRef::Closed(lo, hi));
        }
        if self.eat("⟨") {
            let lo = self.time()?;
            self.expect(",")?;
            let hi = self.time()?;
            self.expect("⟩")?;
            return Ok(TimeRef::Within(lo, hi));
        }
        Ok(TimeRef::At(self.time()?))
    }

    /// `T` or `{T,Observer}` (the observer-subscripted form).
    fn time_ref_with_observer(
        &mut self,
    ) -> Result<(TimeRef, Option<PrincipalId>), ParseFormulaError> {
        if self.eat("{") {
            let tr = self.time_ref()?;
            self.expect(",")?;
            let obs = self.ident()?;
            self.expect("}")?;
            Ok((tr, Some(PrincipalId::new(obs))))
        } else {
            Ok((self.time_ref()?, None))
        }
    }

    // ---- subjects ----

    fn subject(&mut self) -> Result<Subject, ParseFormulaError> {
        let base = if self.eat("{") {
            let mut members = vec![self.subject()?];
            while self.eat(", ") {
                members.push(self.subject()?);
            }
            self.expect("}")?;
            if self.eat("_{") {
                let m = self.number()?;
                self.expect(",")?;
                let n = self.number()?;
                self.expect("}")?;
                if m == 0 || m > members.len() || n != members.len() {
                    return Err(self.err("threshold out of range"));
                }
                Subject::Threshold { members, m }
            } else {
                Subject::Compound(members)
            }
        } else {
            Subject::Principal(PrincipalId::new(self.ident()?))
        };
        if self.eat("|") {
            let key = self.ident()?;
            if !self.vocab.is_key(&key) {
                return Err(self.err(&format!("{key:?} is not a declared key")));
            }
            Ok(base.bound(KeyId::new(key)))
        } else {
            Ok(base)
        }
    }

    fn number(&mut self) -> Result<usize, ParseFormulaError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits.parse().map_err(|_| self.err("expected a number"))
    }

    // ---- messages ----

    fn message(&mut self) -> Result<Message, ParseFormulaError> {
        if self.eat("⟨") {
            let inner = self.message()?;
            self.expect("⟩_{")?;
            let key = self.ident()?;
            self.expect("⁻¹}")?;
            return Ok(inner.signed(KeyId::new(key)));
        }
        if self.peek() == Some('"') {
            self.pos += 1;
            let start = self.pos;
            while self.peek().is_some_and(|c| c != '"') {
                self.pos += 1;
            }
            let data: String = self.chars[start..self.pos].iter().collect();
            self.expect("\"")?;
            return Ok(Message::Data(data));
        }
        if self.eat("nonce#") {
            let n = self.number()?;
            return Ok(Message::Nonce(n as u64));
        }
        if self.eat("(") {
            // Could be a tuple `(a, b)` or a parenthesized formula-message
            // `(a ∧ b)`. Try the formula first.
            let save = self.pos;
            self.pos -= 1; // re-include '(' for formula parsing
            if let Ok(f) = self.formula() {
                return Ok(Message::formula(f));
            }
            self.pos = save;
            let mut parts = vec![self.message()?];
            while self.eat(", ") {
                parts.push(self.message()?);
            }
            self.expect(")")?;
            return Ok(Message::Tuple(parts));
        }
        // Formula-as-message (may start with a compound subject `{…}`),
        // otherwise an encryption `{X}_{K}`, a time value, or a bare name.
        {
            let save = self.pos;
            if let Ok(f) = self.formula() {
                if !matches!(f, Formula::Prop(_)) {
                    return Ok(f.into());
                }
            }
            self.pos = save;
        }
        if self.eat("{") {
            let inner = self.message()?;
            self.expect("}_{")?;
            let key = self.ident()?;
            self.expect("}")?;
            return Ok(inner.encrypted(KeyId::new(key)));
        }
        if self.peek() == Some('t') || self.peek() == Some('∞') {
            let save = self.pos;
            if let Ok(t) = self.time() {
                // Maximal munch: "t0A" is a name, not time t0 + garbage.
                let ident_continues = self.peek().is_some_and(|c| {
                    c.is_alphanumeric() || matches!(c, '_' | ':' | '.' | '-' | '#')
                });
                if !ident_continues {
                    return Ok(Message::TimeVal(t));
                }
            }
            self.pos = save;
        }
        Ok(Message::Name(PrincipalId::new(self.ident()?)))
    }

    // ---- formulas ----

    fn formula(&mut self) -> Result<Formula, ParseFormulaError> {
        self.skip_ws();
        if self.eat("¬") {
            return Ok(Formula::not(self.formula()?));
        }
        if self.eat("fresh_{") {
            let when = self.time_ref()?;
            self.expect(",")?;
            let observer = self.subject()?;
            self.expect("}")?;
            self.expect(" ")?;
            let msg = self.message()?;
            return Ok(Formula::Fresh {
                observer,
                when,
                msg,
            });
        }
        if self.eat("(") {
            // `(f ∧ g)`, `(f ⊃ g)`, or `(f at_S T)`.
            let a = self.formula()?;
            if self.eat(" ∧ ") {
                let b = self.formula()?;
                self.expect(")")?;
                return Ok(Formula::and(a, b));
            }
            if self.eat(" ⊃ ") {
                let b = self.formula()?;
                self.expect(")")?;
                return Ok(Formula::implies(a, b));
            }
            if self.eat(" at_") {
                let place = self.subject()?;
                self.expect(" ")?;
                let when = self.time_ref()?;
                self.expect(")")?;
                return Ok(Formula::At(std::sync::Arc::new(a), place, when));
            }
            return Err(self.err("expected ∧, ⊃ or at_ inside parentheses"));
        }
        // TimeLe: `tN ≤ tM`.
        {
            let save = self.pos;
            if let Ok(t1) = self.time() {
                if self.eat(" ≤ ") {
                    let t2 = self.time()?;
                    return Ok(Formula::TimeLe(t1, t2));
                }
            }
            self.pos = save;
        }
        // Key-speaks-for: `K ⇒_T S` with K a declared key.
        {
            let save = self.pos;
            if let Ok(id) = self.ident() {
                if self.vocab.is_key(&id) && self.eat(" ⇒_") {
                    let (when, relative_to) = self.time_ref_with_observer()?;
                    self.expect(" ")?;
                    let subject = self.subject()?;
                    return Ok(Formula::KeySpeaksFor {
                        key: KeyId::new(id),
                        when,
                        relative_to,
                        subject,
                    });
                }
            }
            self.pos = save;
        }
        // Subject-led forms.
        let save = self.pos;
        if let Ok(subject) = self.subject() {
            if self.eat(" believes_") {
                let when = self.time_ref()?;
                self.expect(" ")?;
                return Ok(Formula::believes(subject, when, self.formula()?));
            }
            if self.eat(" controls_") {
                let when = self.time_ref()?;
                self.expect(" ")?;
                return Ok(Formula::controls(subject, when, self.formula()?));
            }
            if self.eat(" says_") {
                let when = self.time_ref()?;
                self.expect(" ")?;
                let msg = self.message()?;
                // A single group identifier speaking is a GroupSays.
                if let Subject::Principal(p) = &subject {
                    if self.vocab.is_group(p.as_str()) {
                        return Ok(Formula::GroupSays(GroupId::new(p.as_str()), when, msg));
                    }
                }
                return Ok(Formula::Says(subject, when, msg));
            }
            if self.eat(" said_") {
                let when = self.time_ref()?;
                self.expect(" ")?;
                return Ok(Formula::Said(subject, when, self.message()?));
            }
            if self.eat(" received_") {
                let when = self.time_ref()?;
                self.expect(" ")?;
                return Ok(Formula::Received(subject, when, self.message()?));
            }
            if self.eat(" has_") {
                let when = self.time_ref()?;
                self.expect(" ")?;
                let key = self.ident()?;
                return Ok(Formula::Has(subject, when, KeyId::new(key)));
            }
            if self.eat(" ⇒_") {
                let (when, relative_to) = self.time_ref_with_observer()?;
                self.expect(" ")?;
                let group = self.ident()?;
                if !self.vocab.is_group(&group) {
                    return Err(self.err(&format!("{group:?} is not a declared group")));
                }
                return Ok(Formula::MemberOf {
                    subject,
                    when,
                    relative_to,
                    group: GroupId::new(group),
                });
            }
            // A bare single identifier is a primitive proposition.
            if let Subject::Principal(p) = subject {
                return Ok(Formula::Prop(p.as_str().to_string()));
            }
        }
        self.pos = save;
        let fallback = self.err("expected a formula");
        Err(self.best_err.clone().unwrap_or(fallback))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.key("K_u1").key("K_u2").key("K_AA").key("K_CA1");
        v.group("G_write").group("G_read");
        v
    }

    fn roundtrip(f: &Formula) {
        let text = f.to_string();
        let v = Vocabulary::from_formula(f);
        let parsed =
            parse_formula(&text, &v).unwrap_or_else(|e| panic!("failed to parse {text:?}: {e}"));
        assert_eq!(&parsed, f, "roundtrip mismatch for {text:?}");
    }

    #[test]
    fn parses_paper_statements() {
        let v = vocab();
        // Statement 16: P believes (K_u1 ⇒ [tb,te],CA1 User_D1)
        let f = parse_formula("K_u1 ⇒_{[t0,t100],CA1} User_D1", &v).expect("parse");
        assert!(matches!(f, Formula::KeySpeaksFor { .. }));

        // Statement 22: CP'_{2,3} ⇒ G_write
        let f = parse_formula("{User_D1|K_u1, User_D2|K_u2}_{2,2} ⇒_[t0,t100] G_write", &v)
            .expect("parse");
        let Formula::MemberOf { subject, .. } = &f else {
            panic!("expected MemberOf");
        };
        assert_eq!(subject.required_signers(), 2);

        // Statement 25: G_write says "write" O
        let f = parse_formula("G_write says_t6 \"write O\"", &v).expect("parse");
        assert!(matches!(f, Formula::GroupSays(_, _, _)));

        // And a user says (not a group).
        let f = parse_formula("User_D1 says_t6 \"write O\"", &v).expect("parse");
        assert!(matches!(f, Formula::Says(_, _, _)));
    }

    #[test]
    fn parses_signed_message_statements() {
        let v = vocab();
        let f = parse_formula("P received_t10 ⟨User_D1 says_t9 \"write O\"⟩_{K_u1⁻¹}", &v)
            .expect("parse");
        let Formula::Received(_, _, msg) = &f else {
            panic!("expected Received");
        };
        assert!(msg.as_signed().is_some());
    }

    #[test]
    fn display_parse_roundtrips_by_hand() {
        let cases = vec![
            Formula::TimeLe(Time(1), Time(2)),
            Formula::Prop("p".into()),
            Formula::not(Formula::Prop("p".into())),
            Formula::and(Formula::Prop("a".into()), Formula::Prop("b".into())),
            Formula::implies(Formula::Prop("a".into()), Formula::Prop("b".into())),
            Formula::believes(
                Subject::principal("P"),
                Time(3),
                Formula::group_says(GroupId::new("G_write"), Time(3), Message::data("x")),
            ),
            Formula::key_speaks_for_at(
                KeyId::new("K_u1"),
                TimeRef::Closed(Time(0), Time::INFINITY),
                PrincipalId::new("CA1"),
                Subject::principal("U1"),
            ),
            Formula::member_of(
                Subject::threshold(
                    vec![
                        Subject::principal("A").bound(KeyId::new("K1")),
                        Subject::principal("B").bound(KeyId::new("K2")),
                        Subject::principal("C").bound(KeyId::new("K3")),
                    ],
                    2,
                ),
                TimeRef::Within(Time(1), Time(9)),
                GroupId::new("G_w"),
            ),
            Formula::Fresh {
                observer: Subject::principal("P"),
                when: TimeRef::At(Time(5)),
                msg: Message::data("m").signed(KeyId::new("K")),
            },
            Formula::at(
                Formula::says(Subject::principal("A"), Time(1), Message::data("x")),
                Subject::principal("P"),
                Time(2),
            ),
            Formula::Has(
                Subject::principal("P"),
                TimeRef::At(Time(1)),
                KeyId::new("K1"),
            ),
            Formula::says(
                Subject::compound(vec![Subject::principal("D1"), Subject::principal("D2")]),
                Time(4),
                Message::Tuple(vec![Message::data("a"), Message::Nonce(3)]),
            ),
            Formula::received(
                Subject::principal("P"),
                Time(2),
                Message::data("s").encrypted(KeyId::new("K1")),
            ),
        ];
        for f in &cases {
            roundtrip(f);
        }
    }

    #[test]
    fn idealized_certificates_roundtrip() {
        use crate::certs::{Certs, Validity};
        let cert = Certs::threshold_attribute(
            "AA",
            KeyId::new("K_AA"),
            Subject::threshold(
                vec![
                    Subject::principal("U1").bound(KeyId::new("K_u1")),
                    Subject::principal("U2").bound(KeyId::new("K_u2")),
                    Subject::principal("U3").bound(KeyId::new("K_u3")),
                ],
                2,
            ),
            GroupId::new("G_write"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        );
        // The certificate is ⟨formula⟩_{K⁻¹}; parse its payload formula.
        let payload = cert
            .as_signed()
            .expect("signed")
            .0
            .as_formula()
            .expect("formula");
        roundtrip(payload);
    }

    #[test]
    fn vocabulary_errors_are_reported() {
        let v = vocab();
        // Undeclared group.
        let err = parse_formula("U1 ⇒_t1 G_unknown", &v).unwrap_err();
        assert!(err.message.contains("not a declared group"));
        // Undeclared binding key.
        let err = parse_formula("U1|K_unknown ⇒_t1 G_write", &v).unwrap_err();
        assert!(err.message.contains("not a declared key"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let v = vocab();
        assert!(parse_formula("p q", &v).is_err());
        assert!(parse_formula("", &v).is_err());
    }

    #[test]
    fn threshold_bounds_checked() {
        let v = vocab();
        assert!(parse_formula("{A, B}_{3,2} ⇒_t1 G_write", &v).is_err());
        assert!(parse_formula("{A, B}_{0,2} ⇒_t1 G_write", &v).is_err());
        assert!(parse_formula("{A, B}_{1,3} ⇒_t1 G_write", &v).is_err());
    }

    #[test]
    fn parse_subject_entrypoint() {
        let v = vocab();
        let s = parse_subject("{U1|K_u1, U2|K_u2}_{2,2}", &v).expect("parse");
        assert_eq!(s.required_signers(), 2);
        assert!(parse_subject("{U1", &v).is_err());
    }
}
