//! Time in the logic.
//!
//! Each principal has a local clock; the paper writes `[t1, t2]` for "at all
//! times between t1 and t2" and `⟨t1, t2⟩` for "at some time between t1 and
//! t2". Time is modeled as discrete ticks ([`Time`], an `i64`), totally
//! ordered as Appendix A requires.

use core::fmt;

/// A point in (some principal's) time, in discrete ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(pub i64);

impl Time {
    /// The earliest representable time.
    pub const MIN: Time = Time(i64::MIN);
    /// The latest representable time (the paper's "upper bound of infinity"
    /// for revocation certificates).
    pub const INFINITY: Time = Time(i64::MAX);

    /// `self + delta` ticks (saturating).
    #[must_use]
    pub fn plus(self, delta: i64) -> Time {
        Time(self.0.saturating_add(delta))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Time::INFINITY {
            write!(f, "∞")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

impl From<i64> for Time {
    fn from(v: i64) -> Self {
        Time(v)
    }
}

/// A temporal qualifier on a formula: a point, a closed interval (`[t1,t2]`,
/// "at all times"), or an existential interval (`⟨t1,t2⟩`, "at some time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimeRef {
    /// Holds at exactly `t`.
    At(Time),
    /// Holds at every time in `[lo, hi]` (paper `[t1, t2]`).
    Closed(Time, Time),
    /// Holds at some time in `[lo, hi]` (paper `⟨t1, t2⟩`).
    Within(Time, Time),
}

impl TimeRef {
    /// Builds a closed interval, normalizing a degenerate one to a point.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn closed(lo: Time, hi: Time) -> TimeRef {
        assert!(lo <= hi, "interval bounds out of order");
        if lo == hi {
            TimeRef::At(lo)
        } else {
            TimeRef::Closed(lo, hi)
        }
    }

    /// Returns `true` if the reference universally covers time `t` — i.e.
    /// the formula is asserted to hold at `t`. (`Within` promises only some
    /// unknown time, so it never *covers* a specific `t`.)
    #[must_use]
    pub fn covers(&self, t: Time) -> bool {
        match self {
            TimeRef::At(x) => *x == t,
            TimeRef::Closed(lo, hi) => *lo <= t && t <= *hi,
            TimeRef::Within(_, _) => false,
        }
    }

    /// Returns `true` if this reference intersects the closed interval
    /// `[lo, hi]`.
    #[must_use]
    pub fn intersects(&self, lo: Time, hi: Time) -> bool {
        let (a, b) = self.bounds();
        a <= hi && lo <= b
    }

    /// The (inclusive) bounds of the reference.
    #[must_use]
    pub fn bounds(&self) -> (Time, Time) {
        match self {
            TimeRef::At(t) => (*t, *t),
            TimeRef::Closed(lo, hi) | TimeRef::Within(lo, hi) => (*lo, *hi),
        }
    }
}

impl fmt::Display for TimeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeRef::At(t) => write!(f, "{t}"),
            TimeRef::Closed(lo, hi) => write!(f, "[{lo},{hi}]"),
            TimeRef::Within(lo, hi) => write!(f, "⟨{lo},{hi}⟩"),
        }
    }
}

impl From<Time> for TimeRef {
    fn from(t: Time) -> Self {
        TimeRef::At(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time(5).plus(3), Time(8));
        assert_eq!(Time::INFINITY.plus(1), Time::INFINITY);
    }

    #[test]
    fn covers_semantics() {
        assert!(TimeRef::At(Time(5)).covers(Time(5)));
        assert!(!TimeRef::At(Time(5)).covers(Time(6)));
        assert!(TimeRef::Closed(Time(1), Time(9)).covers(Time(5)));
        assert!(!TimeRef::Closed(Time(1), Time(9)).covers(Time(10)));
        // ⟨t1,t2⟩ promises "some time", never a specific one.
        assert!(!TimeRef::Within(Time(1), Time(9)).covers(Time(5)));
    }

    #[test]
    fn intersects_intervals() {
        let r = TimeRef::Closed(Time(10), Time(20));
        assert!(r.intersects(Time(15), Time(25)));
        assert!(r.intersects(Time(0), Time(10)));
        assert!(!r.intersects(Time(21), Time(30)));
    }

    #[test]
    fn closed_normalizes_degenerate() {
        assert_eq!(TimeRef::closed(Time(3), Time(3)), TimeRef::At(Time(3)));
        assert_eq!(
            TimeRef::closed(Time(3), Time(4)),
            TimeRef::Closed(Time(3), Time(4))
        );
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_bounds_panic() {
        let _ = TimeRef::closed(Time(4), Time(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Time(7).to_string(), "t7");
        assert_eq!(Time::INFINITY.to_string(), "∞");
        assert_eq!(TimeRef::Closed(Time(1), Time(2)).to_string(), "[t1,t2]");
        assert_eq!(TimeRef::Within(Time(1), Time(2)).to_string(), "⟨t1,t2⟩");
    }
}
