//! A hash-consed term arena for subjects, messages and formulas.
//!
//! The interner maps each structurally distinct term to a small copyable
//! id ([`Sym`], [`SubjectId`], [`MsgId`], [`FormulaId`]). Interning the
//! same term twice returns the same id, so id equality *is* structural
//! equality and ids hash in O(1) — which is what makes the derivation
//! memo key in [`crate::memo`] cheap to build and compare. Strings
//! (principal, key and group names, data constants, propositions) are
//! symbol-interned underneath, so every distinct name is stored once.
//!
//! Resolution is the inverse direction: [`Interner::resolve_formula`]
//! (and friends) rebuild the owned [`Formula`]/[`Message`]/[`Subject`]
//! trees on demand, e.g. for pretty-printing or proof export. The
//! round-trip law `resolve(intern(t)) == t` is property-tested in
//! `crates/core/tests/intern_roundtrip.rs`.
//!
//! The arena only grows (hash-consing tables are append-only); its size is
//! bounded by the vocabulary of distinct terms seen, which for a coalition
//! server is the certificate/request vocabulary, not the request count.
//! [`Interner::stats`] surfaces the table sizes so `jaap-obs` gauges can
//! watch them.

use std::collections::HashMap;
use std::sync::Arc;

use super::{Formula, GroupId, KeyId, Message, PrincipalId, Subject, Time, TimeRef};

/// An interned string (principal/key/group name, data constant, prop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

/// An interned [`Subject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubjectId(u32);

/// An interned [`Message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(u32);

/// An interned [`Formula`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FormulaId(u32);

/// Flattened [`Subject`] with interned children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SubjectNode {
    Principal(Sym),
    Compound(Vec<SubjectId>),
    Threshold { members: Vec<SubjectId>, m: usize },
    Bound(SubjectId, Sym),
}

/// Flattened [`Message`] with interned children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MsgNode {
    Formula(FormulaId),
    Data(Sym),
    Name(Sym),
    TimeVal(Time),
    Nonce(u64),
    Tuple(Vec<MsgId>),
    Signed(MsgId, Sym),
    Encrypted(MsgId, Sym),
}

/// Flattened [`Formula`] with interned children. `Time`/`TimeRef` are
/// `Copy` and stay inline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FormulaNode {
    Prop(Sym),
    Not(FormulaId),
    And(FormulaId, FormulaId),
    Implies(FormulaId, FormulaId),
    TimeLe(Time, Time),
    Believes(SubjectId, TimeRef, FormulaId),
    Controls(SubjectId, TimeRef, FormulaId),
    Says(SubjectId, TimeRef, MsgId),
    Said(SubjectId, TimeRef, MsgId),
    Received(SubjectId, TimeRef, MsgId),
    KeySpeaksFor {
        key: Sym,
        when: TimeRef,
        relative_to: Option<Sym>,
        subject: SubjectId,
    },
    Has(SubjectId, TimeRef, Sym),
    MemberOf {
        subject: SubjectId,
        when: TimeRef,
        relative_to: Option<Sym>,
        group: Sym,
    },
    GroupSays(Sym, TimeRef, MsgId),
    Fresh {
        observer: SubjectId,
        when: TimeRef,
        msg: MsgId,
    },
    At(FormulaId, SubjectId, TimeRef),
}

/// One hash-consed table: id → node, node → id.
#[derive(Debug)]
struct Table<N> {
    nodes: Vec<N>,
    ids: HashMap<N, u32>,
}

impl<N> Default for Table<N> {
    fn default() -> Self {
        Table {
            nodes: Vec::new(),
            ids: HashMap::new(),
        }
    }
}

impl<N: Clone + Eq + std::hash::Hash> Table<N> {
    fn intern(&mut self, node: N) -> u32 {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("interner table overflow");
        self.nodes.push(node.clone());
        self.ids.insert(node, id);
        id
    }

    fn get(&self, id: u32) -> &N {
        &self.nodes[id as usize]
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

/// Sizes of the interner's tables (for gauges and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InternStats {
    /// Distinct interned strings.
    pub symbols: usize,
    /// Distinct interned subjects.
    pub subjects: usize,
    /// Distinct interned messages.
    pub messages: usize,
    /// Distinct interned formulas.
    pub formulas: usize,
}

/// The hash-consing arena.
#[derive(Debug, Default)]
pub struct Interner {
    strings: Table<Arc<str>>,
    subjects: Table<SubjectNode>,
    messages: Table<MsgNode>,
    formulas: Table<FormulaNode>,
}

impl Interner {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a string.
    pub fn intern_str(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.strings.ids.get(s) {
            return Sym(id);
        }
        Sym(self.strings.intern(Arc::from(s)))
    }

    /// The string behind a [`Sym`].
    #[must_use]
    pub fn resolve_str(&self, sym: Sym) -> &str {
        self.strings.get(sym.0)
    }

    /// Interns a subject (recursively interning members and keys).
    pub fn intern_subject(&mut self, s: &Subject) -> SubjectId {
        let node = match s {
            Subject::Principal(p) => SubjectNode::Principal(self.intern_str(p.as_str())),
            Subject::Compound(ms) => {
                SubjectNode::Compound(ms.iter().map(|m| self.intern_subject(m)).collect())
            }
            Subject::Threshold { members, m } => SubjectNode::Threshold {
                members: members.iter().map(|s| self.intern_subject(s)).collect(),
                m: *m,
            },
            Subject::Bound(inner, k) => {
                let inner = self.intern_subject(inner);
                SubjectNode::Bound(inner, self.intern_str(k.as_str()))
            }
        };
        SubjectId(self.subjects.intern(node))
    }

    /// Rebuilds the owned [`Subject`] behind an id.
    #[must_use]
    pub fn resolve_subject(&self, id: SubjectId) -> Subject {
        match self.subjects.get(id.0).clone() {
            SubjectNode::Principal(p) => Subject::Principal(PrincipalId::new(self.resolve_str(p))),
            SubjectNode::Compound(ms) => {
                Subject::Compound(ms.iter().map(|&m| self.resolve_subject(m)).collect())
            }
            SubjectNode::Threshold { members, m } => Subject::Threshold {
                members: members.iter().map(|&s| self.resolve_subject(s)).collect(),
                m,
            },
            SubjectNode::Bound(inner, k) => Subject::Bound(
                Arc::new(self.resolve_subject(inner)),
                KeyId::new(self.resolve_str(k)),
            ),
        }
    }

    /// Interns a message (recursively interning submessages).
    pub fn intern_message(&mut self, m: &Message) -> MsgId {
        let node = match m {
            Message::Formula(f) => MsgNode::Formula(self.intern_formula(f)),
            Message::Data(s) => MsgNode::Data(self.intern_str(s)),
            Message::Name(p) => MsgNode::Name(self.intern_str(p.as_str())),
            Message::TimeVal(t) => MsgNode::TimeVal(*t),
            Message::Nonce(n) => MsgNode::Nonce(*n),
            Message::Tuple(parts) => {
                MsgNode::Tuple(parts.iter().map(|p| self.intern_message(p)).collect())
            }
            Message::Signed(inner, k) => {
                let inner = self.intern_message(inner);
                MsgNode::Signed(inner, self.intern_str(k.as_str()))
            }
            Message::Encrypted(inner, k) => {
                let inner = self.intern_message(inner);
                MsgNode::Encrypted(inner, self.intern_str(k.as_str()))
            }
        };
        MsgId(self.messages.intern(node))
    }

    /// Rebuilds the owned [`Message`] behind an id.
    #[must_use]
    pub fn resolve_message(&self, id: MsgId) -> Message {
        match self.messages.get(id.0).clone() {
            MsgNode::Formula(f) => Message::Formula(Arc::new(self.resolve_formula(f))),
            MsgNode::Data(s) => Message::Data(self.resolve_str(s).to_string()),
            MsgNode::Name(p) => Message::Name(PrincipalId::new(self.resolve_str(p))),
            MsgNode::TimeVal(t) => Message::TimeVal(t),
            MsgNode::Nonce(n) => Message::Nonce(n),
            MsgNode::Tuple(parts) => {
                Message::Tuple(parts.iter().map(|&p| self.resolve_message(p)).collect())
            }
            MsgNode::Signed(inner, k) => Message::Signed(
                Arc::new(self.resolve_message(inner)),
                KeyId::new(self.resolve_str(k)),
            ),
            MsgNode::Encrypted(inner, k) => Message::Encrypted(
                Arc::new(self.resolve_message(inner)),
                KeyId::new(self.resolve_str(k)),
            ),
        }
    }

    /// Interns a formula (recursively interning subformulas).
    pub fn intern_formula(&mut self, f: &Formula) -> FormulaId {
        let node = match f {
            Formula::Prop(p) => FormulaNode::Prop(self.intern_str(p)),
            Formula::Not(a) => FormulaNode::Not(self.intern_formula(a)),
            Formula::And(a, b) => {
                let a = self.intern_formula(a);
                FormulaNode::And(a, self.intern_formula(b))
            }
            Formula::Implies(a, b) => {
                let a = self.intern_formula(a);
                FormulaNode::Implies(a, self.intern_formula(b))
            }
            Formula::TimeLe(a, b) => FormulaNode::TimeLe(*a, *b),
            Formula::Believes(s, t, a) => {
                let s = self.intern_subject(s);
                FormulaNode::Believes(s, *t, self.intern_formula(a))
            }
            Formula::Controls(s, t, a) => {
                let s = self.intern_subject(s);
                FormulaNode::Controls(s, *t, self.intern_formula(a))
            }
            Formula::Says(s, t, m) => {
                let s = self.intern_subject(s);
                FormulaNode::Says(s, *t, self.intern_message(m))
            }
            Formula::Said(s, t, m) => {
                let s = self.intern_subject(s);
                FormulaNode::Said(s, *t, self.intern_message(m))
            }
            Formula::Received(s, t, m) => {
                let s = self.intern_subject(s);
                FormulaNode::Received(s, *t, self.intern_message(m))
            }
            Formula::KeySpeaksFor {
                key,
                when,
                relative_to,
                subject,
            } => FormulaNode::KeySpeaksFor {
                key: self.intern_str(key.as_str()),
                when: *when,
                relative_to: relative_to.as_ref().map(|r| self.intern_str(r.as_str())),
                subject: self.intern_subject(subject),
            },
            Formula::Has(s, t, k) => {
                let s = self.intern_subject(s);
                FormulaNode::Has(s, *t, self.intern_str(k.as_str()))
            }
            Formula::MemberOf {
                subject,
                when,
                relative_to,
                group,
            } => FormulaNode::MemberOf {
                subject: self.intern_subject(subject),
                when: *when,
                relative_to: relative_to.as_ref().map(|r| self.intern_str(r.as_str())),
                group: self.intern_str(group.as_str()),
            },
            Formula::GroupSays(g, t, m) => {
                let g = self.intern_str(g.as_str());
                FormulaNode::GroupSays(g, *t, self.intern_message(m))
            }
            Formula::Fresh {
                observer,
                when,
                msg,
            } => FormulaNode::Fresh {
                observer: self.intern_subject(observer),
                when: *when,
                msg: self.intern_message(msg),
            },
            Formula::At(a, place, when) => {
                let a = self.intern_formula(a);
                FormulaNode::At(a, self.intern_subject(place), *when)
            }
        };
        FormulaId(self.formulas.intern(node))
    }

    /// Rebuilds the owned [`Formula`] behind an id.
    #[must_use]
    pub fn resolve_formula(&self, id: FormulaId) -> Formula {
        match self.formulas.get(id.0).clone() {
            FormulaNode::Prop(p) => Formula::Prop(self.resolve_str(p).to_string()),
            FormulaNode::Not(a) => Formula::Not(Arc::new(self.resolve_formula(a))),
            FormulaNode::And(a, b) => Formula::And(
                Arc::new(self.resolve_formula(a)),
                Arc::new(self.resolve_formula(b)),
            ),
            FormulaNode::Implies(a, b) => Formula::Implies(
                Arc::new(self.resolve_formula(a)),
                Arc::new(self.resolve_formula(b)),
            ),
            FormulaNode::TimeLe(a, b) => Formula::TimeLe(a, b),
            FormulaNode::Believes(s, t, a) => Formula::Believes(
                self.resolve_subject(s),
                t,
                Arc::new(self.resolve_formula(a)),
            ),
            FormulaNode::Controls(s, t, a) => Formula::Controls(
                self.resolve_subject(s),
                t,
                Arc::new(self.resolve_formula(a)),
            ),
            FormulaNode::Says(s, t, m) => {
                Formula::Says(self.resolve_subject(s), t, self.resolve_message(m))
            }
            FormulaNode::Said(s, t, m) => {
                Formula::Said(self.resolve_subject(s), t, self.resolve_message(m))
            }
            FormulaNode::Received(s, t, m) => {
                Formula::Received(self.resolve_subject(s), t, self.resolve_message(m))
            }
            FormulaNode::KeySpeaksFor {
                key,
                when,
                relative_to,
                subject,
            } => Formula::KeySpeaksFor {
                key: KeyId::new(self.resolve_str(key)),
                when,
                relative_to: relative_to.map(|r| PrincipalId::new(self.resolve_str(r))),
                subject: self.resolve_subject(subject),
            },
            FormulaNode::Has(s, t, k) => {
                Formula::Has(self.resolve_subject(s), t, KeyId::new(self.resolve_str(k)))
            }
            FormulaNode::MemberOf {
                subject,
                when,
                relative_to,
                group,
            } => Formula::MemberOf {
                subject: self.resolve_subject(subject),
                when,
                relative_to: relative_to.map(|r| PrincipalId::new(self.resolve_str(r))),
                group: GroupId::new(self.resolve_str(group)),
            },
            FormulaNode::GroupSays(g, t, m) => Formula::GroupSays(
                GroupId::new(self.resolve_str(g)),
                t,
                self.resolve_message(m),
            ),
            FormulaNode::Fresh {
                observer,
                when,
                msg,
            } => Formula::Fresh {
                observer: self.resolve_subject(observer),
                when,
                msg: self.resolve_message(msg),
            },
            FormulaNode::At(a, place, when) => Formula::At(
                Arc::new(self.resolve_formula(a)),
                self.resolve_subject(place),
                when,
            ),
        }
    }

    /// Current table sizes.
    #[must_use]
    pub fn stats(&self) -> InternStats {
        InternStats {
            symbols: self.strings.len(),
            subjects: self.subjects.len(),
            messages: self.messages.len(),
            formulas: self.formulas.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_formula() -> Formula {
        Formula::believes(
            Subject::principal("P"),
            Time(6),
            Formula::group_says(
                GroupId::new("G_write"),
                Time(6),
                Message::Tuple(vec![
                    Message::data("write O"),
                    Message::Nonce(7),
                    Message::data("x").signed(KeyId::new("K1")),
                ]),
            ),
        )
    }

    #[test]
    fn interning_is_idempotent() {
        let mut arena = Interner::new();
        let f = sample_formula();
        let a = arena.intern_formula(&f);
        let b = arena.intern_formula(&f);
        assert_eq!(a, b, "same structure must intern to the same id");
        let stats = arena.stats();
        // A second interning adds nothing.
        assert_eq!(arena.stats(), stats);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut arena = Interner::new();
        let a = arena.intern_formula(&Formula::Prop("a".into()));
        let b = arena.intern_formula(&Formula::Prop("b".into()));
        assert_ne!(a, b);
        assert_ne!(arena.intern_str("a"), arena.intern_str("b"));
    }

    #[test]
    fn resolve_inverts_intern() {
        let mut arena = Interner::new();
        let f = sample_formula();
        let id = arena.intern_formula(&f);
        assert_eq!(arena.resolve_formula(id), f);

        let s = Subject::threshold(
            vec![
                Subject::principal("U1").bound(KeyId::new("K1")),
                Subject::principal("U2").bound(KeyId::new("K2")),
            ],
            2,
        );
        let sid = arena.intern_subject(&s);
        assert_eq!(arena.resolve_subject(sid), s);

        let m = Message::formula(f).encrypted(KeyId::new("K_srv"));
        let mid = arena.intern_message(&m);
        assert_eq!(arena.resolve_message(mid), m);
    }

    #[test]
    fn shared_subterms_are_stored_once() {
        let mut arena = Interner::new();
        let shared = Formula::Prop("p".into());
        let _ = arena.intern_formula(&Formula::and(shared.clone(), shared.clone()));
        let stats = arena.stats();
        // "p" and the conjunction: two formula nodes, one symbol.
        assert_eq!(stats.formulas, 2);
        assert_eq!(stats.symbols, 1);
    }

    #[test]
    fn stats_track_all_tables() {
        let mut arena = Interner::new();
        assert_eq!(arena.stats(), InternStats::default());
        let _ = arena.intern_message(&Message::Name(PrincipalId::new("A")));
        let s = arena.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.symbols, 1);
        assert_eq!(s.formulas, 0);
    }
}
