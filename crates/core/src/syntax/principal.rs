//! Principals, compound principals, groups and key names.

use core::fmt;
use std::sync::Arc;

/// A system principal's name (a user, domain, server, CA, AA, …).
///
/// Cheap to clone (`Arc<str>` internally).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrincipalId(Arc<str>);

impl PrincipalId {
    /// Creates a principal name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        PrincipalId(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for PrincipalId {
    fn from(s: &str) -> Self {
        PrincipalId::new(s)
    }
}

impl From<String> for PrincipalId {
    fn from(s: String) -> Self {
        PrincipalId::new(s)
    }
}

/// The name of a public key (e.g. `K_AA`, or a hex key id).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(Arc<str>);

impl KeyId {
    /// Creates a key name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        KeyId(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for KeyId {
    fn from(s: &str) -> Self {
        KeyId::new(s)
    }
}

/// A group name, as found on ACLs (e.g. `G_write`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(Arc<str>);

impl GroupId {
    /// Creates a group name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        GroupId(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for GroupId {
    fn from(s: &str) -> Self {
        GroupId::new(s)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::{GroupId, KeyId, PrincipalId};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    macro_rules! string_newtype_serde {
        ($ty:ident) => {
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    s.serialize_str(self.as_str())
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    Ok($ty::new(String::deserialize(d)?))
                }
            }
        };
    }
    string_newtype_serde!(PrincipalId);
    string_newtype_serde!(KeyId);
    string_newtype_serde!(GroupId);
}

/// A *subject*: anything that can own keys, say messages, or appear on the
/// left of a speaks-for arrow.
///
/// Covers the paper's system principals `P`, key-bound principals `P|K`
/// (F13), compound principals `CP = {P₁,…,Pₙ}` (F5/F14), key-bound
/// compounds `CP|K` (F16), and threshold compounds `CP_{m,n}` (F10/F15).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Subject {
    /// A single system principal.
    Principal(PrincipalId),
    /// A compound principal: a set of subjects acting collectively.
    Compound(Vec<Subject>),
    /// A threshold compound `CP_{m,n}`: any `m` of the members suffice.
    Threshold {
        /// The member subjects (usually key-bound principals, per F15).
        members: Vec<Subject>,
        /// The threshold `m ≤ members.len()`.
        m: usize,
    },
    /// A subject cryptographically bound to a public key (`S|K`).
    Bound(Arc<Subject>, KeyId),
}

impl Subject {
    /// A single principal subject.
    #[must_use]
    pub fn principal(name: impl AsRef<str>) -> Subject {
        Subject::Principal(PrincipalId::new(name))
    }

    /// A compound principal from member subjects.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    #[must_use]
    pub fn compound(members: Vec<Subject>) -> Subject {
        assert!(!members.is_empty(), "a compound principal needs members");
        Subject::Compound(members)
    }

    /// A threshold compound `CP_{m,n}`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= members.len()`.
    #[must_use]
    pub fn threshold(members: Vec<Subject>, m: usize) -> Subject {
        assert!(
            m >= 1 && m <= members.len(),
            "threshold must satisfy 1 <= m <= n"
        );
        Subject::Threshold { members, m }
    }

    /// Binds this subject to a key: `S|K` (consuming builder).
    #[must_use]
    pub fn bound(self, key: KeyId) -> Subject {
        Subject::Bound(Arc::new(self), key)
    }

    /// The principal name if this is a plain or key-bound single principal.
    #[must_use]
    pub fn principal_id(&self) -> Option<&PrincipalId> {
        match self {
            Subject::Principal(p) => Some(p),
            Subject::Bound(inner, _) => inner.principal_id(),
            _ => None,
        }
    }

    /// The binding key if this is a `S|K` subject.
    #[must_use]
    pub fn binding_key(&self) -> Option<&KeyId> {
        match self {
            Subject::Bound(_, k) => Some(k),
            _ => None,
        }
    }

    /// Number of members (1 for single principals).
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            Subject::Principal(_) => 1,
            Subject::Compound(ms) => ms.len(),
            Subject::Threshold { members, .. } => members.len(),
            Subject::Bound(inner, _) => inner.arity(),
        }
    }

    /// The threshold: `m` for `CP_{m,n}`, otherwise the full arity (all
    /// members of a plain compound must act; a single principal acts alone).
    #[must_use]
    pub fn required_signers(&self) -> usize {
        match self {
            Subject::Threshold { m, .. } => *m,
            other => other.arity(),
        }
    }

    /// Iterates over member subjects (self for single principals).
    #[must_use]
    pub fn members(&self) -> Vec<&Subject> {
        match self {
            Subject::Compound(ms) => ms.iter().collect(),
            Subject::Threshold { members, .. } => members.iter().collect(),
            Subject::Bound(inner, _) => inner.members(),
            single => vec![single],
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Principal(p) => write!(f, "{p}"),
            Subject::Compound(ms) => {
                write!(f, "{{")?;
                for (i, m) in ms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, "}}")
            }
            Subject::Threshold { members, m } => {
                write!(f, "{{")?;
                for (i, s) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "}}_{{{},{}}}", m, members.len())
            }
            Subject::Bound(inner, key) => write!(f, "{inner}|{key}"),
        }
    }
}

impl From<PrincipalId> for Subject {
    fn from(p: PrincipalId) -> Self {
        Subject::Principal(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn principal_display() {
        assert_eq!(Subject::principal("User_D1").to_string(), "User_D1");
    }

    #[test]
    fn bound_subject_display_and_accessors() {
        let s = Subject::principal("P").bound(KeyId::new("K_P"));
        assert_eq!(s.to_string(), "P|K_P");
        assert_eq!(s.principal_id().map(PrincipalId::as_str), Some("P"));
        assert_eq!(s.binding_key().map(KeyId::as_str), Some("K_P"));
    }

    #[test]
    fn compound_members_and_arity() {
        let cp = Subject::compound(vec![
            Subject::principal("D1"),
            Subject::principal("D2"),
            Subject::principal("D3"),
        ]);
        assert_eq!(cp.arity(), 3);
        assert_eq!(cp.required_signers(), 3);
        assert_eq!(cp.to_string(), "{D1, D2, D3}");
        assert_eq!(cp.members().len(), 3);
        assert_eq!(cp.principal_id(), None);
    }

    #[test]
    fn threshold_display_and_required_signers() {
        let cp = Subject::threshold(
            vec![
                Subject::principal("U1").bound(KeyId::new("K1")),
                Subject::principal("U2").bound(KeyId::new("K2")),
                Subject::principal("U3").bound(KeyId::new("K3")),
            ],
            2,
        );
        assert_eq!(cp.required_signers(), 2);
        assert_eq!(cp.arity(), 3);
        assert_eq!(cp.to_string(), "{U1|K1, U2|K2, U3|K3}_{2,3}");
    }

    #[test]
    #[should_panic(expected = "1 <= m <= n")]
    fn threshold_above_n_panics() {
        let _ = Subject::threshold(vec![Subject::principal("P")], 2);
    }

    #[test]
    #[should_panic(expected = "needs members")]
    fn empty_compound_panics() {
        let _ = Subject::compound(vec![]);
    }

    #[test]
    fn single_principal_members_is_self() {
        let p = Subject::principal("P");
        assert_eq!(p.members(), vec![&p]);
        assert_eq!(p.required_signers(), 1);
    }

    #[test]
    fn ids_equal_by_content() {
        assert_eq!(PrincipalId::new("A"), PrincipalId::from("A"));
        assert_ne!(KeyId::new("K1"), KeyId::new("K2"));
        assert_eq!(GroupId::new("G").as_str(), "G");
    }
}
