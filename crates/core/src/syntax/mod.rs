//! Syntax of the logic: terms, subjects, messages and formulas
//! (paper Appendix A, rules M1–M3 and F1–F22).

mod formula;
pub mod intern;
mod message;
pub mod parser;
mod principal;
mod time;

pub use formula::Formula;
pub use intern::{FormulaId, InternStats, Interner, MsgId, SubjectId, Sym};
pub use message::Message;
pub use parser::{parse_formula, parse_subject, ParseFormulaError, Vocabulary};
pub use principal::{GroupId, KeyId, PrincipalId, Subject};
pub use time::{Time, TimeRef};
