//! Formulas of the logic (paper Appendix A, rules F1–F22).
//!
//! The [`Subject`] type already folds the paper's many syntactic cases into
//! one: `P`, `P|K`, `CP`, `CP|K` and `CP_{m,n}` are all subjects, so the
//! formula constructors below cover F4–F18 without duplication. Ground
//! formulas carry concrete times; quantified initial beliefs are engine-side
//! schemas (see crate docs).

use core::fmt;
use std::sync::Arc;

use super::{GroupId, KeyId, Message, PrincipalId, Subject, Time, TimeRef};

/// A formula of the logic.
///
/// Subterms are held behind [`Arc`] so that cloning a formula — which the
/// engine does constantly when assembling [`Derivation`](crate::Derivation)
/// proof steps — is a shallow reference-count bump, never a deep tree copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Formula {
    /// F1: a primitive proposition.
    Prop(String),
    /// F2: negation.
    Not(Arc<Formula>),
    /// F2: conjunction.
    And(Arc<Formula>, Arc<Formula>),
    /// Material implication (definable from F2; primitive here because the
    /// axioms are implications and modus ponens needs them first-class).
    Implies(Arc<Formula>, Arc<Formula>),
    /// F3: time comparison `t1 <= t2`.
    TimeLe(Time, Time),
    /// F4/F5: `S believes_T φ`.
    Believes(Subject, TimeRef, Arc<Formula>),
    /// F4/F5: `S controls_T φ`.
    Controls(Subject, TimeRef, Arc<Formula>),
    /// F6/F7: `S says_T X`.
    Says(Subject, TimeRef, Message),
    /// F6/F7: `S said_T X`.
    Said(Subject, TimeRef, Message),
    /// F6/F7: `S received_T X`.
    Received(Subject, TimeRef, Message),
    /// F8–F10: `K ⇒_T S` — the public key `K` speaks for `S`
    /// (`relative_to` is the observer on whose authority/clock the
    /// statement is indexed, e.g. `⇒_{[tb,te],CA1}`).
    KeySpeaksFor {
        /// The public key.
        key: KeyId,
        /// Temporal qualifier.
        when: TimeRef,
        /// Observer subscript, when present.
        relative_to: Option<PrincipalId>,
        /// The owner: a principal, compound, or threshold compound.
        subject: Subject,
    },
    /// F11: `S has_T K` (possession of a key).
    Has(Subject, TimeRef, KeyId),
    /// F12–F16: `S ⇒_T G` — the subject speaks for (is a member of) group
    /// `G`. `S` may be `P`, `P|K`, `CP`, `CP|K`, or `CP_{m,n}`.
    MemberOf {
        /// The member subject.
        subject: Subject,
        /// Temporal qualifier.
        when: TimeRef,
        /// Observer subscript, when present.
        relative_to: Option<PrincipalId>,
        /// The group.
        group: GroupId,
    },
    /// `G says_T X` — a group speaking (conclusion of axioms A34–A38).
    GroupSays(GroupId, TimeRef, Message),
    /// F17/F18: `fresh_{T,S} X`.
    Fresh {
        /// The observer judging freshness.
        observer: Subject,
        /// Temporal qualifier.
        when: TimeRef,
        /// The message judged fresh.
        msg: Message,
    },
    /// F19/F20: `φ at_S T` — presence of `φ` at subject `S` at time `T` on
    /// `S`'s clock.
    At(Arc<Formula>, Subject, TimeRef),
}

impl Formula {
    /// `¬φ`.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // constructor, not an operator
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Arc::new(f))
    }

    /// `φ ∧ ψ`.
    #[must_use]
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Arc::new(a), Arc::new(b))
    }

    /// `φ ⊃ ψ`.
    #[must_use]
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Arc::new(a), Arc::new(b))
    }

    /// `S believes_T φ`.
    #[must_use]
    pub fn believes(s: Subject, when: impl Into<TimeRef>, f: Formula) -> Formula {
        Formula::Believes(s, when.into(), Arc::new(f))
    }

    /// `S controls_T φ`.
    #[must_use]
    pub fn controls(s: Subject, when: impl Into<TimeRef>, f: Formula) -> Formula {
        Formula::Controls(s, when.into(), Arc::new(f))
    }

    /// `S says_T X`.
    #[must_use]
    pub fn says(s: Subject, when: impl Into<TimeRef>, m: Message) -> Formula {
        Formula::Says(s, when.into(), m)
    }

    /// `S said_T X`.
    #[must_use]
    pub fn said(s: Subject, when: impl Into<TimeRef>, m: Message) -> Formula {
        Formula::Said(s, when.into(), m)
    }

    /// `S received_T X`.
    #[must_use]
    pub fn received(s: Subject, when: impl Into<TimeRef>, m: Message) -> Formula {
        Formula::Received(s, when.into(), m)
    }

    /// `K ⇒_T S` (no observer subscript).
    #[must_use]
    pub fn key_speaks_for(key: KeyId, when: impl Into<TimeRef>, subject: Subject) -> Formula {
        Formula::KeySpeaksFor {
            key,
            when: when.into(),
            relative_to: None,
            subject,
        }
    }

    /// `K ⇒_{T,R} S` (with observer subscript `R`).
    #[must_use]
    pub fn key_speaks_for_at(
        key: KeyId,
        when: impl Into<TimeRef>,
        relative_to: PrincipalId,
        subject: Subject,
    ) -> Formula {
        Formula::KeySpeaksFor {
            key,
            when: when.into(),
            relative_to: Some(relative_to),
            subject,
        }
    }

    /// `S ⇒_T G` (no observer subscript).
    #[must_use]
    pub fn member_of(subject: Subject, when: impl Into<TimeRef>, group: GroupId) -> Formula {
        Formula::MemberOf {
            subject,
            when: when.into(),
            relative_to: None,
            group,
        }
    }

    /// `S ⇒_{T,R} G` (with observer subscript `R`).
    #[must_use]
    pub fn member_of_at(
        subject: Subject,
        when: impl Into<TimeRef>,
        relative_to: PrincipalId,
        group: GroupId,
    ) -> Formula {
        Formula::MemberOf {
            subject,
            when: when.into(),
            relative_to: Some(relative_to),
            group,
        }
    }

    /// `G says_T X`.
    #[must_use]
    pub fn group_says(group: GroupId, when: impl Into<TimeRef>, m: Message) -> Formula {
        Formula::GroupSays(group, when.into(), m)
    }

    /// `φ at_S T`.
    #[must_use]
    pub fn at(f: Formula, place: Subject, when: impl Into<TimeRef>) -> Formula {
        Formula::At(Arc::new(f), place, when.into())
    }

    /// Strips any number of outer `at_S T` wrappers (the reduction axiom A9
    /// allows this when time moves forward; the engine checks the side
    /// condition, this helper just unwraps).
    #[must_use]
    pub fn strip_at(&self) -> &Formula {
        match self {
            Formula::At(inner, _, _) => inner.strip_at(),
            other => other,
        }
    }

    /// `true` if this formula is a negation.
    #[must_use]
    pub fn is_negation(&self) -> bool {
        matches!(self, Formula::Not(_))
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Prop(p) => write!(f, "{p}"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Implies(a, b) => write!(f, "({a} ⊃ {b})"),
            Formula::TimeLe(a, b) => write!(f, "{a} ≤ {b}"),
            Formula::Believes(s, t, inner) => write!(f, "{s} believes_{t} {inner}"),
            Formula::Controls(s, t, inner) => write!(f, "{s} controls_{t} {inner}"),
            Formula::Says(s, t, m) => write!(f, "{s} says_{t} {m}"),
            Formula::Said(s, t, m) => write!(f, "{s} said_{t} {m}"),
            Formula::Received(s, t, m) => write!(f, "{s} received_{t} {m}"),
            Formula::KeySpeaksFor {
                key,
                when,
                relative_to,
                subject,
            } => match relative_to {
                Some(r) => write!(f, "{key} ⇒_{{{when},{r}}} {subject}"),
                None => write!(f, "{key} ⇒_{when} {subject}"),
            },
            Formula::Has(s, t, k) => write!(f, "{s} has_{t} {k}"),
            Formula::MemberOf {
                subject,
                when,
                relative_to,
                group,
            } => match relative_to {
                Some(r) => write!(f, "{subject} ⇒_{{{when},{r}}} {group}"),
                None => write!(f, "{subject} ⇒_{when} {group}"),
            },
            Formula::GroupSays(g, t, m) => write!(f, "{g} says_{t} {m}"),
            Formula::Fresh {
                observer,
                when,
                msg,
            } => write!(f, "fresh_{{{when},{observer}}} {msg}"),
            Formula::At(inner, place, when) => write!(f, "({inner} at_{place} {when})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u1() -> Subject {
        Subject::principal("User_D1")
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = Formula::says(u1(), Time(3), Message::data("write O"));
        assert_eq!(f.to_string(), "User_D1 says_t3 \"write O\"");

        let ksf = Formula::key_speaks_for_at(
            KeyId::new("K_u1"),
            TimeRef::Closed(Time(0), Time(9)),
            PrincipalId::new("CA1"),
            u1(),
        );
        assert_eq!(ksf.to_string(), "K_u1 ⇒_{[t0,t9],CA1} User_D1");

        let m = Formula::member_of(
            Subject::threshold(vec![u1(), Subject::principal("User_D2")], 2),
            Time(1),
            GroupId::new("G_write"),
        );
        assert_eq!(m.to_string(), "{User_D1, User_D2}_{2,2} ⇒_t1 G_write");
    }

    #[test]
    fn connective_display() {
        let a = Formula::Prop("a".into());
        let b = Formula::Prop("b".into());
        assert_eq!(Formula::and(a.clone(), b.clone()).to_string(), "(a ∧ b)");
        assert_eq!(Formula::implies(a.clone(), b).to_string(), "(a ⊃ b)");
        assert_eq!(Formula::not(a).to_string(), "¬a");
        assert_eq!(Formula::TimeLe(Time(1), Time(2)).to_string(), "t1 ≤ t2");
    }

    #[test]
    fn strip_at_unwraps_nesting() {
        let base = Formula::Prop("p".into());
        let wrapped = Formula::at(
            Formula::at(base.clone(), u1(), Time(1)),
            Subject::principal("P"),
            Time(2),
        );
        assert_eq!(wrapped.strip_at(), &base);
        assert_eq!(base.strip_at(), &base);
    }

    #[test]
    fn believes_nesting_displays() {
        let inner = Formula::group_says(GroupId::new("G_write"), Time(6), Message::data("write O"));
        let f = Formula::believes(Subject::principal("P"), Time(6), inner);
        assert_eq!(f.to_string(), "P believes_t6 G_write says_t6 \"write O\"");
    }

    #[test]
    fn formulas_hash_and_compare_structurally() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Formula::Prop("x".into()));
        assert!(set.contains(&Formula::Prop("x".into())));
        assert!(!set.contains(&Formula::Prop("y".into())));
    }

    #[test]
    fn is_negation() {
        assert!(Formula::not(Formula::Prop("p".into())).is_negation());
        assert!(!Formula::Prop("p".into()).is_negation());
    }
}
