//! Messages (paper Appendix A, rules M1–M3).
//!
//! Messages and formulas are defined by mutual induction: a formula is a
//! message (M1), primitive terms are messages (M2), and function images of
//! messages — tuples, signatures `⟨X⟩_{K⁻¹}`, encryptions `{X}_K` — are
//! messages (M3).

use core::fmt;
use std::sync::Arc;

use super::{Formula, KeyId, PrincipalId, Time};

/// A message of the logic.
///
/// Like [`Formula`], submessages sit behind [`Arc`] so clones are shallow.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Message {
    /// M1: a formula used as a message (e.g. the body of a certificate).
    Formula(Arc<Formula>),
    /// M2: an opaque data constant (e.g. `"write" O`).
    Data(String),
    /// M2: a principal name.
    Name(PrincipalId),
    /// M2: a time constant.
    TimeVal(Time),
    /// M2: a nonce.
    Nonce(u64),
    /// M3: a tuple `(X₁, …, Xₙ)`.
    Tuple(Vec<Message>),
    /// M3: a digital signature `⟨X⟩_{K⁻¹}` (message signed with the private
    /// key corresponding to `K`).
    Signed(Arc<Message>, KeyId),
    /// M3: an encryption `{X}_K`.
    Encrypted(Arc<Message>, KeyId),
}

impl Message {
    /// Data constant constructor.
    #[must_use]
    pub fn data(s: impl Into<String>) -> Message {
        Message::Data(s.into())
    }

    /// Wraps a formula as a message.
    #[must_use]
    pub fn formula(f: Formula) -> Message {
        Message::Formula(Arc::new(f))
    }

    /// Signs this message with (the private counterpart of) `key`.
    #[must_use]
    pub fn signed(self, key: KeyId) -> Message {
        Message::Signed(Arc::new(self), key)
    }

    /// Encrypts this message under `key`.
    #[must_use]
    pub fn encrypted(self, key: KeyId) -> Message {
        Message::Encrypted(Arc::new(self), key)
    }

    /// If this is a signed message, its payload and signing key.
    #[must_use]
    pub fn as_signed(&self) -> Option<(&Message, &KeyId)> {
        match self {
            Message::Signed(inner, k) => Some((inner, k)),
            _ => None,
        }
    }

    /// If this is (or wraps) a formula, that formula.
    #[must_use]
    pub fn as_formula(&self) -> Option<&Formula> {
        match self {
            Message::Formula(f) => Some(f),
            _ => None,
        }
    }

    /// The set of submessages derivable with decryption keys `keys`
    /// (the paper's `submsgs_K(M)`): the message itself, tuple components,
    /// signed payloads, and encrypted payloads for keys we can invert.
    #[must_use]
    pub fn submessages(&self, decryption_keys: &[KeyId]) -> Vec<&Message> {
        let mut out = vec![self];
        match self {
            Message::Tuple(parts) => {
                for p in parts {
                    out.extend(p.submessages(decryption_keys));
                }
            }
            Message::Signed(inner, _) => out.extend(inner.submessages(decryption_keys)),
            Message::Encrypted(inner, k) if decryption_keys.contains(k) => {
                out.extend(inner.submessages(decryption_keys));
            }
            _ => {}
        }
        out
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Formula(inner) => write!(f, "{inner}"),
            Message::Data(s) => write!(f, "\"{s}\""),
            Message::Name(p) => write!(f, "{p}"),
            Message::TimeVal(t) => write!(f, "{t}"),
            Message::Nonce(n) => write!(f, "nonce#{n}"),
            Message::Tuple(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Message::Signed(inner, k) => write!(f, "⟨{inner}⟩_{{{k}⁻¹}}"),
            Message::Encrypted(inner, k) => write!(f, "{{{inner}}}_{{{k}}}"),
        }
    }
}

impl From<Formula> for Message {
    fn from(f: Formula) -> Self {
        Message::formula(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> KeyId {
        KeyId::new(s)
    }

    #[test]
    fn display_signed_and_encrypted() {
        let m = Message::data("write O").signed(k("Ku1"));
        assert_eq!(m.to_string(), "⟨\"write O\"⟩_{Ku1⁻¹}");
        let e = Message::data("secret").encrypted(k("Kp"));
        assert_eq!(e.to_string(), "{\"secret\"}_{Kp}");
    }

    #[test]
    fn as_signed_unwraps() {
        let m = Message::data("x").signed(k("K"));
        let (inner, key) = m.as_signed().expect("signed");
        assert_eq!(inner, &Message::data("x"));
        assert_eq!(key, &k("K"));
        assert!(Message::data("x").as_signed().is_none());
    }

    #[test]
    fn submessages_opens_tuples_and_signatures() {
        let m = Message::Tuple(vec![Message::data("a"), Message::data("b").signed(k("K"))]);
        let subs = m.submessages(&[]);
        assert!(subs.contains(&&Message::data("a")));
        assert!(subs.contains(&&Message::data("b")));
        assert!(subs.contains(&&Message::data("b").signed(k("K"))));
    }

    #[test]
    fn submessages_respects_encryption() {
        let m = Message::data("hidden").encrypted(k("K"));
        assert!(!m.submessages(&[]).contains(&&Message::data("hidden")));
        assert!(m.submessages(&[k("K")]).contains(&&Message::data("hidden")));
    }

    #[test]
    fn nested_encryption_needs_both_keys() {
        let m = Message::data("deep").encrypted(k("K1")).encrypted(k("K2"));
        assert!(!m.submessages(&[k("K2")]).contains(&&Message::data("deep")));
        assert!(m
            .submessages(&[k("K1"), k("K2")])
            .contains(&&Message::data("deep")));
    }

    #[test]
    fn tuple_display() {
        let m = Message::Tuple(vec![Message::data("a"), Message::Nonce(7)]);
        assert_eq!(m.to_string(), "(\"a\", nonce#7)");
    }
}
