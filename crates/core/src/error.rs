//! Error type for the logic engine.

use core::fmt;

/// Errors raised by the derivation engine and authorization protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A received message did not have the expected shape (e.g. an identity
    /// certificate whose payload is not a key-ownership formula).
    MalformedMessage(String),
    /// No trust assumption covers the needed jurisdiction step.
    NoJurisdiction(String),
    /// A freshness check failed (timestamp outside the acceptance window).
    Stale(String),
    /// The goal could not be derived from the current beliefs.
    NotDerivable(String),
    /// A clock advance tried to move the observer's local time backwards
    /// (runs are monotone, Appendix C).
    ClockRegression(String),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::MalformedMessage(m) => write!(f, "malformed message: {m}"),
            LogicError::NoJurisdiction(m) => write!(f, "no jurisdiction: {m}"),
            LogicError::Stale(m) => write!(f, "stale message: {m}"),
            LogicError::NotDerivable(m) => write!(f, "not derivable: {m}"),
            LogicError::ClockRegression(m) => write!(f, "clock regression: {m}"),
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LogicError::Stale("t too old".into()).to_string(),
            "stale message: t too old"
        );
        assert!(LogicError::NotDerivable("g".into())
            .to_string()
            .starts_with("not derivable"));
    }
}
