//! Derivation trees: machine-checkable proofs produced by the engine.
//!
//! A derivation mirrors the numbered statement sequences of the paper
//! (Appendix E statements 12–25): every node records the formula concluded
//! and the rule that justified it, with premises as children.

use core::fmt;
use std::sync::Arc;

use crate::axioms::Axiom;
use crate::syntax::Formula;

/// The justification attached to a derivation node.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Rule {
    /// An axiom schema application.
    Axiom(Axiom),
    /// An initial belief of the verifier (a trust assumption), with a label
    /// such as `"Statement 1"`.
    InitialBelief(String),
    /// A message received on the wire (certificates, signed requests).
    Received(String),
    /// A side condition checked outside the logic (e.g. an ACL lookup or a
    /// timestamp freshness window).
    SideCondition(String),
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Axiom(a) => write!(f, "axiom {a}"),
            Rule::InitialBelief(label) => write!(f, "initial belief ({label})"),
            Rule::Received(label) => write!(f, "received ({label})"),
            Rule::SideCondition(label) => write!(f, "side condition ({label})"),
        }
    }
}

/// A proof tree: conclusion, justification, premises.
///
/// Premises are shared via [`Arc`]: the engine reuses the same belief
/// sub-proofs across many conclusions, so a premise is a reference-count
/// bump rather than a subtree copy. Rendering and traversal are unchanged
/// (an `Arc<Derivation>` dereferences like a `Derivation`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Derivation {
    /// The formula this node concludes.
    pub conclusion: Formula,
    /// How it was concluded.
    pub rule: Rule,
    /// Sub-derivations for the premises.
    pub premises: Vec<Arc<Derivation>>,
}

impl Derivation {
    /// A leaf node (no premises).
    #[must_use]
    pub fn leaf(conclusion: Formula, rule: Rule) -> Self {
        Derivation {
            conclusion,
            rule,
            premises: Vec::new(),
        }
    }

    /// An axiom application over premises.
    #[must_use]
    pub fn by_axiom(conclusion: Formula, axiom: Axiom, premises: Vec<Arc<Derivation>>) -> Self {
        Derivation {
            conclusion,
            rule: Rule::Axiom(axiom),
            premises,
        }
    }

    /// Wraps this derivation for sharing as a premise.
    #[must_use]
    pub fn share(self) -> Arc<Derivation> {
        Arc::new(self)
    }

    /// Total number of nodes in the tree.
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.premises.iter().map(|p| p.size()).sum::<usize>()
    }

    /// Number of axiom applications in the tree (experiment E8's cost
    /// metric).
    #[must_use]
    pub fn axiom_applications(&self) -> usize {
        let own = usize::from(matches!(self.rule, Rule::Axiom(_)));
        own + self
            .premises
            .iter()
            .map(|p| p.axiom_applications())
            .sum::<usize>()
    }

    /// All distinct axioms used, in first-use order.
    #[must_use]
    pub fn axioms_used(&self) -> Vec<Axiom> {
        let mut out = Vec::new();
        self.collect_axioms(&mut out);
        out
    }

    fn collect_axioms(&self, out: &mut Vec<Axiom>) {
        for p in &self.premises {
            p.collect_axioms(out);
        }
        if let Rule::Axiom(a) = self.rule {
            if !out.contains(&a) {
                out.push(a);
            }
        }
    }

    /// Renders the proof as an indented listing (premises above
    /// conclusions, like the paper's statement sequences).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for p in &self.premises {
            p.render_into(out, depth + 1);
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{}   [{}]\n", self.conclusion, self.rule));
    }

    /// Renders the proof as a numbered statement sequence in the style of
    /// the paper's Appendix E ("12. P believes … [A10 on 11, 6]"): each
    /// line cites the numbers of its premises.
    #[must_use]
    pub fn render_numbered(&self) -> String {
        let mut out = String::new();
        let mut counter = 0usize;
        self.number_into(&mut out, &mut counter);
        out
    }

    fn number_into(&self, out: &mut String, counter: &mut usize) -> usize {
        let premise_ids: Vec<usize> = self
            .premises
            .iter()
            .map(|p| p.number_into(out, counter))
            .collect();
        *counter += 1;
        let id = *counter;
        let citation = if premise_ids.is_empty() {
            format!("[{}]", self.rule)
        } else {
            let nums: Vec<String> = premise_ids.iter().map(ToString::to_string).collect();
            format!("[{} on {}]", self.rule, nums.join(", "))
        };
        out.push_str(&format!("{id:>3}. {}   {citation}\n", self.conclusion));
        id
    }

    /// Depth-first iterator over all conclusions in the tree.
    #[must_use]
    pub fn conclusions(&self) -> Vec<&Formula> {
        let mut out = Vec::new();
        self.collect_conclusions(&mut out);
        out
    }

    fn collect_conclusions<'a>(&'a self, out: &mut Vec<&'a Formula>) {
        for p in &self.premises {
            p.collect_conclusions(out);
        }
        out.push(&self.conclusion);
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Message, Subject, Time};

    fn prop(s: &str) -> Formula {
        Formula::Prop(s.into())
    }

    fn sample() -> Derivation {
        let leaf1 = Derivation::leaf(prop("a"), Rule::InitialBelief("Statement 1".into())).share();
        let leaf2 = Derivation::leaf(prop("b"), Rule::Received("Message 1-1".into())).share();
        let mid = Derivation::by_axiom(prop("c"), Axiom::A10, vec![leaf1, leaf2]).share();
        Derivation::by_axiom(prop("d"), Axiom::A22, vec![mid])
    }

    #[test]
    fn size_and_axiom_count() {
        let d = sample();
        assert_eq!(d.size(), 4);
        assert_eq!(d.axiom_applications(), 2);
    }

    #[test]
    fn axioms_used_in_first_use_order() {
        let d = sample();
        assert_eq!(d.axioms_used(), vec![Axiom::A10, Axiom::A22]);
    }

    #[test]
    fn render_lists_premises_before_conclusion() {
        let text = sample().render();
        let pos_a = text.find("a   [").expect("a");
        let pos_c = text.find("c   [axiom A10]").expect("c");
        let pos_d = text.find("d   [axiom A22]").expect("d");
        assert!(pos_a < pos_c && pos_c < pos_d);
    }

    #[test]
    fn conclusions_enumerates_all_nodes() {
        let d = sample();
        let cs = d.conclusions();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs.last(), Some(&&prop("d")));
    }

    #[test]
    fn numbered_rendering_cites_premises() {
        let text = sample().render_numbered();
        // Leaves first, conclusion last; the final line cites statement 3.
        assert!(text.contains("  1. a   [initial belief (Statement 1)]"));
        assert!(text.contains("  2. b   [received (Message 1-1)]"));
        assert!(text.contains("  3. c   [axiom A10 on 1, 2]"));
        assert!(text.contains("  4. d   [axiom A22 on 3]"));
    }

    #[test]
    fn display_of_rules() {
        assert_eq!(Rule::Axiom(Axiom::A38).to_string(), "axiom A38");
        assert_eq!(
            Rule::SideCondition("ACL check".into()).to_string(),
            "side condition (ACL check)"
        );
    }

    #[test]
    fn leaf_with_real_formula() {
        let f = Formula::says(Subject::principal("U"), Time(1), Message::data("x"));
        let d = Derivation::leaf(f.clone(), Rule::Received("request".into()));
        assert_eq!(d.conclusion, f);
        assert_eq!(d.axiom_applications(), 0);
    }
}
