//! The authorization protocol (§4.3 / Appendix E).
//!
//! Server `P` verifies an access request in the paper's four steps:
//!
//! 1. **Verify the signing keys** — admit the identity certificates,
//!    deriving `P believes (K_uᵢ ⇒ [tb,te],CAᵢ User_Dᵢ)` (statements
//!    12–17).
//! 2. **Establish group membership** — admit the (threshold) attribute
//!    certificate, deriving `P believes (CP′_{m,n} ⇒ [tb′,te′],AA G)`
//!    (statements 18–22).
//! 3. **Verify the signed request** — authenticate each signer's statement
//!    with A10 and combine them with the access-control axiom (A38 for
//!    thresholds, A35/A34 for single subjects), deriving
//!    `P believes (G says "op" O)` (statements 23–25).
//! 4. **Verify the ACL** — if the validity windows cover the request and
//!    `(G, op) ∈ ACL_O`, access is approved.

use core::fmt;
use std::sync::Arc;

use crate::axioms::Axiom;
use crate::derivation::{Derivation, Rule};
use crate::engine::{Belief, Engine};
use crate::syntax::{Formula, GroupId, KeyId, Message, PrincipalId, Subject, Time};
use crate::LogicError;

/// An operation on an object, e.g. `"write" Object O`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    /// The action (`"read"`, `"write"`, `"set-policy"`, …).
    pub action: String,
    /// The object (`"Object O"`, an ACL name, …).
    pub object: String,
}

impl Operation {
    /// Creates an operation.
    #[must_use]
    pub fn new(action: impl Into<String>, object: impl Into<String>) -> Self {
        Operation {
            action: action.into(),
            object: object.into(),
        }
    }

    /// The canonical message payload for this operation (the paper's
    /// `"write" O`).
    #[must_use]
    pub fn payload(&self) -> Message {
        Message::data(format!("\"{}\" {}", self.action, self.object))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\" {}", self.action, self.object)
    }
}

/// One signer's component of a joint access request (Message 1-4):
/// `⟨User_Dᵢ says_{tᵢ} "op" O⟩_{K_uᵢ⁻¹}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedStatement {
    /// The claimed signer.
    pub principal: PrincipalId,
    /// The signing key.
    pub key: KeyId,
    /// Time of the statement on the signer's clock.
    pub at: Time,
    /// The signed message.
    pub message: Message,
}

impl SignedStatement {
    /// Builds the canonical signed statement for `op` by `principal` with
    /// `key` at time `t`.
    #[must_use]
    pub fn new(principal: impl Into<PrincipalId>, key: KeyId, op: &Operation, at: Time) -> Self {
        let principal = principal.into();
        let inner = Formula::says(Subject::Principal(principal.clone()), at, op.payload());
        SignedStatement {
            principal,
            key: key.clone(),
            at,
            message: Message::formula(inner).signed(key),
        }
    }
}

/// A joint access request, as assembled by the requestor (Figure 2(b)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRequest {
    /// Identity certificates for the signers (Messages 1-1, 1-2).
    pub identity_certs: Vec<Message>,
    /// Attribute certificates, usually one threshold AC (Message 1-3).
    pub attribute_certs: Vec<Message>,
    /// The signed request components (Message 1-4).
    pub signed_statements: Vec<SignedStatement>,
    /// The requested operation.
    pub operation: Operation,
    /// Submission time `t1`.
    pub at: Time,
}

/// One ACL expression `Eᵢ = (G, access permission)` (§4.3: "The ACL is a
/// simple disjunction of expressions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclEntry {
    /// The group.
    pub group: GroupId,
    /// The permitted action.
    pub action: String,
}

/// An object's ACL: a disjunction of `(group, permission)` expressions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acl {
    entries: Vec<AclEntry>,
}

impl Acl {
    /// An empty ACL (denies everything).
    #[must_use]
    pub fn new() -> Self {
        Acl::default()
    }

    /// Adds an entry.
    pub fn permit(&mut self, group: GroupId, action: impl Into<String>) -> &mut Self {
        self.entries.push(AclEntry {
            group,
            action: action.into(),
        });
        self
    }

    /// Groups permitted to perform `action`.
    #[must_use]
    pub fn groups_for(&self, action: &str) -> Vec<&GroupId> {
        self.entries
            .iter()
            .filter(|e| e.action == action)
            .map(|e| &e.group)
            .collect()
    }

    /// `true` if `(group, action)` is an entry.
    #[must_use]
    pub fn permits(&self, group: &GroupId, action: &str) -> bool {
        self.entries
            .iter()
            .any(|e| &e.group == group && e.action == action)
    }

    /// All entries.
    #[must_use]
    pub fn entries(&self) -> &[AclEntry] {
        &self.entries
    }
}

/// Why a request was denied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenialReason {
    /// A certificate failed admission (step 1/2).
    CertificateRejected(String),
    /// No believed group membership authorizes the operation (step 2/4).
    NoAuthorizingMembership(String),
    /// Signed statements don't satisfy the membership structure (step 3).
    RequestNotProven(String),
}

impl fmt::Display for DenialReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenialReason::CertificateRejected(m) => write!(f, "certificate rejected: {m}"),
            DenialReason::NoAuthorizingMembership(m) => {
                write!(f, "no authorizing membership: {m}")
            }
            DenialReason::RequestNotProven(m) => write!(f, "request not proven: {m}"),
        }
    }
}

/// The outcome of running the authorization protocol.
#[derive(Debug, Clone)]
pub struct AccessDecision {
    /// Whether access is approved.
    pub granted: bool,
    /// The denial reason when `granted` is false.
    pub reason: Option<DenialReason>,
    /// The full proof tree when granted (shared, so cloning a decision —
    /// e.g. replaying it from the derivation memo — is cheap).
    pub derivation: Option<Arc<Derivation>>,
    /// The authorizing group when granted.
    pub group: Option<GroupId>,
    /// Axiom applications spent on this request (E8 cost metric).
    pub axiom_applications: usize,
}

impl AccessDecision {
    fn denied(reason: DenialReason, cost: usize) -> Self {
        AccessDecision {
            granted: false,
            reason: Some(reason),
            derivation: None,
            group: None,
            axiom_applications: cost,
        }
    }
}

/// Runs the four-step authorization protocol for `request` against `acl`.
///
/// ```
/// use jaap_core::prelude::*;
///
/// // Initial beliefs: one CA and the AA's shared key held 3-of-3.
/// let mut assumptions = TrustAssumptions::new(Time(0));
/// assumptions.own_key(KeyId::new("K_CA1"), Subject::principal("CA1"));
/// assumptions.identity_authority("CA1");
/// assumptions.own_key(
///     KeyId::new("K_AA"),
///     Subject::threshold(vec![
///         Subject::principal("D1"), Subject::principal("D2"), Subject::principal("D3"),
///     ], 3),
/// );
/// assumptions.group_authority("AA");
/// let mut engine = Engine::new("P", assumptions);
/// engine.advance_clock(Time(10)).expect("clock");
///
/// // A read request: identity cert + 1-of-3 threshold AC + one signature.
/// let op = Operation::new("read", "Object O");
/// let cp = Subject::threshold(
///     vec![Subject::principal("User_D1").bound(KeyId::new("K_u1"))], 1);
/// let request = AccessRequest {
///     identity_certs: vec![Certs::identity(
///         "CA1", KeyId::new("K_CA1"), KeyId::new("K_u1"), "User_D1",
///         Time(2), Validity::new(Time(0), Time(100)))],
///     attribute_certs: vec![Certs::threshold_attribute(
///         "AA", KeyId::new("K_AA"), cp, GroupId::new("G_read"),
///         Time(3), Validity::new(Time(0), Time(100)))],
///     signed_statements: vec![SignedStatement::new(
///         "User_D1", KeyId::new("K_u1"), &op, Time(10))],
///     operation: op,
///     at: Time(10),
/// };
/// let mut acl = Acl::new();
/// acl.permit(GroupId::new("G_read"), "read");
/// let decision = jaap_core::protocol::authorize(&mut engine, &request, &acl);
/// assert!(decision.granted);
/// ```
///
/// Certificates are admitted into `engine` (idempotently re-deriving
/// beliefs); the decision reflects the engine's beliefs *including any
/// previously admitted revocations* (believe-until-revoked).
///
/// When the engine's derivation memo is on
/// ([`Engine::set_derivation_memo`]), a request whose interned
/// certificate/statement set, operation, ACL, clock and belief epoch all
/// match a previous run replays that decision without re-running axiom
/// search. Any belief change (certificate admission, revocation/CRL,
/// freshness-window move) bumps the epoch and clears the memo first, so a
/// replayed decision is always one the current belief state would
/// re-derive verbatim.
#[must_use]
pub fn authorize(engine: &mut Engine, request: &AccessRequest, acl: &Acl) -> AccessDecision {
    if !engine.memo_enabled() {
        return authorize_uncached(engine, request, acl);
    }
    let key = engine.memo_key(request, acl);
    if let Some(hit) = engine.memo_lookup(&key) {
        return hit;
    }
    let decision = authorize_uncached(engine, request, acl);
    // Store under the *post-run* epoch: the first run of a request admits
    // its certificates, which bumps the epoch (clearing the memo); once
    // the beliefs are in, re-running the same request is a no-op on the
    // belief state and the key is stable.
    engine.memo_store(request, acl, decision.clone());
    decision
}

/// The un-memoized four-step protocol (the reference path; `authorize`
/// delegates here on a memo miss or when the memo is off).
#[must_use]
pub fn authorize_uncached(
    engine: &mut Engine,
    request: &AccessRequest,
    acl: &Acl,
) -> AccessDecision {
    let cost_before = engine.axiom_applications();

    // Step 1: verify the signing keys (admit identity certificates).
    for cert in &request.identity_certs {
        if let Err(e) = engine.admit_certificate(cert) {
            return AccessDecision::denied(
                DenialReason::CertificateRejected(format!("identity certificate: {e}")),
                engine.axiom_applications() - cost_before,
            );
        }
    }

    // Step 2: establish group membership (admit attribute certificates).
    for cert in &request.attribute_certs {
        if let Err(e) = engine.admit_certificate(cert) {
            return AccessDecision::denied(
                DenialReason::CertificateRejected(format!("attribute certificate: {e}")),
                engine.axiom_applications() - cost_before,
            );
        }
    }

    // Step 3: verify the signed request components.
    let mut signers = Vec::new();
    for stmt in &request.signed_statements {
        match engine.authenticate_signed_statement(&stmt.message, stmt.at) {
            Ok(auth) => signers.push(auth),
            Err(e) => {
                return AccessDecision::denied(
                    DenialReason::RequestNotProven(format!("signer {}: {e}", stmt.principal)),
                    engine.axiom_applications() - cost_before,
                )
            }
        }
    }

    // Steps 3b+4: find an ACL group whose believed membership the signers
    // satisfy, with validity covering both t1 and the decision time.
    let candidates = acl.groups_for(&request.operation.action);
    if candidates.is_empty() {
        return AccessDecision::denied(
            DenialReason::NoAuthorizingMembership(format!(
                "no ACL entry permits \"{}\"",
                request.operation.action
            )),
            engine.axiom_applications() - cost_before,
        );
    }
    let mut last_err = String::new();
    for group in candidates {
        // Signer-directed candidate search: only a membership whose
        // subject names one of the request's signers can complete
        // A34/A35/A38, so candidates come from the engine's
        // (group, principal) index — never a scan of the group's full
        // roster. Each candidate's validity must cover both the claimed
        // time and the decision time (paper: tb' <= t1 and t6 <= te'),
        // and survive revocation at both.
        let mut rows: Vec<(Subject, Belief)> = Vec::new();
        let mut valid_at_claim = false;
        for (principal, _, _) in &signers {
            for (subject, when, belief) in engine.memberships_naming(group, principal) {
                if !when.covers(request.at)
                    || engine.is_membership_revoked(subject, group, request.at)
                {
                    continue;
                }
                valid_at_claim = true;
                if !when.covers(engine.now())
                    || engine.is_membership_revoked(subject, group, engine.now())
                    || rows.iter().any(|(s, _)| s == subject)
                {
                    continue;
                }
                rows.push((subject.clone(), belief.clone()));
            }
        }
        if rows.is_empty() {
            last_err = if valid_at_claim {
                format!(
                    "membership in {group} expired or revoked by {}",
                    engine.now()
                )
            } else {
                format!(
                    "no valid membership in {group} names a request signer at {}",
                    request.at
                )
            };
            continue;
        }
        for (subject, belief) in rows {
            match conclude_group_says(engine, &subject, &belief, group, request, signers.clone()) {
                Ok(group_says) => {
                    let grant = Formula::Prop(format!(
                        "access approved: {} via {group}",
                        request.operation
                    ));
                    let acl_node = Derivation {
                        conclusion: grant,
                        rule: Rule::SideCondition(format!(
                            "({group}, {}) ∈ ACL and validity covers [{}, {}]",
                            request.operation,
                            request.at,
                            engine.now()
                        )),
                        premises: vec![group_says],
                    };
                    return AccessDecision {
                        granted: true,
                        reason: None,
                        derivation: Some(Arc::new(acl_node)),
                        group: Some(group.clone()),
                        axiom_applications: engine.axiom_applications() - cost_before,
                    };
                }
                Err(e) => last_err = e.to_string(),
            }
        }
    }
    AccessDecision::denied(
        DenialReason::RequestNotProven(last_err),
        engine.axiom_applications() - cost_before,
    )
}

/// Applies the right access-control axiom (A34/A35/A38) to conclude
/// `G says "op" O`.
fn conclude_group_says(
    engine: &mut Engine,
    subject: &Subject,
    membership: &Belief,
    group: &GroupId,
    request: &AccessRequest,
    signers: Vec<(PrincipalId, KeyId, Arc<Derivation>)>,
) -> Result<Arc<Derivation>, LogicError> {
    let payload = request.operation.payload();
    match subject {
        Subject::Threshold { .. } => {
            engine.apply_a38(membership, subject, group, engine.now(), &payload, signers)
        }
        Subject::Bound(inner, key) => {
            // A35: Q|K ⇒ G ∧ K ⇒ Q ∧ Q says ⟨X⟩_{K⁻¹} ⊃ G says X.
            let principal = inner.principal_id().ok_or_else(|| {
                LogicError::NotDerivable("bound subject is not a single principal".into())
            })?;
            let signer = signers
                .into_iter()
                .find(|(p, k, _)| p == principal && k == key)
                .ok_or_else(|| {
                    LogicError::NotDerivable(format!(
                        "no signed statement by {principal} with {key}"
                    ))
                })?;
            let conclusion = Formula::group_says(group.clone(), engine.now(), payload);
            Ok(Derivation::by_axiom(
                conclusion,
                Axiom::A35,
                vec![Arc::clone(&membership.derivation), signer.2],
            )
            .share())
        }
        Subject::Principal(principal) => {
            // A34: Q ⇒ G ∧ Q says X ⊃ G says X.
            let signer = signers
                .into_iter()
                .find(|(p, _, _)| p == principal)
                .ok_or_else(|| {
                    LogicError::NotDerivable(format!("no signed statement by {principal}"))
                })?;
            let conclusion = Formula::group_says(group.clone(), engine.now(), payload);
            Ok(Derivation::by_axiom(
                conclusion,
                Axiom::A34,
                vec![Arc::clone(&membership.derivation), signer.2],
            )
            .share())
        }
        Subject::Compound(_) => Err(LogicError::NotDerivable(
            "plain compound memberships need a joint signature under the compound's shared key \
             (A36/A37), which application servers receive as a single key-bound subject"
                .into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::{Certs, Validity};
    use crate::engine::TrustAssumptions;
    use crate::syntax::TimeRef;

    fn k(s: &str) -> KeyId {
        KeyId::new(s)
    }

    fn users_cp(m: usize) -> Subject {
        Subject::threshold(
            vec![
                Subject::principal("User_D1").bound(k("K_u1")),
                Subject::principal("User_D2").bound(k("K_u2")),
                Subject::principal("User_D3").bound(k("K_u3")),
            ],
            m,
        )
    }

    fn scenario() -> (Engine, Acl) {
        let mut a = TrustAssumptions::new(Time(0));
        for i in 1..=3 {
            a.own_key(k(&format!("K_CA{i}")), Subject::principal(format!("CA{i}")));
            a.identity_authority(format!("CA{i}"));
        }
        a.own_key(
            k("K_AA"),
            Subject::threshold(
                vec![
                    Subject::principal("D1"),
                    Subject::principal("D2"),
                    Subject::principal("D3"),
                ],
                3,
            ),
        );
        a.own_key(k("K_AA"), Subject::principal("AA"));
        a.group_authority("AA");
        a.own_key(k("K_RA"), Subject::principal("RA"));
        a.revocation_authority("RA", "AA");
        let mut e = Engine::new("P", a);
        e.advance_clock(Time(10)).expect("clock");
        let mut acl = Acl::new();
        acl.permit(GroupId::new("G_write"), "write");
        acl.permit(GroupId::new("G_read"), "read");
        (e, acl)
    }

    fn id_cert(i: usize) -> Message {
        Certs::identity(
            format!("CA{i}"),
            k(&format!("K_CA{i}")),
            k(&format!("K_u{i}")),
            format!("User_D{i}"),
            Time(5),
            Validity::new(Time(0), Time(100)),
        )
    }

    fn write_ac() -> Message {
        Certs::threshold_attribute(
            "AA",
            k("K_AA"),
            users_cp(2),
            GroupId::new("G_write"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        )
    }

    fn read_ac() -> Message {
        Certs::threshold_attribute(
            "AA",
            k("K_AA"),
            users_cp(1),
            GroupId::new("G_read"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        )
    }

    fn write_request(signers: &[usize]) -> AccessRequest {
        let op = Operation::new("write", "Object O");
        AccessRequest {
            identity_certs: signers.iter().map(|&i| id_cert(i)).collect(),
            attribute_certs: vec![write_ac()],
            signed_statements: signers
                .iter()
                .map(|&i| {
                    SignedStatement::new(format!("User_D{i}"), k(&format!("K_u{i}")), &op, Time(9))
                })
                .collect(),
            operation: op,
            at: Time(9),
        }
    }

    #[test]
    fn figure_2b_write_with_two_signers_approved() {
        let (mut e, acl) = scenario();
        let decision = authorize(&mut e, &write_request(&[1, 2]), &acl);
        assert!(decision.granted, "reason: {:?}", decision.reason);
        assert_eq!(decision.group, Some(GroupId::new("G_write")));
        let d = decision.derivation.expect("proof");
        let used = d.axioms_used();
        assert!(used.contains(&Axiom::A10));
        assert!(used.contains(&Axiom::A38));
        assert!(decision.axiom_applications > 0);
    }

    #[test]
    fn write_with_one_signer_denied() {
        let (mut e, acl) = scenario();
        let decision = authorize(&mut e, &write_request(&[1]), &acl);
        assert!(!decision.granted);
        assert!(matches!(
            decision.reason,
            Some(DenialReason::RequestNotProven(_))
        ));
    }

    #[test]
    fn figure_2d_read_with_one_signer_approved() {
        let (mut e, acl) = scenario();
        let op = Operation::new("read", "Object O");
        let request = AccessRequest {
            identity_certs: vec![id_cert(3)],
            attribute_certs: vec![read_ac()],
            signed_statements: vec![SignedStatement::new("User_D3", k("K_u3"), &op, Time(9))],
            operation: op,
            at: Time(9),
        };
        let decision = authorize(&mut e, &request, &acl);
        assert!(decision.granted, "reason: {:?}", decision.reason);
        assert_eq!(decision.group, Some(GroupId::new("G_read")));
    }

    #[test]
    fn every_member_of_a_large_group_can_authorize() {
        // Regression: with many believed memberships in one group, the
        // derivation must try the membership naming the request's signer,
        // not whichever membership was admitted first. (Found at 10⁴
        // principals in E21, where all but the first member were denied.)
        let (mut e, acl) = scenario();
        let op = Operation::new("read", "Object O");
        for i in 1..=3 {
            let member = Subject::principal(format!("User_D{i}")).bound(k(&format!("K_u{i}")));
            let request = AccessRequest {
                identity_certs: vec![id_cert(i)],
                attribute_certs: vec![Certs::attribute(
                    "AA",
                    k("K_AA"),
                    member,
                    GroupId::new("G_read"),
                    Time(6),
                    Validity::new(Time(0), Time(100)),
                )],
                signed_statements: vec![SignedStatement::new(
                    format!("User_D{i}"),
                    k(&format!("K_u{i}")),
                    &op,
                    Time(9),
                )],
                operation: op.clone(),
                at: Time(9),
            };
            let decision = authorize(&mut e, &request, &acl);
            assert!(decision.granted, "member {i} denied: {:?}", decision.reason);
        }
        // Later requests carry only the signer's own certificates, yet
        // the engine now believes three G_read memberships; each signer
        // must still be matched to their own.
        for i in (1..=3).rev() {
            let request = AccessRequest {
                identity_certs: vec![id_cert(i)],
                attribute_certs: vec![],
                signed_statements: vec![SignedStatement::new(
                    format!("User_D{i}"),
                    k(&format!("K_u{i}")),
                    &op,
                    Time(9),
                )],
                operation: op.clone(),
                at: Time(9),
            };
            let decision = authorize(&mut e, &request, &acl);
            assert!(
                decision.granted,
                "believed member {i} denied: {:?}",
                decision.reason
            );
        }
    }

    #[test]
    fn wrong_key_denied() {
        let (mut e, acl) = scenario();
        let op = Operation::new("write", "Object O");
        let mut req = write_request(&[1, 2]);
        // User_D2 signs with User_D3's key (no identity cert covers it).
        req.signed_statements[1] = SignedStatement::new("User_D2", k("K_u3"), &op, Time(9));
        let decision = authorize(&mut e, &req, &acl);
        assert!(!decision.granted);
    }

    #[test]
    fn action_not_on_acl_denied() {
        let (mut e, _) = scenario();
        let empty = Acl::new();
        let decision = authorize(&mut e, &write_request(&[1, 2]), &empty);
        assert!(matches!(
            decision.reason,
            Some(DenialReason::NoAuthorizingMembership(_))
        ));
    }

    #[test]
    fn revoked_threshold_ac_denies_access() {
        let (mut e, acl) = scenario();
        // Grant once.
        let decision = authorize(&mut e, &write_request(&[1, 2]), &acl);
        assert!(decision.granted);
        // RA revokes the threshold AC at t12.
        e.advance_clock(Time(12)).expect("clock");
        let rev = Certs::attribute_revocation(
            "RA",
            k("K_RA"),
            users_cp(2),
            GroupId::new("G_write"),
            Time(12),
            Time(12),
        );
        e.admit_certificate(&rev).expect("revocation");
        // Same request now denied (request time after revocation).
        let mut req = write_request(&[1, 2]);
        req.at = Time(13);
        req.signed_statements = req
            .signed_statements
            .iter()
            .map(|s| {
                SignedStatement::new(s.principal.clone(), s.key.clone(), &req.operation, Time(13))
            })
            .collect();
        e.advance_clock(Time(13)).expect("clock");
        let decision = authorize(&mut e, &req, &acl);
        assert!(!decision.granted);
    }

    #[test]
    fn expired_ac_denied_at_decision_time() {
        let (mut e, acl) = scenario();
        // AC valid only until t15; decision at t20.
        let short_ac = Certs::threshold_attribute(
            "AA",
            k("K_AA"),
            users_cp(2),
            GroupId::new("G_write"),
            Time(6),
            Validity::new(Time(0), Time(15)),
        );
        e.advance_clock(Time(20)).expect("clock");
        let op = Operation::new("write", "Object O");
        let request = AccessRequest {
            identity_certs: vec![id_cert(1), id_cert(2)],
            attribute_certs: vec![short_ac],
            signed_statements: vec![
                SignedStatement::new("User_D1", k("K_u1"), &op, Time(12)),
                SignedStatement::new("User_D2", k("K_u2"), &op, Time(12)),
            ],
            operation: op,
            at: Time(12),
        };
        let decision = authorize(&mut e, &request, &acl);
        assert!(!decision.granted, "membership must cover decision time");
    }

    #[test]
    fn single_subject_attribute_cert_via_a35() {
        let (mut e, mut acl) = scenario();
        acl.permit(GroupId::new("G_admin"), "set-policy");
        let ac = Certs::attribute(
            "AA",
            k("K_AA"),
            Subject::principal("User_D1").bound(k("K_u1")),
            GroupId::new("G_admin"),
            Time(6),
            Validity::new(Time(0), Time(100)),
        );
        let op = Operation::new("set-policy", "ACL_O");
        let request = AccessRequest {
            identity_certs: vec![id_cert(1)],
            attribute_certs: vec![ac],
            signed_statements: vec![SignedStatement::new("User_D1", k("K_u1"), &op, Time(9))],
            operation: op,
            at: Time(9),
        };
        let decision = authorize(&mut e, &request, &acl);
        assert!(decision.granted, "reason: {:?}", decision.reason);
        let used = decision.derivation.expect("proof").axioms_used();
        assert!(used.contains(&Axiom::A35));
    }

    #[test]
    fn derivation_renders_paper_like_proof() {
        let (mut e, acl) = scenario();
        let decision = authorize(&mut e, &write_request(&[1, 2]), &acl);
        let text = decision.derivation.expect("proof").render();
        assert!(text.contains("axiom A10"));
        assert!(text.contains("axiom A38"));
        assert!(text.contains("G_write says"));
        assert!(text.contains("access approved"));
    }

    #[test]
    fn acl_queries() {
        let mut acl = Acl::new();
        acl.permit(GroupId::new("G_w"), "write")
            .permit(GroupId::new("G_r"), "read");
        assert!(acl.permits(&GroupId::new("G_w"), "write"));
        assert!(!acl.permits(&GroupId::new("G_w"), "read"));
        assert_eq!(acl.groups_for("read"), vec![&GroupId::new("G_r")]);
        assert_eq!(acl.entries().len(), 2);
    }

    #[test]
    fn operation_payload_matches_paper_rendering() {
        let op = Operation::new("write", "Object O");
        assert_eq!(op.to_string(), "\"write\" Object O");
        assert_eq!(op.payload(), Message::data("\"write\" Object O"));
    }

    #[test]
    fn signed_statement_shape() {
        let op = Operation::new("write", "O");
        let s = SignedStatement::new("U1", k("K1"), &op, Time(3));
        let (inner, key) = s.message.as_signed().expect("signed");
        assert_eq!(key, &k("K1"));
        let f = inner.as_formula().expect("formula");
        assert!(matches!(f, Formula::Says(_, TimeRef::At(Time(3)), _)));
    }
}
