//! The derivation memo cache: replaying proofs for repeated requests.
//!
//! [`protocol::authorize`](crate::protocol::authorize) re-runs the
//! Appendix E four-step derivation from scratch for every request. When
//! the same parties present the same certificates for the same operation
//! under the same trust state, that search re-derives the identical proof
//! tree. The memo keys a finished [`AccessDecision`] on everything the
//! derivation depends on:
//!
//! - the engine's **belief epoch** — a counter bumped whenever the belief
//!   state changes (a new certificate admitted, a revocation or CRL entry
//!   landing, the freshness window moving). Any epoch bump eagerly clears
//!   the memo, the same eager-invalidation discipline as the coalition
//!   `VerifyCache`, so a memoized proof can never outlive a revocation;
//! - the engine's **clock** and the request's claimed time — freshness
//!   and validity-interval side conditions read both;
//! - the **interned certificate-view set and statement set** of the
//!   request ([`MsgId`]s / [`Sym`]s from the hash-consing arena, so key
//!   comparison is id-tuple comparison, not tree comparison);
//! - the **ACL rows** for the object.
//!
//! A hit replays the cached decision (sharing its proof tree via `Arc`)
//! without re-running axiom search. The map is bounded with
//! insertion-order eviction, mirroring the server's replay window and
//! `VerifyCache` (`tests/bounded_caches.rs` documents that discipline).

use std::collections::{HashMap, VecDeque};

use crate::protocol::{AccessDecision, AccessRequest, Acl};
use crate::syntax::{Interner, MsgId, Sym, Time};

/// Default bound on memoized decisions.
pub const DEFAULT_MEMO_CAPACITY: usize = 1024;

/// Everything a derivation's outcome depends on, as interned ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MemoKey {
    epoch: u64,
    now: Time,
    at: Time,
    identity_certs: Vec<MsgId>,
    attribute_certs: Vec<MsgId>,
    /// Per signed statement: (principal, signing key, claimed time, payload).
    statements: Vec<(Sym, Sym, Time, MsgId)>,
    operation: (Sym, Sym),
    acl: Vec<(Sym, Sym)>,
}

impl MemoKey {
    pub(crate) fn build(
        interner: &mut Interner,
        epoch: u64,
        now: Time,
        request: &AccessRequest,
        acl: &Acl,
    ) -> MemoKey {
        MemoKey {
            epoch,
            now,
            at: request.at,
            identity_certs: request
                .identity_certs
                .iter()
                .map(|m| interner.intern_message(m))
                .collect(),
            attribute_certs: request
                .attribute_certs
                .iter()
                .map(|m| interner.intern_message(m))
                .collect(),
            statements: request
                .signed_statements
                .iter()
                .map(|s| {
                    (
                        interner.intern_str(s.principal.as_str()),
                        interner.intern_str(s.key.as_str()),
                        s.at,
                        interner.intern_message(&s.message),
                    )
                })
                .collect(),
            operation: (
                interner.intern_str(&request.operation.action),
                interner.intern_str(&request.operation.object),
            ),
            acl: acl
                .entries()
                .iter()
                .map(|e| {
                    (
                        interner.intern_str(e.group.as_str()),
                        interner.intern_str(&e.action),
                    )
                })
                .collect(),
        }
    }
}

/// Hit/miss/eviction counters and the live entry count, in the same shape
/// as the coalition `CacheStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Decisions replayed from the memo.
    pub hits: u64,
    /// Lookups that fell through to a full derivation.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries dropped by an epoch change (certificate admission,
    /// revocation/CRL, freshness-window change).
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
}

/// A bounded map from [`MemoKey`] to a finished decision.
///
/// Plain struct, no interior locking: the logic phase runs serially
/// behind `&mut Engine` (even under `verify_batch`, which only fans out
/// the crypto phase).
#[derive(Debug)]
pub(crate) struct DerivationMemo {
    entries: HashMap<MemoKey, AccessDecision>,
    order: VecDeque<MemoKey>,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl Default for DerivationMemo {
    fn default() -> Self {
        DerivationMemo {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: Some(DEFAULT_MEMO_CAPACITY),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }
}

impl DerivationMemo {
    pub(crate) fn new() -> Self {
        DerivationMemo::default()
    }

    /// Sets the bound (`None` = unbounded), evicting down to it.
    pub(crate) fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        self.trim();
    }

    pub(crate) fn lookup(&mut self, key: &MemoKey) -> Option<AccessDecision> {
        match self.entries.get(key) {
            Some(decision) => {
                self.hits += 1;
                Some(decision.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn store(&mut self, key: MemoKey, decision: AccessDecision) {
        if self.capacity == Some(0) {
            return;
        }
        if self.entries.insert(key.clone(), decision).is_none() {
            self.order.push_back(key);
            self.trim();
        }
    }

    /// Drops every entry (the belief state changed under it).
    pub(crate) fn invalidate_all(&mut self) {
        self.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.order.clear();
    }

    fn trim(&mut self) {
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let Some(oldest) = self.order.pop_front() else {
                    break;
                };
                if self.entries.remove(&oldest).is_some() {
                    self.evictions += 1;
                }
            }
        }
    }

    pub(crate) fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AccessDecision, Operation};

    fn key(interner: &mut Interner, epoch: u64, t: i64) -> MemoKey {
        let request = AccessRequest {
            identity_certs: vec![],
            attribute_certs: vec![],
            signed_statements: vec![],
            operation: Operation::new("write", "Object O"),
            at: Time(t),
        };
        MemoKey::build(interner, epoch, Time(t), &request, &Acl::new())
    }

    fn grant() -> AccessDecision {
        AccessDecision {
            granted: true,
            reason: None,
            derivation: None,
            group: None,
            axiom_applications: 0,
        }
    }

    #[test]
    fn lookup_after_store_hits() {
        let mut interner = Interner::new();
        let mut memo = DerivationMemo::new();
        let k = key(&mut interner, 0, 5);
        assert!(memo.lookup(&k).is_none());
        memo.store(k.clone(), grant());
        assert!(memo.lookup(&k).expect("hit").granted);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let mut interner = Interner::new();
        let mut memo = DerivationMemo::new();
        memo.store(key(&mut interner, 0, 5), grant());
        assert!(memo.lookup(&key(&mut interner, 1, 5)).is_none());
    }

    #[test]
    fn capacity_bound_evicts_in_insertion_order() {
        let mut interner = Interner::new();
        let mut memo = DerivationMemo::new();
        memo.set_capacity(Some(2));
        for t in 0..5 {
            memo.store(key(&mut interner, 0, t), grant());
        }
        let s = memo.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 3);
        // The two newest survive; the oldest three are gone.
        assert!(memo.lookup(&key(&mut interner, 0, 0)).is_none());
        assert!(memo.lookup(&key(&mut interner, 0, 4)).is_some());
    }

    #[test]
    fn invalidate_all_counts_and_clears() {
        let mut interner = Interner::new();
        let mut memo = DerivationMemo::new();
        memo.store(key(&mut interner, 0, 1), grant());
        memo.store(key(&mut interner, 0, 2), grant());
        memo.invalidate_all();
        let s = memo.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.invalidations, 2);
        assert!(memo.lookup(&key(&mut interner, 0, 1)).is_none());
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut interner = Interner::new();
        let mut memo = DerivationMemo::new();
        memo.set_capacity(Some(0));
        memo.store(key(&mut interner, 0, 1), grant());
        assert_eq!(memo.stats().entries, 0);
    }
}
