//! The coalition access-control logic of Khurana–Gligor–Linn (ICDCS 2002).
//!
//! This crate is the paper's primary contribution, implemented as an
//! executable system:
//!
//! * [`syntax`] — terms, principals, **compound principals** `CP = {P₁…Pₙ}`,
//!   threshold compounds `CP_{m,n}`, key-bound subjects `P|K`, messages and
//!   the full formula language of Appendix A (F1–F22).
//! * [`axioms`] — the axiom schemas A1–A38 and inference rules R1/R2 of
//!   Appendix B, as first-class values with the paper's statements attached.
//! * [`certs`] — idealized time-stamped certificates (identity, attribute,
//!   threshold attribute, and their revocations) exactly as written in §4.2.
//! * [`engine`] — a derivation engine: initial beliefs (trust assumptions) +
//!   received messages + axioms ⟹ new beliefs, with machine-checkable
//!   [`Derivation`] proof trees naming the axiom applied at every node.
//! * [`protocol`] — the four-step authorization protocol of §4.3/Appendix E
//!   (verify signing keys → establish group membership → verify signed
//!   request → check the ACL), plus believe-until-revoked revocation
//!   reasoning.
//! * [`semantics`] — the runs-based model of computation of Appendix C
//!   (events, histories, local/global states, legal runs) and an evaluator
//!   for the truth conditions, used to reproduce the soundness theorem of
//!   Appendix D as executable property tests.
//!
//! # Scope notes
//!
//! Ground formulas carry concrete timestamps; the paper's universally
//! quantified initial beliefs (e.g. "∀G′, CP′, t′b, t′e: AA controls
//! CP′ ⇒ G′") are represented as *trust assumption schemas* in the engine
//! ([`engine::TrustAssumptions`]) that instantiate to ground formulas on
//! use — the same finitization every executable authorization system
//! applies to jurisdiction rules. Clock annotations `(t, P)` are normalized
//! to the verifying server's clock, as in the paper's protocol where all
//! derivations happen at server `P`.
//!
//! # Example
//!
//! ```
//! use jaap_core::prelude::*;
//!
//! // Subjects: three users bound to their public keys, 2-of-3 threshold.
//! let users: Vec<Subject> = (1..=3)
//!     .map(|i| Subject::principal(format!("User_D{i}")).bound(KeyId::new(format!("K_u{i}"))))
//!     .collect();
//! let cp = Subject::threshold(users, 2);
//! let g_write = GroupId::new("G_write");
//!
//! // The idealized threshold attribute certificate of §4.2:
//! //   AA says_taa  CP'_{2,3} ⇒ [tb', te'] G_write   (signed with K_AA⁻¹)
//! let cert = Certs::threshold_attribute(
//!     "AA", KeyId::new("K_AA"), cp, g_write, Time(10), Validity::new(Time(0), Time(100)),
//! );
//! assert!(format!("{cert}").contains("⇒"));
//! ```

pub mod axioms;
pub mod certs;
pub mod engine;
pub mod memo;
pub mod protocol;
pub mod semantics;
pub mod syntax;

mod derivation;
mod error;

pub use derivation::{Derivation, Rule};
pub use error::LogicError;
pub use memo::{MemoStats, DEFAULT_MEMO_CAPACITY};

/// Convenient glob-import surface for downstream crates and examples.
pub mod prelude {
    pub use crate::axioms::Axiom;
    pub use crate::certs::{Certs, Validity};
    pub use crate::engine::{Engine, TrustAssumptions};
    pub use crate::protocol::{
        AccessDecision, AccessRequest, Acl, AclEntry, DenialReason, Operation, SignedStatement,
    };
    pub use crate::syntax::{
        Formula, GroupId, KeyId, Message, PrincipalId, Subject, Time, TimeRef,
    };
    pub use crate::{Derivation, LogicError, Rule};
}
