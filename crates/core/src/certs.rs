//! Idealized time-stamped certificates (paper §4.2).
//!
//! A certificate is a signed message whose payload is a `says` formula:
//!
//! ```text
//! identity:            ⟨ CA says_tCA  (K_P ⇒ [tb,te] P) ⟩_{K_CA⁻¹}
//! identity revocation: ⟨ CA says_tCA ¬(K_P ⇒ t' P)      ⟩_{K_CA⁻¹}
//! attribute:           ⟨ AA says_tAA  (P|K_P ⇒ [tb,te] G) ⟩_{K_AA⁻¹}
//! threshold attribute: ⟨ AA says_tAA  (CP_{m,n} ⇒ [tb,te] G) ⟩_{K_AA⁻¹}
//! revocations:         same with ¬ and a point time t′
//! ```
//!
//! These are *logical* objects: byte-level certificates with real signatures
//! live in `jaap-pki`, which verifies them cryptographically and then hands
//! the engine exactly these idealizations.

use core::fmt;

use crate::syntax::{Formula, GroupId, KeyId, Message, PrincipalId, Subject, Time, TimeRef};

/// A certificate validity period `[tb, te]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Validity {
    /// Begin time `tb`.
    pub begin: Time,
    /// End time `te`.
    pub end: Time,
}

impl Validity {
    /// Creates a validity period.
    ///
    /// # Panics
    ///
    /// Panics if `begin > end`.
    #[must_use]
    pub fn new(begin: Time, end: Time) -> Self {
        assert!(begin <= end, "validity period out of order");
        Validity { begin, end }
    }

    /// `true` if `t` falls inside the period.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        self.begin <= t && t <= self.end
    }

    /// As a closed [`TimeRef`].
    #[must_use]
    pub fn time_ref(&self) -> TimeRef {
        TimeRef::Closed(self.begin, self.end)
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.begin, self.end)
    }
}

/// Constructors for idealized certificates.
#[derive(Debug)]
pub struct Certs;

impl Certs {
    /// Identity certificate: `⟨CA says_t (K ⇒ [tb,te] P)⟩_{K_CA⁻¹}`.
    #[must_use]
    pub fn identity(
        issuer: impl Into<PrincipalId>,
        issuer_key: KeyId,
        subject_key: KeyId,
        subject: impl Into<PrincipalId>,
        issued_at: Time,
        validity: Validity,
    ) -> Message {
        let issuer = issuer.into();
        let body = Formula::says(
            Subject::Principal(issuer.clone()),
            issued_at,
            Message::formula(Formula::key_speaks_for_at(
                subject_key,
                validity.time_ref(),
                issuer,
                Subject::Principal(subject.into()),
            )),
        );
        Message::formula(body).signed(issuer_key)
    }

    /// Identity revocation: `⟨CA says_t ¬(K ⇒ t' P)⟩_{K_CA⁻¹}`.
    #[must_use]
    pub fn identity_revocation(
        issuer: impl Into<PrincipalId>,
        issuer_key: KeyId,
        subject_key: KeyId,
        subject: impl Into<PrincipalId>,
        issued_at: Time,
        revoked_from: Time,
    ) -> Message {
        let issuer = issuer.into();
        let body = Formula::says(
            Subject::Principal(issuer.clone()),
            issued_at,
            Message::formula(Formula::not(Formula::key_speaks_for_at(
                subject_key,
                TimeRef::At(revoked_from),
                issuer,
                Subject::Principal(subject.into()),
            ))),
        );
        Message::formula(body).signed(issuer_key)
    }

    /// Attribute certificate for a single (key-bound) subject:
    /// `⟨AA says_t (P|K ⇒ [tb,te] G)⟩_{K_AA⁻¹}`.
    #[must_use]
    pub fn attribute(
        issuer: impl Into<PrincipalId>,
        issuer_key: KeyId,
        subject: Subject,
        group: GroupId,
        issued_at: Time,
        validity: Validity,
    ) -> Message {
        let issuer = issuer.into();
        let body = Formula::says(
            Subject::Principal(issuer.clone()),
            issued_at,
            Message::formula(Formula::member_of_at(
                subject,
                validity.time_ref(),
                issuer,
                group,
            )),
        );
        Message::formula(body).signed(issuer_key)
    }

    /// Threshold attribute certificate:
    /// `⟨AA says_t (CP_{m,n} ⇒ [tb,te] G)⟩_{K_AA⁻¹}`.
    ///
    /// # Panics
    ///
    /// Panics if `cp` is not a threshold compound.
    #[must_use]
    pub fn threshold_attribute(
        issuer: impl Into<PrincipalId>,
        issuer_key: KeyId,
        cp: Subject,
        group: GroupId,
        issued_at: Time,
        validity: Validity,
    ) -> Message {
        assert!(
            matches!(cp, Subject::Threshold { .. }),
            "threshold attribute certificates need a threshold compound subject"
        );
        Certs::attribute(issuer, issuer_key, cp, group, issued_at, validity)
    }

    /// Attribute revocation: `⟨AA says_t ¬(S ⇒ t' G)⟩_{K_AA⁻¹}`.
    #[must_use]
    pub fn attribute_revocation(
        issuer: impl Into<PrincipalId>,
        issuer_key: KeyId,
        subject: Subject,
        group: GroupId,
        issued_at: Time,
        revoked_from: Time,
    ) -> Message {
        let issuer = issuer.into();
        let body = Formula::says(
            Subject::Principal(issuer.clone()),
            issued_at,
            Message::formula(Formula::not(Formula::member_of_at(
                subject,
                TimeRef::At(revoked_from),
                issuer,
                group,
            ))),
        );
        Message::formula(body).signed(issuer_key)
    }
}

/// A decomposed view of an idealized certificate, as the engine consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertView {
    /// `K ⇒ [tb,te] P` asserted by `issuer` at `issued_at`.
    Identity {
        /// Issuing authority.
        issuer: PrincipalId,
        /// Key the certificate was signed with.
        signing_key: KeyId,
        /// Issuance timestamp.
        issued_at: Time,
        /// The certified key.
        subject_key: KeyId,
        /// The certified owner.
        subject: Subject,
        /// Validity window.
        when: TimeRef,
        /// `true` for a revocation (`¬`).
        negated: bool,
    },
    /// `S ⇒ [tb,te] G` asserted by `issuer` at `issued_at`.
    Attribute {
        /// Issuing authority.
        issuer: PrincipalId,
        /// Key the certificate was signed with.
        signing_key: KeyId,
        /// Issuance timestamp.
        issued_at: Time,
        /// The member subject (single, bound, compound, or threshold).
        subject: Subject,
        /// The group.
        group: GroupId,
        /// Validity window.
        when: TimeRef,
        /// `true` for a revocation (`¬`).
        negated: bool,
    },
}

impl CertView {
    /// Parses an idealized certificate message.
    ///
    /// Returns `None` if the message is not of the certificate shape
    /// (signed `says` of a speaks-for formula, possibly negated).
    #[must_use]
    pub fn parse(msg: &Message) -> Option<CertView> {
        let (payload, signing_key) = msg.as_signed()?;
        let Formula::Says(issuer_subject, TimeRef::At(issued_at), inner_msg) =
            payload.as_formula()?
        else {
            return None;
        };
        let issuer = issuer_subject.principal_id()?.clone();
        let mut body = inner_msg.as_formula()?;
        let mut negated = false;
        if let Formula::Not(inner) = body {
            negated = true;
            body = inner;
        }
        match body {
            Formula::KeySpeaksFor {
                key, when, subject, ..
            } => Some(CertView::Identity {
                issuer,
                signing_key: signing_key.clone(),
                issued_at: *issued_at,
                subject_key: key.clone(),
                subject: subject.clone(),
                when: *when,
                negated,
            }),
            Formula::MemberOf {
                subject,
                when,
                group,
                ..
            } => Some(CertView::Attribute {
                issuer,
                signing_key: signing_key.clone(),
                issued_at: *issued_at,
                subject: subject.clone(),
                group: group.clone(),
                when: *when,
                negated,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users_2_of_3() -> Subject {
        Subject::threshold(
            vec![
                Subject::principal("User_D1").bound(KeyId::new("K_u1")),
                Subject::principal("User_D2").bound(KeyId::new("K_u2")),
                Subject::principal("User_D3").bound(KeyId::new("K_u3")),
            ],
            2,
        )
    }

    #[test]
    fn identity_certificate_roundtrips_through_view() {
        let cert = Certs::identity(
            "CA1",
            KeyId::new("K_CA1"),
            KeyId::new("K_u1"),
            "User_D1",
            Time(5),
            Validity::new(Time(0), Time(100)),
        );
        let view = CertView::parse(&cert).expect("parse");
        let CertView::Identity {
            issuer,
            signing_key,
            issued_at,
            subject_key,
            subject,
            when,
            negated,
        } = view
        else {
            panic!("expected identity view");
        };
        assert_eq!(issuer.as_str(), "CA1");
        assert_eq!(signing_key, KeyId::new("K_CA1"));
        assert_eq!(issued_at, Time(5));
        assert_eq!(subject_key, KeyId::new("K_u1"));
        assert_eq!(subject, Subject::principal("User_D1"));
        assert_eq!(when, TimeRef::Closed(Time(0), Time(100)));
        assert!(!negated);
    }

    #[test]
    fn threshold_attribute_certificate_view() {
        let cert = Certs::threshold_attribute(
            "AA",
            KeyId::new("K_AA"),
            users_2_of_3(),
            GroupId::new("G_write"),
            Time(10),
            Validity::new(Time(0), Time(50)),
        );
        let CertView::Attribute {
            subject,
            group,
            negated,
            ..
        } = CertView::parse(&cert).expect("parse")
        else {
            panic!("expected attribute view");
        };
        assert_eq!(subject.required_signers(), 2);
        assert_eq!(group.as_str(), "G_write");
        assert!(!negated);
    }

    #[test]
    fn revocations_parse_as_negated() {
        let rev = Certs::attribute_revocation(
            "RA",
            KeyId::new("K_RA"),
            users_2_of_3(),
            GroupId::new("G_write"),
            Time(20),
            Time(20),
        );
        let CertView::Attribute {
            negated, issuer, ..
        } = CertView::parse(&rev).expect("parse")
        else {
            panic!("expected attribute view");
        };
        assert!(negated);
        assert_eq!(issuer.as_str(), "RA");

        let idrev = Certs::identity_revocation(
            "CA1",
            KeyId::new("K_CA1"),
            KeyId::new("K_u1"),
            "User_D1",
            Time(21),
            Time(21),
        );
        let CertView::Identity { negated, .. } = CertView::parse(&idrev).expect("parse") else {
            panic!("expected identity view");
        };
        assert!(negated);
    }

    #[test]
    fn non_certificates_do_not_parse() {
        assert!(CertView::parse(&Message::data("junk")).is_none());
        assert!(CertView::parse(&Message::data("junk").signed(KeyId::new("K"))).is_none());
        // A says of a non-speaks-for body is not a certificate.
        let not_cert = Message::formula(Formula::says(
            Subject::principal("CA"),
            Time(0),
            Message::data("hello"),
        ))
        .signed(KeyId::new("K_CA"));
        assert!(CertView::parse(&not_cert).is_none());
    }

    #[test]
    fn validity_behavior() {
        let v = Validity::new(Time(10), Time(20));
        assert!(v.contains(Time(10)));
        assert!(v.contains(Time(20)));
        assert!(!v.contains(Time(21)));
        assert_eq!(v.time_ref(), TimeRef::Closed(Time(10), Time(20)));
        assert_eq!(v.to_string(), "[t10,t20]");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn invalid_validity_panics() {
        let _ = Validity::new(Time(5), Time(4));
    }

    #[test]
    #[should_panic(expected = "threshold compound")]
    fn threshold_cert_requires_threshold_subject() {
        let _ = Certs::threshold_attribute(
            "AA",
            KeyId::new("K_AA"),
            Subject::principal("U1"),
            GroupId::new("G"),
            Time(0),
            Validity::new(Time(0), Time(1)),
        );
    }

    #[test]
    fn certificate_display_matches_paper_shape() {
        let cert = Certs::identity(
            "CA1",
            KeyId::new("K_CA1"),
            KeyId::new("K_u1"),
            "User_D1",
            Time(5),
            Validity::new(Time(0), Time(9)),
        );
        let s = cert.to_string();
        assert!(s.contains("CA1 says_t5"));
        assert!(s.contains("K_u1 ⇒_{[t0,t9],CA1} User_D1"));
        assert!(s.ends_with("_{K_CA1⁻¹}"));
    }
}
