//! Record framing: `magic(2) || len(4, big-endian) || checksum(8,
//! big-endian FNV-1a over the payload) || payload`.
//!
//! The parser walks the log front to back and stops at the first record
//! that is short (torn write), has a bad magic, an implausible length, or
//! a checksum mismatch (bit rot). Everything before the bad record is
//! replayable; everything from it on is reported as a truncated tail —
//! recovery must drop it, never replay it.

/// Marks the start of every record ("JW").
pub const MAGIC: [u8; 2] = [0x4A, 0x57];

/// Bytes of framing before the payload.
pub const HEADER_LEN: usize = 2 + 4 + 8;

/// Upper bound on a single record's payload; a length field above this is
/// treated as corruption rather than an instruction to wait for 4 GiB.
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

/// 64-bit FNV-1a over `bytes`. Not cryptographic — it detects torn writes
/// and bit rot, not adversaries (the payloads themselves carry signatures
/// where authenticity matters).
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames one payload into `magic || len || checksum || payload`.
#[must_use]
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("record too long")
            .to_be_bytes(),
    );
    out.extend_from_slice(&checksum64(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// How the log ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// The log ends exactly at a record boundary.
    Clean,
    /// The log ends in a torn or corrupt record starting at `offset`.
    Truncated {
        /// Byte offset of the first unreplayable record.
        offset: usize,
        /// Human-readable reason (short read, bad magic, checksum, ...).
        reason: String,
    },
}

/// A parsed log: the valid payloads, the end offset of each valid record
/// (so crash harnesses can cut the log at every record boundary), and how
/// the tail ended.
#[derive(Debug, Clone)]
pub struct ParsedLog {
    /// Valid record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// `boundaries[i]` is the byte offset just past record `i`.
    pub boundaries: Vec<usize>,
    /// Tail status.
    pub tail: Tail,
}

impl ParsedLog {
    /// Bytes of unreplayable tail, 0 when clean.
    #[must_use]
    pub fn truncated_bytes(&self, total_len: usize) -> usize {
        match &self.tail {
            Tail::Clean => 0,
            Tail::Truncated { offset, .. } => total_len.saturating_sub(*offset),
        }
    }
}

/// Parses a log, stopping at the first torn or corrupt record.
#[must_use]
pub fn parse_log(bytes: &[u8]) -> ParsedLog {
    let mut records = Vec::new();
    let mut boundaries = Vec::new();
    let mut pos = 0usize;
    let truncated = |pos: usize, reason: &str| Tail::Truncated {
        offset: pos,
        reason: reason.to_string(),
    };
    let tail = loop {
        if pos == bytes.len() {
            break Tail::Clean;
        }
        if bytes.len() - pos < HEADER_LEN {
            break truncated(pos, "short header (torn write)");
        }
        if bytes[pos..pos + 2] != MAGIC {
            break truncated(pos, "bad magic");
        }
        let len = u32::from_be_bytes(bytes[pos + 2..pos + 6].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN {
            break truncated(pos, "implausible record length");
        }
        let stored = u64::from_be_bytes(
            bytes[pos + 6..pos + HEADER_LEN]
                .try_into()
                .expect("8 bytes"),
        );
        let body_start = pos + HEADER_LEN;
        if bytes.len() - body_start < len {
            break truncated(pos, "short payload (torn write)");
        }
        let payload = &bytes[body_start..body_start + len];
        if checksum64(payload) != stored {
            break truncated(pos, "checksum mismatch (bit rot)");
        }
        records.push(payload.to_vec());
        pos = body_start + len;
        boundaries.push(pos);
    };
    ParsedLog {
        records,
        boundaries,
        tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let mut log = Vec::new();
        for payload in [b"one".as_slice(), b"two-longer".as_slice(), b"".as_slice()] {
            log.extend_from_slice(&frame_record(payload));
        }
        let parsed = parse_log(&log);
        assert_eq!(parsed.tail, Tail::Clean);
        assert_eq!(parsed.records.len(), 3);
        assert_eq!(parsed.records[1], b"two-longer");
        assert_eq!(parsed.boundaries.len(), 3);
        assert_eq!(*parsed.boundaries.last().expect("boundary"), log.len());
    }

    #[test]
    fn torn_tail_detected_at_every_cut() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"alpha"));
        let keep = log.len();
        log.extend_from_slice(&frame_record(b"beta"));
        for cut in keep + 1..log.len() {
            let parsed = parse_log(&log[..cut]);
            assert_eq!(parsed.records.len(), 1, "cut at {cut}");
            assert!(matches!(parsed.tail, Tail::Truncated { offset, .. } if offset == keep));
        }
    }

    #[test]
    fn bit_flip_in_payload_detected() {
        let mut log = frame_record(b"sensitive payload");
        let last = log.len() - 1;
        log[last] ^= 0x40;
        let parsed = parse_log(&log);
        assert!(parsed.records.is_empty());
        assert!(
            matches!(parsed.tail, Tail::Truncated { ref reason, .. } if reason.contains("checksum"))
        );
    }

    #[test]
    fn bit_flip_in_length_detected() {
        let mut log = frame_record(b"x");
        log[2] = 0xFF; // implausible length
        let parsed = parse_log(&log);
        assert!(parsed.records.is_empty());
        assert!(matches!(parsed.tail, Tail::Truncated { .. }));
    }

    #[test]
    fn corrupt_record_shadows_later_good_records() {
        let mut log = frame_record(b"good");
        let mut bad = frame_record(b"bad");
        bad[HEADER_LEN] ^= 1;
        log.extend_from_slice(&bad);
        log.extend_from_slice(&frame_record(b"unreachable"));
        let parsed = parse_log(&log);
        assert_eq!(parsed.records.len(), 1);
        assert!(matches!(parsed.tail, Tail::Truncated { .. }));
    }

    #[test]
    fn empty_log_is_clean() {
        let parsed = parse_log(&[]);
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.tail, Tail::Clean);
    }
}
