//! Record framing: `magic(2) || version(1) || term(8, big-endian) ||
//! len(4, big-endian) || checksum(8, big-endian FNV-1a over term ||
//! payload) || payload`.
//!
//! Two readers consume this format with different failure postures:
//!
//! * [`parse_log`] is the *recovery* reader. It walks a local log front to
//!   back and stops at the first record that is short (torn write), has a
//!   bad magic or format version, an implausible length, or a checksum
//!   mismatch (bit rot). Everything before the bad record is replayable;
//!   everything from it on is reported as a truncated tail — recovery must
//!   drop it, never replay it.
//! * [`decode_frames`] is the *replication* reader. A replica receiving
//!   shipped frames must not silently trim: a malformed or
//!   version-incompatible frame is a typed error ([`WalError::Corrupt`],
//!   [`WalError::IncompatibleVersion`]) so the replica can refuse the
//!   append and tell the primary why.
//!
//! The `term` field records the primary term a record was written under
//! (provenance). Fencing decisions are made on *message* terms by the
//! replication layer; the frame term lets a recovered log show which
//! regime produced each record.

use crate::WalError;

/// Marks the start of every record ("JW").
pub const MAGIC: [u8; 2] = [0x4A, 0x57];

/// Current frame format version. A replica rejects frames whose version
/// byte differs — an incompatible primary must not be able to corrupt a
/// replica's log, and the failure must be a typed error, not a
/// checksum-style truncation.
pub const FORMAT_VERSION: u8 = 1;

/// Bytes of framing before the payload: magic(2) + version(1) + term(8) +
/// len(4) + checksum(8).
pub const HEADER_LEN: usize = 2 + 1 + 8 + 4 + 8;

/// Upper bound on a single record's payload; a length field above this is
/// treated as corruption rather than an instruction to wait for 4 GiB.
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// 64-bit FNV-1a over `bytes`. Not cryptographic — it detects torn writes
/// and bit rot, not adversaries (the payloads themselves carry signatures
/// where authenticity matters).
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    fnv64(FNV_OFFSET, bytes)
}

/// The frame checksum covers the term as well as the payload, so a bit
/// flip in the term field is caught like any other corruption.
fn record_checksum(term: u64, payload: &[u8]) -> u64 {
    fnv64(fnv64(FNV_OFFSET, &term.to_be_bytes()), payload)
}

/// Frames one payload under primary term `term`.
#[must_use]
pub fn frame_record_with_term(term: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&term.to_be_bytes());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("record too long")
            .to_be_bytes(),
    );
    out.extend_from_slice(&record_checksum(term, payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frames one payload under term 0 (unreplicated logs).
#[must_use]
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    frame_record_with_term(0, payload)
}

/// How the log ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// The log ends exactly at a record boundary.
    Clean,
    /// The log ends in a torn or corrupt record starting at `offset`.
    Truncated {
        /// Byte offset of the first unreplayable record.
        offset: usize,
        /// Human-readable reason (short read, bad magic, checksum, ...).
        reason: String,
    },
}

/// A parsed log: the valid payloads, their terms, the end offset of each
/// valid record (so crash harnesses can cut the log at every record
/// boundary), and how the tail ended.
#[derive(Debug, Clone)]
pub struct ParsedLog {
    /// Valid record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// `terms[i]` is the primary term record `i` was written under.
    pub terms: Vec<u64>,
    /// `boundaries[i]` is the byte offset just past record `i`.
    pub boundaries: Vec<usize>,
    /// Tail status.
    pub tail: Tail,
}

impl ParsedLog {
    /// Bytes of unreplayable tail, 0 when clean.
    #[must_use]
    pub fn truncated_bytes(&self, total_len: usize) -> usize {
        match &self.tail {
            Tail::Clean => 0,
            Tail::Truncated { offset, .. } => total_len.saturating_sub(*offset),
        }
    }
}

/// One decoded record frame, the replication-path view of a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Primary term the record was written under.
    pub term: u64,
    /// The record payload.
    pub payload: Vec<u8>,
}

enum Step {
    Done,
    Frame { frame: Frame, next: usize },
    Bad { reason: String },
    BadVersion { found: u8 },
}

fn step(bytes: &[u8], pos: usize) -> Step {
    if pos == bytes.len() {
        return Step::Done;
    }
    if bytes.len() - pos < HEADER_LEN {
        return Step::Bad {
            reason: "short header (torn write)".to_string(),
        };
    }
    if bytes[pos..pos + 2] != MAGIC {
        return Step::Bad {
            reason: "bad magic".to_string(),
        };
    }
    let version = bytes[pos + 2];
    if version != FORMAT_VERSION {
        return Step::BadVersion { found: version };
    }
    let term = u64::from_be_bytes(bytes[pos + 3..pos + 11].try_into().expect("8 bytes"));
    let len = u32::from_be_bytes(bytes[pos + 11..pos + 15].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD_LEN {
        return Step::Bad {
            reason: "implausible record length".to_string(),
        };
    }
    let stored = u64::from_be_bytes(
        bytes[pos + 15..pos + HEADER_LEN]
            .try_into()
            .expect("8 bytes"),
    );
    let body_start = pos + HEADER_LEN;
    if bytes.len() - body_start < len {
        return Step::Bad {
            reason: "short payload (torn write)".to_string(),
        };
    }
    let payload = &bytes[body_start..body_start + len];
    if record_checksum(term, payload) != stored {
        return Step::Bad {
            reason: "checksum mismatch (bit rot)".to_string(),
        };
    }
    Step::Frame {
        frame: Frame {
            term,
            payload: payload.to_vec(),
        },
        next: body_start + len,
    }
}

/// Parses a local log, stopping at the first torn or corrupt record.
#[must_use]
pub fn parse_log(bytes: &[u8]) -> ParsedLog {
    let mut records = Vec::new();
    let mut terms = Vec::new();
    let mut boundaries = Vec::new();
    let mut pos = 0usize;
    let tail = loop {
        match step(bytes, pos) {
            Step::Done => break Tail::Clean,
            Step::Frame { frame, next } => {
                records.push(frame.payload);
                terms.push(frame.term);
                pos = next;
                boundaries.push(pos);
            }
            Step::Bad { reason } => {
                break Tail::Truncated {
                    offset: pos,
                    reason,
                }
            }
            Step::BadVersion { found } => {
                break Tail::Truncated {
                    offset: pos,
                    reason: format!("unsupported format version {found}"),
                }
            }
        }
    };
    ParsedLog {
        records,
        terms,
        boundaries,
        tail,
    }
}

/// Strictly decodes a byte string that must consist of whole, valid
/// frames — the replication receive path. Unlike [`parse_log`] there is
/// no "replay the good prefix" posture: any defect fails the whole call.
///
/// # Errors
///
/// [`WalError::IncompatibleVersion`] when a frame's version byte differs
/// from [`FORMAT_VERSION`]; [`WalError::Corrupt`] for torn, misframed, or
/// checksum-failing bytes.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<Frame>, WalError> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    loop {
        match step(bytes, pos) {
            Step::Done => return Ok(frames),
            Step::Frame { frame, next } => {
                frames.push(frame);
                pos = next;
            }
            Step::Bad { reason } => {
                return Err(WalError::Corrupt(format!("{reason} at byte {pos}")))
            }
            Step::BadVersion { found } => {
                return Err(WalError::IncompatibleVersion {
                    found,
                    supported: FORMAT_VERSION,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let mut log = Vec::new();
        for payload in [b"one".as_slice(), b"two-longer".as_slice(), b"".as_slice()] {
            log.extend_from_slice(&frame_record(payload));
        }
        let parsed = parse_log(&log);
        assert_eq!(parsed.tail, Tail::Clean);
        assert_eq!(parsed.records.len(), 3);
        assert_eq!(parsed.records[1], b"two-longer");
        assert_eq!(parsed.terms, vec![0, 0, 0]);
        assert_eq!(parsed.boundaries.len(), 3);
        assert_eq!(*parsed.boundaries.last().expect("boundary"), log.len());
    }

    #[test]
    fn terms_roundtrip_through_parse_and_decode() {
        let mut log = frame_record_with_term(3, b"under-term-3");
        log.extend_from_slice(&frame_record_with_term(7, b"under-term-7"));
        let parsed = parse_log(&log);
        assert_eq!(parsed.tail, Tail::Clean);
        assert_eq!(parsed.terms, vec![3, 7]);
        let frames = decode_frames(&log).expect("decode");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].term, 3);
        assert_eq!(frames[1].payload, b"under-term-7");
    }

    #[test]
    fn torn_tail_detected_at_every_cut() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"alpha"));
        let keep = log.len();
        log.extend_from_slice(&frame_record(b"beta"));
        for cut in keep + 1..log.len() {
            let parsed = parse_log(&log[..cut]);
            assert_eq!(parsed.records.len(), 1, "cut at {cut}");
            assert!(matches!(parsed.tail, Tail::Truncated { offset, .. } if offset == keep));
            assert!(decode_frames(&log[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_payload_detected() {
        let mut log = frame_record(b"sensitive payload");
        let last = log.len() - 1;
        log[last] ^= 0x40;
        let parsed = parse_log(&log);
        assert!(parsed.records.is_empty());
        assert!(
            matches!(parsed.tail, Tail::Truncated { ref reason, .. } if reason.contains("checksum"))
        );
    }

    #[test]
    fn bit_flip_in_term_detected() {
        let mut log = frame_record_with_term(5, b"payload");
        log[4] ^= 0x01; // inside the term field; checksum covers it
        let parsed = parse_log(&log);
        assert!(parsed.records.is_empty());
        assert!(
            matches!(parsed.tail, Tail::Truncated { ref reason, .. } if reason.contains("checksum"))
        );
    }

    #[test]
    fn bit_flip_in_length_detected() {
        let mut log = frame_record(b"x");
        log[11] = 0xFF; // implausible length
        let parsed = parse_log(&log);
        assert!(parsed.records.is_empty());
        assert!(matches!(parsed.tail, Tail::Truncated { .. }));
    }

    #[test]
    fn unknown_version_is_typed_for_replicas_truncation_for_recovery() {
        let mut log = frame_record(b"future");
        log[2] = FORMAT_VERSION + 1;
        let parsed = parse_log(&log);
        assert!(parsed.records.is_empty());
        assert!(
            matches!(parsed.tail, Tail::Truncated { ref reason, .. } if reason.contains("version"))
        );
        assert_eq!(
            decode_frames(&log),
            Err(WalError::IncompatibleVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn corrupt_record_shadows_later_good_records() {
        let mut log = frame_record(b"good");
        let mut bad = frame_record(b"bad");
        bad[HEADER_LEN] ^= 1;
        log.extend_from_slice(&bad);
        log.extend_from_slice(&frame_record(b"unreachable"));
        let parsed = parse_log(&log);
        assert_eq!(parsed.records.len(), 1);
        assert!(matches!(parsed.tail, Tail::Truncated { .. }));
        assert!(matches!(decode_frames(&log), Err(WalError::Corrupt(_))));
    }

    #[test]
    fn empty_log_is_clean() {
        let parsed = parse_log(&[]);
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.tail, Tail::Clean);
        assert_eq!(decode_frames(&[]).expect("decode"), Vec::<Frame>::new());
    }
}
