//! A small write-ahead journal, used by the coalition server to make its
//! belief state crash-recoverable.
//!
//! * [`frame`] — the on-disk record format: `magic || version || term ||
//!   len || checksum || payload`, with a recovery parser that stops at the
//!   first torn or corrupt record instead of replaying garbage, and a
//!   strict replication decoder ([`decode_frames`]) that turns defects
//!   into typed errors instead of silent truncation.
//! * [`store`] — the [`JournalStore`] byte-store abstraction with an
//!   in-memory backend ([`MemStore`], shared buffer so a "crashed" owner's
//!   bytes survive), a file backend ([`FileStore`], durability governed by
//!   [`SyncPolicy`]), and a [`TeeStore`] that mirrors every write into a
//!   [`LogOutbox`] so a replication layer can ship it.
//! * [`fault`] — seeded torn-write / bit-flip / short-read injection in
//!   the style of `jaap_net::fault`, for chaos-testing recovery.
//! * [`journal`] — the [`Journal`]: append framed records, rewrite the log
//!   from a snapshot, and replay with tail-truncation reporting.
//!
//! The layer is deliberately payload-agnostic: records are opaque byte
//! strings. The coalition crate defines what goes inside them.

pub mod fault;
pub mod frame;
pub mod journal;
pub mod store;

pub use fault::{FaultKind, FaultStats, FaultyStore, StoreFaultPlan};
pub use frame::{
    checksum64, decode_frames, frame_record, frame_record_with_term, parse_log, Frame, ParsedLog,
    Tail, FORMAT_VERSION,
};
pub use journal::{Journal, JournalStats, Replay};
pub use store::{FileStore, JournalStore, LogOutbox, MemStore, SyncPolicy, TeeEvent, TeeStore};

/// Errors raised by the journal layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The backing store failed (I/O error, lock failure, ...).
    Io(String),
    /// A fault plan or journal parameter is out of range.
    InvalidPlan(String),
    /// A shipped frame was written by an incompatible format version.
    IncompatibleVersion {
        /// The version byte found in the frame.
        found: u8,
        /// The version this build supports.
        supported: u8,
    },
    /// A shipped frame failed strict decoding (torn, misframed, bit rot).
    Corrupt(String),
}

impl core::fmt::Display for WalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "journal store: {m}"),
            WalError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            WalError::IncompatibleVersion { found, supported } => {
                write!(
                    f,
                    "incompatible frame format version {found} (supported: {supported})"
                )
            }
            WalError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
        }
    }
}

impl std::error::Error for WalError {}
