//! A small write-ahead journal, used by the coalition server to make its
//! belief state crash-recoverable.
//!
//! * [`frame`] — the on-disk record format: `magic || len || checksum ||
//!   payload`, with a parser that stops at the first torn or corrupt
//!   record instead of replaying garbage.
//! * [`store`] — the [`JournalStore`] byte-store abstraction with an
//!   in-memory backend ([`MemStore`], shared buffer so a "crashed" owner's
//!   bytes survive) and a file backend ([`FileStore`]).
//! * [`fault`] — seeded torn-write / bit-flip / short-read injection in
//!   the style of `jaap_net::fault`, for chaos-testing recovery.
//! * [`journal`] — the [`Journal`]: append framed records, rewrite the log
//!   from a snapshot, and replay with tail-truncation reporting.
//!
//! The layer is deliberately payload-agnostic: records are opaque byte
//! strings. The coalition crate defines what goes inside them.

pub mod fault;
pub mod frame;
pub mod journal;
pub mod store;

pub use fault::{FaultStats, FaultyStore, StoreFaultPlan};
pub use frame::{checksum64, frame_record, parse_log, ParsedLog, Tail};
pub use journal::{Journal, JournalStats, Replay};
pub use store::{FileStore, JournalStore, MemStore};

/// Errors raised by the journal layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The backing store failed (I/O error, lock failure, ...).
    Io(String),
    /// A fault plan or journal parameter is out of range.
    InvalidPlan(String),
}

impl core::fmt::Display for WalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "journal store: {m}"),
            WalError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for WalError {}
