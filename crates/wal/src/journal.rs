//! The journal proper: framed appends, snapshot rewrites, and replay with
//! truncate-don't-replay tail handling.

use crate::frame::{self, Tail};
use crate::store::JournalStore;
use crate::WalError;

/// Monotone journal activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended.
    pub appends: u64,
    /// Framed bytes appended.
    pub bytes_appended: u64,
    /// Snapshot rewrites.
    pub rewrites: u64,
    /// Records written by rewrites.
    pub records_rewritten: u64,
}

/// A replayed log.
#[derive(Debug)]
pub struct Replay {
    /// Valid payloads in append order.
    pub records: Vec<Vec<u8>>,
    /// Primary term each valid record was written under.
    pub terms: Vec<u64>,
    /// Byte offset just past each valid record.
    pub boundaries: Vec<usize>,
    /// Total bytes scanned.
    pub bytes_scanned: u64,
    /// Why (and where) the tail was cut, `None` for a clean log.
    pub truncation: Option<String>,
    /// Unreplayable tail bytes dropped, 0 for a clean log.
    pub truncated_bytes: u64,
}

/// An append-mostly journal over a [`JournalStore`].
#[derive(Debug)]
pub struct Journal {
    store: Box<dyn JournalStore>,
    stats: JournalStats,
    term: u64,
}

impl Journal {
    /// Wraps a store. Records are stamped with term 0 until
    /// [`Journal::set_term`] raises it.
    #[must_use]
    pub fn new(store: Box<dyn JournalStore>) -> Self {
        Journal {
            store,
            stats: JournalStats::default(),
            term: 0,
        }
    }

    /// Sets the primary term stamped into every frame written from now on.
    pub fn set_term(&mut self, term: u64) {
        self.term = term;
    }

    /// The term currently stamped into new frames.
    #[must_use]
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Frames and appends one payload; returns the framed length.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the store fails.
    pub fn append(&mut self, payload: &[u8]) -> Result<usize, WalError> {
        let framed = frame::frame_record_with_term(self.term, payload);
        self.store.append(&framed)?;
        self.stats.appends += 1;
        self.stats.bytes_appended += framed.len() as u64;
        Ok(framed.len())
    }

    /// Replaces the log with `payloads` (snapshot compaction).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the store fails.
    pub fn rewrite(&mut self, payloads: &[Vec<u8>]) -> Result<(), WalError> {
        let mut bytes = Vec::new();
        for p in payloads {
            bytes.extend_from_slice(&frame::frame_record_with_term(self.term, p));
        }
        self.store.reset(&bytes)?;
        self.stats.rewrites += 1;
        self.stats.records_rewritten += payloads.len() as u64;
        Ok(())
    }

    /// Reads and parses the log. When the tail is torn or corrupt, the
    /// store is trimmed back to the last valid record boundary so later
    /// appends continue a well-formed log, and the cut is reported.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the store fails.
    pub fn replay(&mut self) -> Result<Replay, WalError> {
        let bytes = self.store.read()?;
        let parsed = frame::parse_log(&bytes);
        let truncated_bytes = parsed.truncated_bytes(bytes.len()) as u64;
        let truncation = match &parsed.tail {
            Tail::Clean => None,
            Tail::Truncated { offset, reason } => {
                self.store.reset(&bytes[..*offset])?;
                Some(format!("{reason} at byte {offset}"))
            }
        };
        Ok(Replay {
            records: parsed.records,
            terms: parsed.terms,
            boundaries: parsed.boundaries,
            bytes_scanned: bytes.len() as u64,
            truncation,
            truncated_bytes,
        })
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Current store length in bytes.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the store fails.
    pub fn store_len(&self) -> Result<u64, WalError> {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn append_then_replay_roundtrips() {
        let mut j = Journal::new(Box::new(MemStore::new()));
        j.append(b"a").expect("append");
        j.append(b"bb").expect("append");
        let replay = j.replay().expect("replay");
        assert_eq!(replay.records, vec![b"a".to_vec(), b"bb".to_vec()]);
        assert!(replay.truncation.is_none());
        assert_eq!(j.stats().appends, 2);
    }

    #[test]
    fn term_is_stamped_into_frames() {
        let mut j = Journal::new(Box::new(MemStore::new()));
        j.append(b"old-regime").expect("append");
        j.set_term(4);
        j.append(b"new-regime").expect("append");
        let replay = j.replay().expect("replay");
        assert_eq!(replay.terms, vec![0, 4]);
        j.rewrite(&[b"compacted".to_vec()]).expect("rewrite");
        let replay = j.replay().expect("replay");
        assert_eq!(replay.terms, vec![4]);
    }

    #[test]
    fn rewrite_compacts_log() {
        let store = MemStore::new();
        let mut j = Journal::new(Box::new(store.clone()));
        for _ in 0..10 {
            j.append(&[0u8; 100]).expect("append");
        }
        let before = store.snapshot().len();
        j.rewrite(&[b"compact".to_vec()]).expect("rewrite");
        assert!(store.snapshot().len() < before);
        let replay = j.replay().expect("replay");
        assert_eq!(replay.records, vec![b"compact".to_vec()]);
        assert_eq!(j.stats().rewrites, 1);
    }

    #[test]
    fn replay_trims_torn_tail_from_store() {
        let store = MemStore::new();
        {
            let mut j = Journal::new(Box::new(store.clone()));
            j.append(b"keep").expect("append");
        }
        let keep_len = store.snapshot().len();
        let mut raw = store.clone();
        use crate::store::JournalStore as _;
        raw.append(&frame::frame_record(b"torn")[..7])
            .expect("torn tail");
        let mut j = Journal::new(Box::new(store.clone()));
        let replay = j.replay().expect("replay");
        assert_eq!(replay.records, vec![b"keep".to_vec()]);
        assert!(replay.truncation.is_some());
        assert!(replay.truncated_bytes > 0);
        // The store itself was trimmed back to the boundary.
        assert_eq!(store.snapshot().len(), keep_len);
        let again = j.replay().expect("replay again");
        assert!(again.truncation.is_none());
    }
}
