//! Byte stores a journal can live in.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::WalError;

/// An append-only byte store with a rewrite escape hatch for snapshots.
///
/// Implementations must make `append` atomic from the *caller's* point of
/// view only in the success case: a crash (or injected fault) mid-append
/// may leave a torn suffix, which [`crate::frame::parse_log`] detects and
/// recovery truncates.
pub trait JournalStore: std::fmt::Debug + Send {
    /// The whole log, front to back.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn read(&self) -> Result<Vec<u8>, WalError>;

    /// Appends raw bytes at the end of the log.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;

    /// Replaces the whole log (snapshot compaction, corrupt-tail trim).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError>;

    /// Current log length in bytes.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn len(&self) -> Result<u64, WalError>;

    /// `true` when the log is empty.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn is_empty(&self) -> Result<bool, WalError> {
        Ok(self.len()? == 0)
    }

    /// Reads `len` bytes starting at `offset`, for paged cold-tier
    /// readers that must not materialise the whole log. Reading past the
    /// end returns the available suffix (possibly empty) rather than an
    /// error, mirroring `pread` semantics.
    ///
    /// The default implementation materialises the whole log via
    /// [`JournalStore::read`]; stores with random access (files) should
    /// override it.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>, WalError> {
        let bytes = self.read()?;
        let start = offset.min(bytes.len() as u64) as usize;
        let end = offset.saturating_add(len).min(bytes.len() as u64) as usize;
        Ok(bytes[start..end].to_vec())
    }
}

/// In-memory store over a shared buffer. Cloning yields a second handle on
/// the *same* bytes — exactly what a crash harness needs: drop the server
/// (the "crash"), keep the clone (the "disk"), and recover from it.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemStore {
    /// An empty in-memory log.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }

    /// A log pre-seeded with `bytes` (e.g. a prefix cut at a record
    /// boundary).
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemStore {
            bytes: Arc::new(Mutex::new(bytes)),
        }
    }

    /// A copy of the current log bytes.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().expect("journal buffer lock").clone()
    }
}

impl JournalStore for MemStore {
    fn read(&self) -> Result<Vec<u8>, WalError> {
        Ok(self.snapshot())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.bytes
            .lock()
            .expect("journal buffer lock")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let mut buf = self.bytes.lock().expect("journal buffer lock");
        buf.clear();
        buf.extend_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> Result<u64, WalError> {
        Ok(self.bytes.lock().expect("journal buffer lock").len() as u64)
    }

    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>, WalError> {
        let bytes = self.bytes.lock().expect("journal buffer lock");
        let start = offset.min(bytes.len() as u64) as usize;
        let end = offset.saturating_add(len).min(bytes.len() as u64) as usize;
        Ok(bytes[start..end].to_vec())
    }
}

/// When a [`FileStore`] pushes appends past the OS page cache with
/// `sync_all`. `flush()` alone survives a process crash but not power
/// loss; the fsync tax of each policy is measured in E18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync; rely on the OS writing dirty pages eventually.
    Never,
    /// fsync after every append (the durable default).
    #[default]
    EveryAppend,
    /// fsync after every `n`th append; `EveryN(0)` behaves like
    /// [`SyncPolicy::EveryAppend`].
    EveryN(u32),
}

/// File-backed store. Appends go straight to the file; `reset` writes a
/// sibling temp file and renames it into place so a crash during snapshot
/// compaction leaves either the old log or the new one, never a mix.
/// Durability against power loss is governed by [`SyncPolicy`].
///
/// Rename atomicity alone is not enough: until the *parent directory*
/// entry is fsynced, a power cut can resurrect the pre-rename log (the
/// rename lived only in the directory's dirty page). `reset` therefore
/// fsyncs the parent directory after the rename, and the constructor does
/// the same after creating a fresh log file, whenever the sync policy
/// asks for durability at all.
///
/// # Fail-stop appends
///
/// A failed append — and in particular a failed `sync_all` — leaves the
/// durable state *indeterminate*: on Linux a failed fsync may have already
/// dropped the dirty pages and marked them clean, so retrying the fsync
/// can report success over data that never reached the medium (the
/// "fsyncgate" failure mode). The store therefore **wedges** itself after
/// any append error and refuses every later append instead of retrying.
/// The only ways forward are a successful [`FileStore::reset`] (which
/// rewrites the whole log through a fresh temp file, re-establishing a
/// known byte image) or reopening the path and recovering from the
/// durable prefix.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
    sync: SyncPolicy,
    appends_since_sync: u32,
    dir_syncs: u64,
    wedged: bool,
}

impl FileStore {
    /// Opens (creating if absent) a file-backed log at `path`, syncing
    /// every append ([`SyncPolicy::EveryAppend`]).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the file cannot be created.
    pub fn new(path: impl AsRef<Path>) -> Result<Self, WalError> {
        FileStore::with_sync_policy(path, SyncPolicy::EveryAppend)
    }

    /// Opens (creating if absent) a file-backed log with an explicit sync
    /// policy.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the file cannot be created.
    pub fn with_sync_policy(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut store = FileStore {
            path,
            sync,
            appends_since_sync: 0,
            dir_syncs: 0,
            wedged: false,
        };
        if !store.path.exists() {
            std::fs::File::create(&store.path).map_err(|e| WalError::Io(e.to_string()))?;
            // A freshly created file is only durable once its directory
            // entry is, too.
            store.sync_parent_dir()?;
        }
        Ok(store)
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The store's sync policy.
    #[must_use]
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// How many times the parent directory has been fsynced (file
    /// creation and every durable `reset`) — observable evidence for the
    /// crash-after-rename tests.
    #[must_use]
    pub fn dir_syncs(&self) -> u64 {
        self.dir_syncs
    }

    /// `true` once an append (write or fsync) has failed. A wedged store
    /// refuses every further append — never retry an fsync whose failure
    /// left durability indeterminate. A successful [`FileStore::reset`]
    /// clears the wedge because it rewrites the whole log through a fresh
    /// temp file.
    #[must_use]
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    fn sync_parent_dir(&mut self) -> Result<(), WalError> {
        if self.sync == SyncPolicy::Never {
            return Ok(());
        }
        let parent = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let dir = std::fs::File::open(&parent).map_err(|e| WalError::Io(e.to_string()))?;
        dir.sync_all().map_err(|e| WalError::Io(e.to_string()))?;
        self.dir_syncs += 1;
        Ok(())
    }

    fn should_sync(&mut self) -> bool {
        match self.sync {
            SyncPolicy::Never => false,
            SyncPolicy::EveryAppend | SyncPolicy::EveryN(0) => true,
            SyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n {
                    self.appends_since_sync = 0;
                    true
                } else {
                    false
                }
            }
        }
    }
}

impl JournalStore for FileStore {
    fn read(&self) -> Result<Vec<u8>, WalError> {
        std::fs::read(&self.path).map_err(|e| WalError::Io(e.to_string()))
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        if self.wedged {
            return Err(WalError::Io(format!(
                "file store {} wedged after a failed append: durability indeterminate",
                self.path.display()
            )));
        }
        let result = (|| {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&self.path)
                .map_err(|e| WalError::Io(e.to_string()))?;
            file.write_all(bytes)
                .and_then(|()| file.flush())
                .map_err(|e| WalError::Io(e.to_string()))?;
            if self.should_sync() {
                file.sync_all().map_err(|e| WalError::Io(e.to_string()))?;
            }
            Ok(())
        })();
        if result.is_err() {
            // An error anywhere in the write/flush/fsync chain may have
            // left a partial suffix on the medium; wedge rather than risk
            // an fsync retry papering over dropped dirty pages.
            self.wedged = true;
        }
        result
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(|e| WalError::Io(e.to_string()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| WalError::Io(e.to_string()))?;
        if self.sync != SyncPolicy::Never {
            let file = std::fs::File::open(&self.path).map_err(|e| WalError::Io(e.to_string()))?;
            file.sync_all().map_err(|e| WalError::Io(e.to_string()))?;
        }
        // The rename itself lives in the directory entry: without this
        // fsync a crash can resurrect the pre-rename log image.
        self.sync_parent_dir()?;
        self.appends_since_sync = 0;
        // The whole log now matches a fully-written, freshly-synced file:
        // the indeterminate bytes a failed append left behind are gone.
        self.wedged = false;
        Ok(())
    }

    fn len(&self) -> Result<u64, WalError> {
        std::fs::metadata(&self.path)
            .map(|m| m.len())
            .map_err(|e| WalError::Io(e.to_string()))
    }

    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>, WalError> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = std::fs::File::open(&self.path).map_err(|e| WalError::Io(e.to_string()))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| WalError::Io(e.to_string()))?;
        let mut buf = vec![0u8; usize::try_from(len).map_err(|e| WalError::Io(e.to_string()))?];
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = file
                .read(&mut buf[filled..])
                .map_err(|e| WalError::Io(e.to_string()))?;
            if n == 0 {
                break; // short read past EOF: return the available suffix
            }
            filled += n;
        }
        buf.truncate(filled);
        Ok(buf)
    }
}

/// One write event captured by a [`TeeStore`], in store-call granularity:
/// the journal layer appends exactly one framed record per `append`, so
/// `Append` carries one whole frame, and `Reset` carries the full log
/// image written by a snapshot rewrite (or bootstrap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeEvent {
    /// Bytes appended at the end of the log (one framed record).
    Append(Vec<u8>),
    /// The log was replaced wholesale with this image.
    Reset(Vec<u8>),
}

/// Shared queue of [`TeeEvent`]s drained by a replication layer. Cloning
/// yields another handle on the same queue.
///
/// The queue can be bounded ([`LogOutbox::with_capacity`]): when the
/// shipper stops draining (a partitioned pump, a wedged primary) a capped
/// outbox drops the newest event instead of growing without limit, and
/// counts the drop in [`LogOutbox::dropped`]. Droppage is safe for the
/// replication protocol — a replica that misses tail frames falls behind
/// and is healed by the snapshot catch-up path at the next generation —
/// but it is *lag*, so the replication layer surfaces it as a typed
/// saturation metric rather than hiding it.
#[derive(Debug, Clone, Default)]
pub struct LogOutbox {
    events: Arc<Mutex<Vec<TeeEvent>>>,
    capacity: Arc<std::sync::atomic::AtomicUsize>,
    dropped: Arc<std::sync::atomic::AtomicU64>,
}

impl LogOutbox {
    /// An empty, unbounded outbox.
    #[must_use]
    pub fn new() -> Self {
        LogOutbox::default()
    }

    /// An empty outbox holding at most `capacity` pending events
    /// (`0` means unbounded).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let outbox = LogOutbox::default();
        outbox.set_capacity(capacity);
        outbox
    }

    /// Re-bounds the pending queue (`0` means unbounded). Events already
    /// queued are kept even if they exceed the new bound; only future
    /// pushes are refused.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity
            .store(capacity, std::sync::atomic::Ordering::Release);
    }

    /// The configured bound (`0` means unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Events refused because the queue was at capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Takes all pending events, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<TeeEvent> {
        std::mem::take(&mut *self.events.lock().expect("outbox lock"))
    }

    /// Pending event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("outbox lock").len()
    }

    /// `true` when nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, event: TeeEvent) {
        let cap = self.capacity();
        let mut events = self.events.lock().expect("outbox lock");
        if cap != 0 && events.len() >= cap {
            drop(events);
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            return;
        }
        events.push(event);
    }
}

/// A store wrapper that mirrors every successful write into a
/// [`LogOutbox`] — how a replication primary observes its own journal
/// writes in order to ship them. Reads pass straight through.
#[derive(Debug)]
pub struct TeeStore<S: JournalStore> {
    inner: S,
    outbox: LogOutbox,
}

impl<S: JournalStore> TeeStore<S> {
    /// Wraps `inner`, mirroring writes into `outbox`.
    #[must_use]
    pub fn new(inner: S, outbox: LogOutbox) -> Self {
        TeeStore { inner, outbox }
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: JournalStore> JournalStore for TeeStore<S> {
    fn read(&self) -> Result<Vec<u8>, WalError> {
        self.inner.read()
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.inner.append(bytes)?;
        self.outbox.push(TeeEvent::Append(bytes.to_vec()));
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.inner.reset(bytes)?;
        self.outbox.push(TeeEvent::Reset(bytes.to_vec()));
        Ok(())
    }

    fn len(&self) -> Result<u64, WalError> {
        self.inner.len()
    }

    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>, WalError> {
        self.inner.read_range(offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_clones_share_bytes() {
        let mut a = MemStore::new();
        let b = a.clone();
        a.append(b"hello").expect("append");
        assert_eq!(b.snapshot(), b"hello");
        assert_eq!(b.len().expect("len"), 5);
    }

    #[test]
    fn mem_store_reset_replaces_contents() {
        let mut s = MemStore::from_bytes(b"old".to_vec());
        s.reset(b"new-bytes").expect("reset");
        assert_eq!(s.snapshot(), b"new-bytes");
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("jaap-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::new(&path).expect("open");
        assert!(s.is_empty().expect("empty"));
        assert_eq!(s.sync_policy(), SyncPolicy::EveryAppend);
        s.append(b"abc").expect("append");
        s.append(b"def").expect("append");
        assert_eq!(s.read().expect("read"), b"abcdef");
        s.reset(b"zz").expect("reset");
        assert_eq!(s.read().expect("read"), b"zz");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_store_sync_policies_preserve_contents() {
        let dir = std::env::temp_dir().join(format!("jaap-wal-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for (name, policy) in [
            ("never.wal", SyncPolicy::Never),
            ("every.wal", SyncPolicy::EveryAppend),
            ("nth.wal", SyncPolicy::EveryN(3)),
        ] {
            let path = dir.join(name);
            let _ = std::fs::remove_file(&path);
            let mut s = FileStore::with_sync_policy(&path, policy).expect("open");
            for i in 0..7u8 {
                s.append(&[i]).expect("append");
            }
            assert_eq!(s.read().expect("read"), vec![0, 1, 2, 3, 4, 5, 6]);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn read_range_clamps_to_log_end() {
        let mut s = MemStore::new();
        s.append(b"0123456789").expect("append");
        assert_eq!(s.read_range(2, 4).expect("range"), b"2345");
        assert_eq!(s.read_range(8, 10).expect("range"), b"89");
        assert_eq!(s.read_range(20, 4).expect("range"), b"");
    }

    #[test]
    fn file_store_read_range_matches_mem_semantics() {
        let dir = std::env::temp_dir().join(format!("jaap-wal-range-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::new(&path).expect("open");
        s.append(b"0123456789").expect("append");
        assert_eq!(s.read_range(2, 4).expect("range"), b"2345");
        assert_eq!(s.read_range(8, 10).expect("range"), b"89");
        assert_eq!(s.read_range(20, 4).expect("range"), b"");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_store_fsyncs_directory_on_create_and_reset() {
        let dir = std::env::temp_dir().join(format!("jaap-wal-dirsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::new(&path).expect("open");
        assert_eq!(s.dir_syncs(), 1, "creation must make the entry durable");
        s.append(b"abc").expect("append");
        s.reset(b"zz").expect("reset");
        assert_eq!(s.dir_syncs(), 2, "rename must be followed by a dir fsync");
        // Re-opening an existing log needs no directory work.
        let reopened = FileStore::new(&path).expect("reopen");
        assert_eq!(reopened.dir_syncs(), 0);
        // `Never` opts out of directory durability along with file fsyncs.
        let lazy_path = dir.join("lazy.wal");
        let _ = std::fs::remove_file(&lazy_path);
        let mut lazy = FileStore::with_sync_policy(&lazy_path, SyncPolicy::Never).expect("open");
        lazy.reset(b"x").expect("reset");
        assert_eq!(lazy.dir_syncs(), 0);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&lazy_path);
    }

    #[test]
    fn file_store_wedges_after_a_failed_append_and_reset_recovers() {
        let dir = std::env::temp_dir().join(format!("jaap-wal-wedge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::new(&path).expect("open");
        s.append(b"abc").expect("append");
        assert!(!s.wedged());
        // Yank the file out from under the store: the next append fails.
        std::fs::remove_file(&path).expect("remove");
        assert!(s.append(b"def").is_err());
        assert!(s.wedged());
        // Restore the medium; the store still refuses — no fsync retry.
        std::fs::File::create(&path).expect("recreate");
        assert!(s.append(b"def").is_err(), "wedged store must not retry");
        assert!(s.wedged());
        // A successful reset rewrites the whole log and clears the wedge.
        s.reset(b"snapshot").expect("reset");
        assert!(!s.wedged());
        s.append(b"tail").expect("append after reset");
        assert_eq!(s.read().expect("read"), b"snapshottail");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capped_outbox_drops_newest_and_counts() {
        let outbox = LogOutbox::with_capacity(2);
        assert_eq!(outbox.capacity(), 2);
        let mut tee = TeeStore::new(MemStore::new(), outbox.clone());
        tee.append(b"one").expect("append");
        tee.append(b"two").expect("append");
        tee.append(b"three").expect("append");
        // The inner log has everything; the outbox refused the overflow.
        assert_eq!(tee.read().expect("read"), b"onetwothree");
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox.dropped(), 1);
        assert_eq!(
            outbox.drain(),
            vec![
                TeeEvent::Append(b"one".to_vec()),
                TeeEvent::Append(b"two".to_vec())
            ]
        );
        // Draining frees capacity again.
        tee.append(b"four").expect("append");
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox.dropped(), 1);
    }

    #[test]
    fn tee_store_mirrors_writes_into_outbox() {
        let outbox = LogOutbox::new();
        let inner = MemStore::new();
        let mut tee = TeeStore::new(inner.clone(), outbox.clone());
        tee.append(b"one").expect("append");
        tee.append(b"two").expect("append");
        tee.reset(b"image").expect("reset");
        tee.append(b"three").expect("append");
        assert_eq!(inner.snapshot(), b"imagethree");
        assert_eq!(tee.read().expect("read"), b"imagethree");
        assert_eq!(
            outbox.drain(),
            vec![
                TeeEvent::Append(b"one".to_vec()),
                TeeEvent::Append(b"two".to_vec()),
                TeeEvent::Reset(b"image".to_vec()),
                TeeEvent::Append(b"three".to_vec()),
            ]
        );
        assert!(outbox.is_empty());
    }
}
