//! Byte stores a journal can live in.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::WalError;

/// An append-only byte store with a rewrite escape hatch for snapshots.
///
/// Implementations must make `append` atomic from the *caller's* point of
/// view only in the success case: a crash (or injected fault) mid-append
/// may leave a torn suffix, which [`crate::frame::parse_log`] detects and
/// recovery truncates.
pub trait JournalStore: std::fmt::Debug + Send {
    /// The whole log, front to back.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn read(&self) -> Result<Vec<u8>, WalError>;

    /// Appends raw bytes at the end of the log.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;

    /// Replaces the whole log (snapshot compaction, corrupt-tail trim).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError>;

    /// Current log length in bytes.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn len(&self) -> Result<u64, WalError>;

    /// `true` when the log is empty.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the backing medium fails.
    fn is_empty(&self) -> Result<bool, WalError> {
        Ok(self.len()? == 0)
    }
}

/// In-memory store over a shared buffer. Cloning yields a second handle on
/// the *same* bytes — exactly what a crash harness needs: drop the server
/// (the "crash"), keep the clone (the "disk"), and recover from it.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemStore {
    /// An empty in-memory log.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }

    /// A log pre-seeded with `bytes` (e.g. a prefix cut at a record
    /// boundary).
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemStore {
            bytes: Arc::new(Mutex::new(bytes)),
        }
    }

    /// A copy of the current log bytes.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().expect("journal buffer lock").clone()
    }
}

impl JournalStore for MemStore {
    fn read(&self) -> Result<Vec<u8>, WalError> {
        Ok(self.snapshot())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.bytes
            .lock()
            .expect("journal buffer lock")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let mut buf = self.bytes.lock().expect("journal buffer lock");
        buf.clear();
        buf.extend_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> Result<u64, WalError> {
        Ok(self.bytes.lock().expect("journal buffer lock").len() as u64)
    }
}

/// File-backed store. Appends go straight to the file; `reset` writes a
/// sibling temp file and renames it into place so a crash during snapshot
/// compaction leaves either the old log or the new one, never a mix.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// Opens (creating if absent) a file-backed log at `path`.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the file cannot be created.
    pub fn new(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            std::fs::File::create(&path).map_err(|e| WalError::Io(e.to_string()))?;
        }
        Ok(FileStore { path })
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl JournalStore for FileStore {
    fn read(&self) -> Result<Vec<u8>, WalError> {
        std::fs::read(&self.path).map_err(|e| WalError::Io(e.to_string()))
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| WalError::Io(e.to_string()))?;
        file.write_all(bytes)
            .and_then(|()| file.flush())
            .map_err(|e| WalError::Io(e.to_string()))
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(|e| WalError::Io(e.to_string()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| WalError::Io(e.to_string()))
    }

    fn len(&self) -> Result<u64, WalError> {
        std::fs::metadata(&self.path)
            .map(|m| m.len())
            .map_err(|e| WalError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_clones_share_bytes() {
        let mut a = MemStore::new();
        let b = a.clone();
        a.append(b"hello").expect("append");
        assert_eq!(b.snapshot(), b"hello");
        assert_eq!(b.len().expect("len"), 5);
    }

    #[test]
    fn mem_store_reset_replaces_contents() {
        let mut s = MemStore::from_bytes(b"old".to_vec());
        s.reset(b"new-bytes").expect("reset");
        assert_eq!(s.snapshot(), b"new-bytes");
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("jaap-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::new(&path).expect("open");
        assert!(s.is_empty().expect("empty"));
        s.append(b"abc").expect("append");
        s.append(b"def").expect("append");
        assert_eq!(s.read().expect("read"), b"abcdef");
        s.reset(b"zz").expect("reset");
        assert_eq!(s.read().expect("read"), b"zz");
        let _ = std::fs::remove_file(&path);
    }
}
