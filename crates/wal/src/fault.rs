//! Seeded storage-fault injection, in the style of `jaap_net::fault`:
//! probabilities roll against a deterministic PRNG so every chaos run is
//! reproducible from its seed.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::store::JournalStore;
use crate::WalError;

/// What can go wrong between the journal and its medium.
#[derive(Debug, Clone, Copy)]
pub struct StoreFaultPlan {
    /// Seed for the fault PRNG.
    pub seed: u64,
    /// Probability an append is torn: only a strict prefix reaches the
    /// medium (the classic crash-mid-write).
    pub torn_write_prob: f64,
    /// Probability an append lands with one random bit flipped.
    pub bit_flip_prob: f64,
    /// Probability a read returns the log minus a random suffix.
    pub short_read_prob: f64,
    /// Probability a `reset` (tmp-write + rename) is lost wholesale: the
    /// crash lands after the rename but before the parent directory entry
    /// reaches the medium, so recovery sees the *old* log resurrected.
    pub reset_lost_prob: f64,
}

impl StoreFaultPlan {
    /// A fault-free plan with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        StoreFaultPlan {
            seed,
            torn_write_prob: 0.0,
            bit_flip_prob: 0.0,
            short_read_prob: 0.0,
            reset_lost_prob: 0.0,
        }
    }

    /// Sets the torn-write probability.
    #[must_use]
    pub fn with_torn_write(mut self, p: f64) -> Self {
        self.torn_write_prob = p;
        self
    }

    /// Sets the bit-flip probability.
    #[must_use]
    pub fn with_bit_flip(mut self, p: f64) -> Self {
        self.bit_flip_prob = p;
        self
    }

    /// Sets the short-read probability.
    #[must_use]
    pub fn with_short_read(mut self, p: f64) -> Self {
        self.short_read_prob = p;
        self
    }

    /// Sets the lost-reset probability (the un-fsynced-directory window).
    #[must_use]
    pub fn with_reset_lost(mut self, p: f64) -> Self {
        self.reset_lost_prob = p;
        self
    }

    /// Checks all probabilities are in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`WalError::InvalidPlan`] otherwise.
    pub fn validate(&self) -> Result<(), WalError> {
        for (name, p) in [
            ("torn_write_prob", self.torn_write_prob),
            ("bit_flip_prob", self.bit_flip_prob),
            ("short_read_prob", self.short_read_prob),
            ("reset_lost_prob", self.reset_lost_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(WalError::InvalidPlan(format!("{name} = {p} not in [0, 1]")));
            }
        }
        Ok(())
    }
}

/// Count of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Appends that lost a suffix.
    pub torn_writes: u64,
    /// Appends that landed with a flipped bit.
    pub bit_flips: u64,
    /// Reads that lost a suffix.
    pub short_reads: u64,
    /// Resets whose rename never became durable (old log resurrected).
    pub lost_resets: u64,
}

/// A store wrapper that injects the planned faults.
#[derive(Debug)]
pub struct FaultyStore<S: JournalStore> {
    inner: S,
    plan: StoreFaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl<S: JournalStore> FaultyStore<S> {
    /// Wraps `inner` under `plan`.
    ///
    /// # Errors
    ///
    /// [`WalError::InvalidPlan`] if the plan's probabilities are invalid.
    pub fn new(inner: S, plan: StoreFaultPlan) -> Result<Self, WalError> {
        plan.validate()?;
        Ok(FaultyStore {
            inner,
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
        })
    }

    /// Faults injected so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Unwraps the inner store.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn roll(&mut self) -> f64 {
        // Uniform in [0, 1) from the top 53 bits, as jaap_net::fault does.
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<S: JournalStore> JournalStore for FaultyStore<S> {
    fn read(&self) -> Result<Vec<u8>, WalError> {
        // Reads must stay deterministic per call site; short reads are
        // rolled in `read_faulty` below via interior state, so the trait
        // read applies no fault (the mutable path does).
        self.inner.read()
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let mut bytes = bytes.to_vec();
        if self.plan.bit_flip_prob > 0.0 && self.roll() < self.plan.bit_flip_prob {
            let bit = (self.rng.next_u64() as usize) % (bytes.len().max(1) * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            self.stats.bit_flips += 1;
        }
        if self.plan.torn_write_prob > 0.0 && self.roll() < self.plan.torn_write_prob {
            let keep = (self.rng.next_u64() as usize) % bytes.len().max(1);
            bytes.truncate(keep);
            self.stats.torn_writes += 1;
        }
        self.inner.append(&bytes)
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        if self.plan.reset_lost_prob > 0.0 && self.roll() < self.plan.reset_lost_prob {
            // Crash window after rename, before the directory fsync: the
            // caller believes the rewrite landed, but the medium still
            // holds the pre-reset image.
            self.stats.lost_resets += 1;
            return Ok(());
        }
        self.inner.reset(bytes)
    }

    fn len(&self) -> Result<u64, WalError> {
        self.inner.len()
    }
}

impl<S: JournalStore> FaultyStore<S> {
    /// A read that may be short, per the plan (separate from the trait's
    /// `read` so replay paths opt into read faults explicitly).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the inner store fails.
    pub fn read_faulty(&mut self) -> Result<Vec<u8>, WalError> {
        let mut bytes = self.inner.read()?;
        if self.plan.short_read_prob > 0.0 && self.roll() < self.plan.short_read_prob {
            let keep = (self.rng.next_u64() as usize) % bytes.len().max(1);
            bytes.truncate(keep);
            self.stats.short_reads += 1;
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{frame_record, parse_log, Tail};
    use crate::store::MemStore;

    #[test]
    fn plan_validation_rejects_out_of_range() {
        assert!(StoreFaultPlan::seeded(1)
            .with_torn_write(1.5)
            .validate()
            .is_err());
        assert!(StoreFaultPlan::seeded(1)
            .with_bit_flip(-0.1)
            .validate()
            .is_err());
        assert!(StoreFaultPlan::seeded(1)
            .with_short_read(0.3)
            .validate()
            .is_ok());
    }

    #[test]
    fn torn_writes_are_deterministic_and_detected() {
        let run = |seed| {
            let mut store = FaultyStore::new(
                MemStore::new(),
                StoreFaultPlan::seeded(seed).with_torn_write(0.5),
            )
            .expect("plan");
            for i in 0..20u8 {
                store.append(&frame_record(&[i; 16])).expect("append");
            }
            (store.stats(), store.into_inner().snapshot())
        };
        let (stats_a, bytes_a) = run(7);
        let (stats_b, bytes_b) = run(7);
        assert_eq!(stats_a, stats_b, "same seed, same faults");
        assert_eq!(bytes_a, bytes_b);
        assert!(stats_a.torn_writes > 0, "p=0.5 over 20 appends must tear");
        // A torn record is detected; the parser never yields a bad payload.
        let parsed = parse_log(&bytes_a);
        for rec in &parsed.records {
            assert_eq!(rec.len(), 16);
        }
        assert!(parsed.records.len() < 20);
    }

    #[test]
    fn bit_flips_break_checksums_not_parsers() {
        let mut store = FaultyStore::new(
            MemStore::new(),
            StoreFaultPlan::seeded(3).with_bit_flip(1.0),
        )
        .expect("plan");
        store
            .append(&frame_record(b"payload-bytes"))
            .expect("append");
        assert_eq!(store.stats().bit_flips, 1);
        let parsed = parse_log(&store.into_inner().snapshot());
        assert!(parsed.records.is_empty());
        assert!(matches!(parsed.tail, Tail::Truncated { .. }));
    }

    #[test]
    fn lost_reset_resurrects_the_old_log_image() {
        let mut store = FaultyStore::new(
            MemStore::new(),
            StoreFaultPlan::seeded(11).with_reset_lost(1.0),
        )
        .expect("plan");
        for i in 0..4u8 {
            store.append(&frame_record(&[i; 8])).expect("append");
        }
        let pre_reset = store.read().expect("read");
        // The caller sees a successful compaction...
        store.reset(&frame_record(b"snapshot")).expect("reset");
        assert_eq!(store.stats().lost_resets, 1);
        // ...but the medium still holds the pre-rename image: exactly the
        // crash window an un-fsynced parent directory leaves open. The
        // resurrected image is still a *valid* log (the old one), so
        // recovery lands on a consistent earlier state, not garbage.
        let resurrected = store.read().expect("read");
        assert_eq!(resurrected, pre_reset);
        let parsed = parse_log(&resurrected);
        assert_eq!(parsed.records.len(), 4);
        assert_eq!(parsed.tail, Tail::Clean);
    }

    #[test]
    fn short_reads_only_affect_read_faulty() {
        let mut store = FaultyStore::new(
            MemStore::new(),
            StoreFaultPlan::seeded(9).with_short_read(1.0),
        )
        .expect("plan");
        store.append(b"0123456789").expect("append");
        assert_eq!(store.read().expect("clean read").len(), 10);
        assert!(store.read_faulty().expect("short read").len() < 10);
        assert_eq!(store.stats().short_reads, 1);
    }
}
