//! Seeded storage-fault injection, in the style of `jaap_net::fault`:
//! probabilities roll against a deterministic PRNG so every chaos run is
//! reproducible from its seed.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::store::JournalStore;
use crate::WalError;

/// The kinds of storage fault [`FaultyStore`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An append loses a random suffix (crash-mid-write).
    TornWrite,
    /// An append lands with one random bit flipped.
    BitFlip,
    /// A read loses a random suffix.
    ShortRead,
    /// A reset's rename never becomes durable (old log resurrected).
    LostReset,
    /// The append's fsync fails *after* a short write reached the medium:
    /// durability is indeterminate, so the store wedges itself and refuses
    /// every later append — the fsyncgate-correct response (retrying the
    /// fsync could report success over silently-dropped dirty pages).
    SyncFail,
}

/// What can go wrong between the journal and its medium.
#[derive(Debug, Clone, Copy)]
pub struct StoreFaultPlan {
    /// Seed for the fault PRNG.
    pub seed: u64,
    /// Probability an append is torn: only a strict prefix reaches the
    /// medium (the classic crash-mid-write).
    pub torn_write_prob: f64,
    /// Probability an append lands with one random bit flipped.
    pub bit_flip_prob: f64,
    /// Probability a read returns the log minus a random suffix.
    pub short_read_prob: f64,
    /// Probability a `reset` (tmp-write + rename) is lost wholesale: the
    /// crash lands after the rename but before the parent directory entry
    /// reaches the medium, so recovery sees the *old* log resurrected.
    pub reset_lost_prob: f64,
    /// Probability an append's fsync fails ([`FaultKind::SyncFail`]),
    /// rolled on the seeded PRNG like every other fault.
    pub sync_fail_prob: f64,
    /// Deterministic schedule: fail the fsync of the append with this
    /// 0-based index (counted across the store's lifetime), regardless of
    /// probability. Composes with `sync_fail_prob`.
    pub sync_fail_after: Option<u64>,
}

impl StoreFaultPlan {
    /// A fault-free plan with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        StoreFaultPlan {
            seed,
            torn_write_prob: 0.0,
            bit_flip_prob: 0.0,
            short_read_prob: 0.0,
            reset_lost_prob: 0.0,
            sync_fail_prob: 0.0,
            sync_fail_after: None,
        }
    }

    /// Sets the torn-write probability.
    #[must_use]
    pub fn with_torn_write(mut self, p: f64) -> Self {
        self.torn_write_prob = p;
        self
    }

    /// Sets the bit-flip probability.
    #[must_use]
    pub fn with_bit_flip(mut self, p: f64) -> Self {
        self.bit_flip_prob = p;
        self
    }

    /// Sets the short-read probability.
    #[must_use]
    pub fn with_short_read(mut self, p: f64) -> Self {
        self.short_read_prob = p;
        self
    }

    /// Sets the lost-reset probability (the un-fsynced-directory window).
    #[must_use]
    pub fn with_reset_lost(mut self, p: f64) -> Self {
        self.reset_lost_prob = p;
        self
    }

    /// Sets the fsync-failure probability ([`FaultKind::SyncFail`]).
    #[must_use]
    pub fn with_sync_fail(mut self, p: f64) -> Self {
        self.sync_fail_prob = p;
        self
    }

    /// Schedules a deterministic [`FaultKind::SyncFail`] on the append
    /// with 0-based index `n`.
    #[must_use]
    pub fn with_sync_fail_after(mut self, n: u64) -> Self {
        self.sync_fail_after = Some(n);
        self
    }

    /// Checks all probabilities are in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`WalError::InvalidPlan`] otherwise.
    pub fn validate(&self) -> Result<(), WalError> {
        for (name, p) in [
            ("torn_write_prob", self.torn_write_prob),
            ("bit_flip_prob", self.bit_flip_prob),
            ("short_read_prob", self.short_read_prob),
            ("reset_lost_prob", self.reset_lost_prob),
            ("sync_fail_prob", self.sync_fail_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(WalError::InvalidPlan(format!("{name} = {p} not in [0, 1]")));
            }
        }
        Ok(())
    }
}

/// Count of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Appends that lost a suffix.
    pub torn_writes: u64,
    /// Appends that landed with a flipped bit.
    pub bit_flips: u64,
    /// Reads that lost a suffix.
    pub short_reads: u64,
    /// Resets whose rename never became durable (old log resurrected).
    pub lost_resets: u64,
    /// Appends whose fsync failed after a short write (store wedged).
    pub sync_fails: u64,
}

/// A store wrapper that injects the planned faults.
#[derive(Debug)]
pub struct FaultyStore<S: JournalStore> {
    inner: S,
    plan: StoreFaultPlan,
    rng: StdRng,
    stats: FaultStats,
    appends: u64,
    wedged_by: Option<FaultKind>,
}

impl<S: JournalStore> FaultyStore<S> {
    /// Wraps `inner` under `plan`.
    ///
    /// # Errors
    ///
    /// [`WalError::InvalidPlan`] if the plan's probabilities are invalid.
    pub fn new(inner: S, plan: StoreFaultPlan) -> Result<Self, WalError> {
        plan.validate()?;
        Ok(FaultyStore {
            inner,
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
            appends: 0,
            wedged_by: None,
        })
    }

    /// Faults injected so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The fault that wedged this store, if any. A wedged store refuses
    /// every further append; only recovery over the inner medium's
    /// durable prefix yields a usable store again.
    #[must_use]
    pub fn wedged(&self) -> Option<FaultKind> {
        self.wedged_by
    }

    /// Unwraps the inner store.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn roll(&mut self) -> f64 {
        // Uniform in [0, 1) from the top 53 bits, as jaap_net::fault does.
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<S: JournalStore> JournalStore for FaultyStore<S> {
    fn read(&self) -> Result<Vec<u8>, WalError> {
        // Reads must stay deterministic per call site; short reads are
        // rolled in `read_faulty` below via interior state, so the trait
        // read applies no fault (the mutable path does).
        self.inner.read()
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        if let Some(kind) = self.wedged_by {
            return Err(WalError::Io(format!(
                "store wedged after {kind:?}: durability indeterminate, reopen to recover"
            )));
        }
        let index = self.appends;
        self.appends += 1;
        let scheduled_sync_fail = self.plan.sync_fail_after == Some(index);
        let rolled_sync_fail =
            self.plan.sync_fail_prob > 0.0 && self.roll() < self.plan.sync_fail_prob;
        if scheduled_sync_fail || rolled_sync_fail {
            // Short-write-then-error: a strict prefix reaches the medium,
            // then the fsync reports failure. The durable state is now
            // indeterminate, so the store wedges itself (no fsync retry).
            let keep = (self.rng.next_u64() as usize) % bytes.len().max(1);
            self.inner.append(&bytes[..keep])?;
            self.stats.sync_fails += 1;
            self.wedged_by = Some(FaultKind::SyncFail);
            return Err(WalError::Io(format!(
                "simulated fsync failure on append {index}: {keep}/{} bytes reached the medium",
                bytes.len()
            )));
        }
        let mut bytes = bytes.to_vec();
        if self.plan.bit_flip_prob > 0.0 && self.roll() < self.plan.bit_flip_prob {
            let bit = (self.rng.next_u64() as usize) % (bytes.len().max(1) * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            self.stats.bit_flips += 1;
        }
        if self.plan.torn_write_prob > 0.0 && self.roll() < self.plan.torn_write_prob {
            let keep = (self.rng.next_u64() as usize) % bytes.len().max(1);
            bytes.truncate(keep);
            self.stats.torn_writes += 1;
        }
        self.inner.append(&bytes)
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        if let Some(kind) = self.wedged_by {
            return Err(WalError::Io(format!(
                "store wedged after {kind:?}: durability indeterminate, reopen to recover"
            )));
        }
        if self.plan.reset_lost_prob > 0.0 && self.roll() < self.plan.reset_lost_prob {
            // Crash window after rename, before the directory fsync: the
            // caller believes the rewrite landed, but the medium still
            // holds the pre-reset image.
            self.stats.lost_resets += 1;
            return Ok(());
        }
        self.inner.reset(bytes)
    }

    fn len(&self) -> Result<u64, WalError> {
        self.inner.len()
    }
}

impl<S: JournalStore> FaultyStore<S> {
    /// A read that may be short, per the plan (separate from the trait's
    /// `read` so replay paths opt into read faults explicitly).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the inner store fails.
    pub fn read_faulty(&mut self) -> Result<Vec<u8>, WalError> {
        let mut bytes = self.inner.read()?;
        if self.plan.short_read_prob > 0.0 && self.roll() < self.plan.short_read_prob {
            let keep = (self.rng.next_u64() as usize) % bytes.len().max(1);
            bytes.truncate(keep);
            self.stats.short_reads += 1;
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{frame_record, parse_log, Tail};
    use crate::store::MemStore;

    #[test]
    fn plan_validation_rejects_out_of_range() {
        assert!(StoreFaultPlan::seeded(1)
            .with_torn_write(1.5)
            .validate()
            .is_err());
        assert!(StoreFaultPlan::seeded(1)
            .with_bit_flip(-0.1)
            .validate()
            .is_err());
        assert!(StoreFaultPlan::seeded(1)
            .with_short_read(0.3)
            .validate()
            .is_ok());
    }

    #[test]
    fn torn_writes_are_deterministic_and_detected() {
        let run = |seed| {
            let mut store = FaultyStore::new(
                MemStore::new(),
                StoreFaultPlan::seeded(seed).with_torn_write(0.5),
            )
            .expect("plan");
            for i in 0..20u8 {
                store.append(&frame_record(&[i; 16])).expect("append");
            }
            (store.stats(), store.into_inner().snapshot())
        };
        let (stats_a, bytes_a) = run(7);
        let (stats_b, bytes_b) = run(7);
        assert_eq!(stats_a, stats_b, "same seed, same faults");
        assert_eq!(bytes_a, bytes_b);
        assert!(stats_a.torn_writes > 0, "p=0.5 over 20 appends must tear");
        // A torn record is detected; the parser never yields a bad payload.
        let parsed = parse_log(&bytes_a);
        for rec in &parsed.records {
            assert_eq!(rec.len(), 16);
        }
        assert!(parsed.records.len() < 20);
    }

    #[test]
    fn bit_flips_break_checksums_not_parsers() {
        let mut store = FaultyStore::new(
            MemStore::new(),
            StoreFaultPlan::seeded(3).with_bit_flip(1.0),
        )
        .expect("plan");
        store
            .append(&frame_record(b"payload-bytes"))
            .expect("append");
        assert_eq!(store.stats().bit_flips, 1);
        let parsed = parse_log(&store.into_inner().snapshot());
        assert!(parsed.records.is_empty());
        assert!(matches!(parsed.tail, Tail::Truncated { .. }));
    }

    #[test]
    fn lost_reset_resurrects_the_old_log_image() {
        let mut store = FaultyStore::new(
            MemStore::new(),
            StoreFaultPlan::seeded(11).with_reset_lost(1.0),
        )
        .expect("plan");
        for i in 0..4u8 {
            store.append(&frame_record(&[i; 8])).expect("append");
        }
        let pre_reset = store.read().expect("read");
        // The caller sees a successful compaction...
        store.reset(&frame_record(b"snapshot")).expect("reset");
        assert_eq!(store.stats().lost_resets, 1);
        // ...but the medium still holds the pre-rename image: exactly the
        // crash window an un-fsynced parent directory leaves open. The
        // resurrected image is still a *valid* log (the old one), so
        // recovery lands on a consistent earlier state, not garbage.
        let resurrected = store.read().expect("read");
        assert_eq!(resurrected, pre_reset);
        let parsed = parse_log(&resurrected);
        assert_eq!(parsed.records.len(), 4);
        assert_eq!(parsed.tail, Tail::Clean);
    }

    #[test]
    fn scheduled_sync_fail_wedges_the_store_on_a_durable_prefix() {
        let mut store = FaultyStore::new(
            MemStore::new(),
            StoreFaultPlan::seeded(5).with_sync_fail_after(3),
        )
        .expect("plan");
        for i in 0..3u8 {
            store.append(&frame_record(&[i; 16])).expect("append");
        }
        let durable = store.read().expect("read");
        // The scheduled append fails after a short write...
        let err = store.append(&frame_record(&[9; 16]));
        assert!(matches!(err, Err(WalError::Io(_))));
        assert_eq!(store.stats().sync_fails, 1);
        assert_eq!(store.wedged(), Some(FaultKind::SyncFail));
        // ...and the store refuses everything after it: no fsync retry.
        assert!(store.append(&frame_record(&[10; 16])).is_err());
        assert!(store.reset(&frame_record(b"snapshot")).is_err());
        // Recovery over the inner medium lands on the durable prefix: the
        // short-written frame is a torn tail the parser truncates.
        let parsed = parse_log(&store.into_inner().snapshot());
        assert_eq!(parsed.records.len(), 3);
        let clean: usize = match parsed.tail {
            Tail::Clean => durable.len(),
            Tail::Truncated { offset, .. } => offset,
        };
        assert_eq!(clean, durable.len());
    }

    #[test]
    fn sync_fail_probability_is_seed_deterministic() {
        let run = |seed| {
            let mut store = FaultyStore::new(
                MemStore::new(),
                StoreFaultPlan::seeded(seed).with_sync_fail(0.2),
            )
            .expect("plan");
            let mut failed_at = None;
            for i in 0..50u8 {
                if store.append(&frame_record(&[i; 8])).is_err() {
                    failed_at = Some(i);
                    break;
                }
            }
            (failed_at, store.stats().sync_fails)
        };
        assert_eq!(run(21), run(21), "same seed, same schedule");
        let (failed_at, fails) = run(21);
        assert!(failed_at.is_some(), "p=0.2 over 50 appends must fail");
        assert_eq!(fails, 1, "the store wedges at the first failure");
    }

    #[test]
    fn short_reads_only_affect_read_faulty() {
        let mut store = FaultyStore::new(
            MemStore::new(),
            StoreFaultPlan::seeded(9).with_short_read(1.0),
        )
        .expect("plan");
        store.append(b"0123456789").expect("append");
        assert_eq!(store.read().expect("clean read").len(), 10);
        assert!(store.read_faulty().expect("short read").len() < 10);
        assert_eq!(store.stats().short_reads, 1);
    }
}
