//! Paged cold-tier reader: a bounded cache of fixed-size, page-aligned
//! windows over the flushed byte log.
//!
//! The store never holds decoded rows in memory — the index maps keys to
//! byte spans, and this pager materialises just the pages a lookup
//! touches. Eviction is insertion-order FIFO (the same bounded-structure
//! idiom as the server's verify cache): simple, allocation-light, and
//! good enough because the hot working set above us is already served by
//! the verify-cache/memo layers.

use std::collections::{HashMap, VecDeque};

use jaap_wal::JournalStore;

use crate::StoreError;

/// A bounded page cache over a [`JournalStore`]'s flushed prefix.
#[derive(Debug)]
pub(crate) struct Pager {
    /// Page size in bytes; spans are read page-by-page.
    page_size: u64,
    /// Maximum resident full pages.
    capacity: usize,
    pages: HashMap<u64, Vec<u8>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    /// Cache misses (pages fetched from the store).
    pub misses: u64,
    /// Pages evicted to stay within `capacity`.
    pub evictions: u64,
}

impl Pager {
    pub(crate) fn new(page_size: u64, capacity: usize) -> Self {
        Pager {
            page_size: page_size.max(512),
            capacity: capacity.max(1),
            pages: HashMap::new(),
            order: VecDeque::new(),
            misses: 0,
            evictions: 0,
        }
    }

    /// Bytes held by resident pages.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.pages.values().map(|p| p.len() as u64).sum()
    }

    /// Resident page count.
    pub(crate) fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Shrinks (or grows) the page budget, evicting immediately if over.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.pages.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.pages.remove(&old);
                self.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Drops every resident page (after a compaction rewrites the log).
    pub(crate) fn clear(&mut self) {
        self.pages.clear();
        self.order.clear();
    }

    /// Reads `[offset, offset+len)` from the flushed log through the page
    /// cache. Only *full* pages are cached: a partial page at the flushed
    /// frontier will grow on the next flush, so caching it would serve
    /// stale short reads.
    pub(crate) fn read_span(
        &mut self,
        store: &dyn JournalStore,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let page_no = pos / self.page_size;
            let page_base = page_no * self.page_size;
            let in_page = (pos - page_base) as usize;
            let want = ((end - pos) as usize).min(self.page_size as usize - in_page);
            if let Some(page) = self.pages.get(&page_no) {
                if page.len() < in_page + want {
                    return Err(StoreError::Corrupt(format!(
                        "page {page_no} shorter than indexed span ({} < {})",
                        page.len(),
                        in_page + want
                    )));
                }
                out.extend_from_slice(&page[in_page..in_page + want]);
            } else {
                self.misses += 1;
                let page = store
                    .read_range(page_base, self.page_size)
                    .map_err(|e| StoreError::Io(e.to_string()))?;
                if page.len() < in_page + want {
                    return Err(StoreError::Corrupt(format!(
                        "store returned short page {page_no} ({} < {})",
                        page.len(),
                        in_page + want
                    )));
                }
                out.extend_from_slice(&page[in_page..in_page + want]);
                if page.len() == self.page_size as usize {
                    if self.pages.len() >= self.capacity {
                        if let Some(old) = self.order.pop_front() {
                            self.pages.remove(&old);
                            self.evictions += 1;
                        }
                    }
                    self.pages.insert(page_no, page);
                    self.order.push_back(page_no);
                }
            }
            pos += want as u64;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_wal::MemStore;

    #[test]
    fn spans_cross_page_boundaries() {
        let mut store = MemStore::new();
        let bytes: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        store.append(&bytes).expect("append");
        let mut pager = Pager::new(512, 4);
        for (offset, len) in [(0u64, 10u64), (500, 600), (1000, 2000), (4000, 96)] {
            let got = pager.read_span(&store, offset, len).expect("span");
            assert_eq!(got, bytes[offset as usize..(offset + len) as usize]);
        }
        assert!(pager.misses > 0);
        assert!(pager.resident_pages() <= 4);
    }

    #[test]
    fn eviction_keeps_residency_bounded() {
        let mut store = MemStore::new();
        store.append(&vec![7u8; 16 * 512]).expect("append");
        let mut pager = Pager::new(512, 2);
        for page in 0..16u64 {
            pager.read_span(&store, page * 512, 512).expect("span");
        }
        assert_eq!(pager.resident_pages(), 2);
        assert_eq!(pager.resident_bytes(), 2 * 512);
        assert_eq!(pager.evictions, 14);
        assert_eq!(pager.misses, 16);
    }

    #[test]
    fn partial_frontier_pages_are_not_cached() {
        let mut store = MemStore::new();
        store.append(&vec![1u8; 700]).expect("append");
        let mut pager = Pager::new(512, 4);
        pager.read_span(&store, 512, 188).expect("span");
        assert_eq!(pager.resident_pages(), 0, "short page must not be cached");
        // After more bytes land the same page serves the longer span.
        store.append(&vec![2u8; 324]).expect("append");
        let got = pager.read_span(&store, 512, 512).expect("span");
        assert_eq!(got[0..188], vec![1u8; 188]);
        assert_eq!(got[188..], vec![2u8; 324]);
        assert_eq!(pager.resident_pages(), 1);
    }
}
