//! Canonical byte encoding for store records.
//!
//! Every row the store persists is one [`StoreRecord`], encoded with the
//! same length-prefixed TLV discipline as the server journal but under
//! its *own* domain string (`jaap-store-record-v1`), so store bytes can
//! never be confused with journal bytes even though both live in
//! `jaap-wal` frames.

use jaap_core::certs::Validity;
use jaap_core::protocol::Acl;
use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::rsa::{RsaPublicKey, RsaSignature};
use jaap_pki::encoding::{Decoder, Encoder};
use jaap_pki::{
    AttributeCertificate, AttributeRevocation, Crl, CrlEntry, IdentityCertificate,
    IdentityRevocation, ThresholdAttributeCertificate, ThresholdSubject,
};

use crate::StoreError;

/// Domain separator for store record bytes.
const DOMAIN: &str = "jaap-store-record-v1";

/// One persisted row. The enum tag doubles as the column discriminant:
/// each variant lands in exactly one column family (see
/// [`crate::Column`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreRecord {
    /// A CA-signed identity certificate (certs-by-subject column, with a
    /// certs-by-issuer secondary index).
    IdentityCert(IdentityCertificate),
    /// A jointly-signed threshold attribute certificate (group column).
    ThresholdCert(ThresholdAttributeCertificate),
    /// A single-subject attribute certificate (grant column, keyed by
    /// subject and group).
    AttributeCert(AttributeCertificate),
    /// An identity revocation (revocations column).
    IdentityRevocation(IdentityRevocation),
    /// An attribute revocation (revocations column).
    AttributeRevocation(AttributeRevocation),
    /// A full CRL, anchored by sequence number.
    CrlAnchor(Crl),
    /// One object's ACL row.
    AclRow {
        /// The object the ACL protects.
        object: String,
        /// The disjunction of `(group, action)` permissions.
        acl: Acl,
    },
}

impl StoreRecord {
    /// The canonical encoding.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new(DOMAIN);
        match self {
            StoreRecord::IdentityCert(cert) => {
                e.put_u64(1);
                put_identity_cert(&mut e, cert);
            }
            StoreRecord::ThresholdCert(cert) => {
                e.put_u64(2);
                put_threshold_cert(&mut e, cert);
            }
            StoreRecord::AttributeCert(cert) => {
                e.put_u64(3);
                put_attribute_cert(&mut e, cert);
            }
            StoreRecord::IdentityRevocation(rev) => {
                e.put_u64(4);
                e.put_str(&rev.issuer);
                e.put_str(&rev.subject);
                put_key(&mut e, &rev.subject_key);
                e.put_i64(rev.revoked_from.0);
                e.put_i64(rev.timestamp.0);
                put_sig(&mut e, &rev.signature);
            }
            StoreRecord::AttributeRevocation(rev) => {
                e.put_u64(5);
                e.put_str(&rev.issuer);
                put_subject(&mut e, &rev.subject);
                e.put_str(rev.group.as_str());
                e.put_i64(rev.revoked_from.0);
                e.put_i64(rev.timestamp.0);
                put_sig(&mut e, &rev.signature);
            }
            StoreRecord::CrlAnchor(crl) => {
                e.put_u64(6);
                e.put_str(&crl.issuer);
                e.put_u64(crl.sequence);
                e.put_i64(crl.timestamp.0);
                e.put_list(crl.entries.len());
                for entry in &crl.entries {
                    put_subject(&mut e, &entry.subject);
                    e.put_str(entry.group.as_str());
                    e.put_i64(entry.revoked_from.0);
                }
                put_sig(&mut e, &crl.signature);
            }
            StoreRecord::AclRow { object, acl } => {
                e.put_u64(7);
                e.put_str(object);
                e.put_list(acl.entries().len());
                for entry in acl.entries() {
                    e.put_str(entry.group.as_str());
                    e.put_str(&entry.action);
                }
            }
        }
        e.finish()
    }

    /// Decodes one record; rejects trailing bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any malformed encoding.
    pub fn decode(bytes: &[u8]) -> Result<StoreRecord, StoreError> {
        let mut d = Decoder::new(bytes, DOMAIN).map_err(codec_err)?;
        let record = match d.take_u64().map_err(codec_err)? {
            1 => StoreRecord::IdentityCert(take_identity_cert(&mut d)?),
            2 => StoreRecord::ThresholdCert(take_threshold_cert(&mut d)?),
            3 => StoreRecord::AttributeCert(take_attribute_cert(&mut d)?),
            4 => StoreRecord::IdentityRevocation(IdentityRevocation {
                issuer: d.take_str().map_err(codec_err)?,
                subject: d.take_str().map_err(codec_err)?,
                subject_key: take_key(&mut d)?,
                revoked_from: take_time(&mut d)?,
                timestamp: take_time(&mut d)?,
                signature: take_sig(&mut d)?,
            }),
            5 => StoreRecord::AttributeRevocation(AttributeRevocation {
                issuer: d.take_str().map_err(codec_err)?,
                subject: take_subject(&mut d)?,
                group: GroupId::new(&d.take_str().map_err(codec_err)?),
                revoked_from: take_time(&mut d)?,
                timestamp: take_time(&mut d)?,
                signature: take_sig(&mut d)?,
            }),
            6 => {
                let issuer = d.take_str().map_err(codec_err)?;
                let sequence = d.take_u64().map_err(codec_err)?;
                let timestamp = take_time(&mut d)?;
                let count = d.take_list().map_err(codec_err)?;
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    entries.push(CrlEntry {
                        subject: take_subject(&mut d)?,
                        group: GroupId::new(&d.take_str().map_err(codec_err)?),
                        revoked_from: take_time(&mut d)?,
                    });
                }
                StoreRecord::CrlAnchor(Crl {
                    issuer,
                    sequence,
                    timestamp,
                    entries,
                    signature: take_sig(&mut d)?,
                })
            }
            7 => {
                let object = d.take_str().map_err(codec_err)?;
                let count = d.take_list().map_err(codec_err)?;
                let mut acl = Acl::new();
                for _ in 0..count {
                    let group = GroupId::new(&d.take_str().map_err(codec_err)?);
                    let action = d.take_str().map_err(codec_err)?;
                    acl.permit(group, action);
                }
                StoreRecord::AclRow { object, acl }
            }
            other => {
                return Err(StoreError::Corrupt(format!("unknown record tag {other}")));
            }
        };
        if !d.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes after record".into()));
        }
        Ok(record)
    }
}

fn codec_err(e: jaap_pki::PkiError) -> StoreError {
    StoreError::Corrupt(format!("undecodable record: {e}"))
}

fn put_key(e: &mut Encoder, key: &RsaPublicKey) {
    e.put_bytes(&key.modulus().to_bytes_be());
    e.put_bytes(&key.exponent().to_bytes_be());
}

fn take_key(d: &mut Decoder<'_>) -> Result<RsaPublicKey, StoreError> {
    let n = jaap_bigint::Nat::from_bytes_be(&d.take_bytes().map_err(codec_err)?);
    let exp = jaap_bigint::Nat::from_bytes_be(&d.take_bytes().map_err(codec_err)?);
    Ok(RsaPublicKey::new(n, exp))
}

fn put_sig(e: &mut Encoder, sig: &RsaSignature) {
    e.put_bytes(&sig.value().to_bytes_be());
}

fn take_sig(d: &mut Decoder<'_>) -> Result<RsaSignature, StoreError> {
    Ok(RsaSignature::from_value(jaap_bigint::Nat::from_bytes_be(
        &d.take_bytes().map_err(codec_err)?,
    )))
}

fn put_validity(e: &mut Encoder, v: &Validity) {
    e.put_i64(v.begin.0);
    e.put_i64(v.end.0);
}

fn take_validity(d: &mut Decoder<'_>) -> Result<Validity, StoreError> {
    let begin = take_time(d)?;
    let end = take_time(d)?;
    if begin > end {
        return Err(StoreError::Corrupt(format!(
            "inverted validity window [{begin:?}, {end:?}]"
        )));
    }
    Ok(Validity { begin, end })
}

fn take_time(d: &mut Decoder<'_>) -> Result<Time, StoreError> {
    Ok(Time(d.take_i64().map_err(codec_err)?))
}

fn put_subject(e: &mut Encoder, subject: &ThresholdSubject) {
    e.put_u64(subject.m as u64);
    e.put_list(subject.members.len());
    for (name, key) in &subject.members {
        e.put_str(name);
        put_key(e, key);
    }
}

fn take_subject(d: &mut Decoder<'_>) -> Result<ThresholdSubject, StoreError> {
    let m = usize::try_from(d.take_u64().map_err(codec_err)?)
        .map_err(|_| StoreError::Corrupt("threshold overflows usize".into()))?;
    let count = d.take_list().map_err(codec_err)?;
    let mut members = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = d.take_str().map_err(codec_err)?;
        members.push((name, take_key(d)?));
    }
    ThresholdSubject::new(members, m)
        .map_err(|e| StoreError::Corrupt(format!("undecodable subject: {e}")))
}

fn put_identity_cert(e: &mut Encoder, cert: &IdentityCertificate) {
    e.put_str(&cert.issuer);
    e.put_str(&cert.subject);
    put_key(e, &cert.subject_key);
    put_validity(e, &cert.validity);
    e.put_i64(cert.timestamp.0);
    put_sig(e, &cert.signature);
}

fn take_identity_cert(d: &mut Decoder<'_>) -> Result<IdentityCertificate, StoreError> {
    Ok(IdentityCertificate {
        issuer: d.take_str().map_err(codec_err)?,
        subject: d.take_str().map_err(codec_err)?,
        subject_key: take_key(d)?,
        validity: take_validity(d)?,
        timestamp: take_time(d)?,
        signature: take_sig(d)?,
    })
}

fn put_threshold_cert(e: &mut Encoder, cert: &ThresholdAttributeCertificate) {
    e.put_str(&cert.issuer);
    put_subject(e, &cert.subject);
    e.put_str(cert.group.as_str());
    put_validity(e, &cert.validity);
    e.put_i64(cert.timestamp.0);
    put_sig(e, &cert.signature);
}

fn take_threshold_cert(d: &mut Decoder<'_>) -> Result<ThresholdAttributeCertificate, StoreError> {
    Ok(ThresholdAttributeCertificate {
        issuer: d.take_str().map_err(codec_err)?,
        subject: take_subject(d)?,
        group: GroupId::new(&d.take_str().map_err(codec_err)?),
        validity: take_validity(d)?,
        timestamp: take_time(d)?,
        signature: take_sig(d)?,
    })
}

fn put_attribute_cert(e: &mut Encoder, cert: &AttributeCertificate) {
    e.put_str(&cert.issuer);
    e.put_str(&cert.subject);
    put_key(e, &cert.subject_key);
    e.put_str(cert.group.as_str());
    put_validity(e, &cert.validity);
    e.put_i64(cert.timestamp.0);
    put_sig(e, &cert.signature);
}

fn take_attribute_cert(d: &mut Decoder<'_>) -> Result<AttributeCertificate, StoreError> {
    Ok(AttributeCertificate {
        issuer: d.take_str().map_err(codec_err)?,
        subject: d.take_str().map_err(codec_err)?,
        subject_key: take_key(d)?,
        group: GroupId::new(&d.take_str().map_err(codec_err)?),
        validity: take_validity(d)?,
        timestamp: take_time(d)?,
        signature: take_sig(d)?,
    })
}
