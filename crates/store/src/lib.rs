//! # jaap-store — persistent, indexed certificate/CRL/ACL store
//!
//! The coalition server's beliefs are derived from certificates,
//! revocations, CRLs and ACL rows. Up to now those artifacts lived only
//! in in-memory maps, which caps the population a server can hold. This
//! crate gives them a durable home sized for millions of principals:
//!
//! - **One log, many columns.** Every row is a [`StoreRecord`] encoded
//!   under its own domain string and appended to a [`JournalStore`] as a
//!   `jaap-wal` frame (checksummed, torn-tail detectable). The enum tag
//!   is the column discriminant: certs-by-subject, threshold groups,
//!   attribute grants, identity/attribute revocations, CRL anchors and
//!   ACL rows each form one logical column family ([`Column`]) — the
//!   typed-store layering, without a foreign KV engine.
//! - **Dense-id indexes, no scans.** Each column keeps `key → dense id`
//!   plus `dense id → (offset, len)` spans; identity certs additionally
//!   index by issuer and threshold certs by group. Hot-path lookups are
//!   one hash probe plus one span read — never a log scan.
//! - **Paged cold tier.** Decoded rows are *not* kept resident. Reads go
//!   through a bounded FIFO page cache over the flushed log
//!   ([`JournalStore::read_range`]), so resident memory stays
//!   `O(pages + index)` no matter how many principals are certified.
//!   `store.resident_bytes` reports the current footprint.
//! - **Store-before-effect.** `CoalitionServer` writes rows here before
//!   applying belief changes, composing with its WAL-before-effect
//!   journal discipline; recovery rebuilds every index from snapshot +
//!   log tail ([`CertStore::open`]).
//! - **Epoch publishing.** Every mutation bumps a lock-free epoch
//!   counter ([`CertStore::epoch`]), published the same way engine
//!   versions are: decision snapshots capture the epoch and readers
//!   revalidate without taking the store lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jaap_core::protocol::Acl;
use jaap_obs::MetricsRegistry;
use jaap_pki::{
    AttributeCertificate, AttributeRevocation, Crl, IdentityCertificate, IdentityRevocation,
    ThresholdAttributeCertificate,
};
use jaap_wal::{decode_frames, frame_record, parse_log, JournalStore, MemStore, Tail};
use parking_lot::Mutex;

pub mod codec;
mod pager;

pub use codec::StoreRecord;
use pager::Pager;

/// Errors from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The backing medium failed.
    Io(String),
    /// Bytes or indexes do not decode / reconcile.
    Corrupt(String),
    /// The cold-tier circuit breaker is open: the medium kept missing its
    /// latency budget, so reads fail fast instead of queueing behind a
    /// degraded disk. Typed distinctly from [`StoreError::Io`] — the data
    /// is (as far as we know) intact; only its *timeliness* is gone.
    Unavailable(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store io error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
            StoreError::Unavailable(msg) => write!(f, "store unavailable: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The store's logical column families. One [`StoreRecord`] variant maps
/// to exactly one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Column {
    /// Identity certificates keyed by subject (issuer secondary index).
    IdentitySubject,
    /// Threshold attribute certificates keyed by group + member set.
    ThresholdGroup,
    /// Single-subject attribute certificates keyed by subject + group.
    AttributeGrant,
    /// Identity revocations keyed by subject.
    IdentityRevocation,
    /// Attribute revocations keyed by member set + group.
    AttributeRevocation,
    /// CRLs keyed by sequence number.
    CrlAnchor,
    /// ACL rows keyed by object name.
    AclRow,
}

impl Column {
    /// Every column, in persistent tag order.
    pub const ALL: [Column; 7] = [
        Column::IdentitySubject,
        Column::ThresholdGroup,
        Column::AttributeGrant,
        Column::IdentityRevocation,
        Column::AttributeRevocation,
        Column::CrlAnchor,
        Column::AclRow,
    ];

    fn idx(self) -> usize {
        match self {
            Column::IdentitySubject => 0,
            Column::ThresholdGroup => 1,
            Column::AttributeGrant => 2,
            Column::IdentityRevocation => 3,
            Column::AttributeRevocation => 4,
            Column::CrlAnchor => 5,
            Column::AclRow => 6,
        }
    }

    /// Short stable name (metrics, diagnostics).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Column::IdentitySubject => "identity_subject",
            Column::ThresholdGroup => "threshold_group",
            Column::AttributeGrant => "attribute_grant",
            Column::IdentityRevocation => "identity_revocation",
            Column::AttributeRevocation => "attribute_revocation",
            Column::CrlAnchor => "crl_anchor",
            Column::AclRow => "acl_row",
        }
    }
}

/// Sizing knobs for the persistent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Cold-tier page size in bytes.
    pub page_size: u64,
    /// Maximum resident cold-tier pages.
    pub cache_pages: usize,
    /// Tail-buffer size that triggers an automatic flush to the medium.
    pub flush_threshold: usize,
    /// Cold-read circuit breaker: trip after this many **consecutive**
    /// page reads slower than [`StoreConfig::breaker_slow_us`]. `0`
    /// disables the breaker. Once open, cold reads fail fast with
    /// [`StoreError::Unavailable`] until [`CertStore::reset_breaker`];
    /// tail-buffer and page-cache hits are unaffected.
    pub breaker_threshold: usize,
    /// Latency budget (microseconds) a cold page read must beat to count
    /// as healthy. `0` counts *every* cold read as slow (deterministic
    /// trip for tests and drills).
    pub breaker_slow_us: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            page_size: 64 * 1024,
            cache_pages: 64,
            flush_threshold: 256 * 1024,
            breaker_threshold: 0,
            breaker_slow_us: 1000,
        }
    }
}

/// A `(offset, len)` span of one framed record in the byte log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    offset: u64,
    len: u32,
}

/// One column's dense-id index: `key → id`, `id → key`, `id → span`.
/// Re-puts of an existing key overwrite the id's span (latest wins), so
/// ids stay stable for secondary indexes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct ColumnIndex {
    ids: HashMap<String, u32>,
    keys: Vec<String>,
    locs: Vec<Loc>,
}

impl ColumnIndex {
    /// Inserts or overwrites `key`'s span; returns `(id, was_fresh)`.
    fn upsert(&mut self, key: &str, loc: Loc) -> (u32, bool) {
        if let Some(&id) = self.ids.get(key) {
            self.locs[id as usize] = loc;
            (id, false)
        } else {
            let id = self.keys.len() as u32;
            self.ids.insert(key.to_string(), id);
            self.keys.push(key.to_string());
            self.locs.push(loc);
            (id, true)
        }
    }

    fn get(&self, key: &str) -> Option<Loc> {
        self.ids.get(key).map(|&id| self.locs[id as usize])
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Resolved `store.*` instruments.
#[derive(Debug, Clone)]
struct Instruments {
    reads: Arc<jaap_obs::Counter>,
    misses: Arc<jaap_obs::Counter>,
    writes: Arc<jaap_obs::Counter>,
    page_evictions: Arc<jaap_obs::Counter>,
    resident_bytes: Arc<jaap_obs::Gauge>,
    breaker_slow_reads: Arc<jaap_obs::Counter>,
    breaker_trips: Arc<jaap_obs::Counter>,
    breaker_open: Arc<jaap_obs::Gauge>,
}

#[derive(Debug)]
struct Inner {
    store: Box<dyn JournalStore>,
    config: StoreConfig,
    columns: [ColumnIndex; 7],
    /// Secondary: issuer → identity-cert dense ids.
    by_issuer: HashMap<String, Vec<u32>>,
    /// issuer currently indexed for each identity-cert id.
    issuer_of: Vec<String>,
    /// Secondary: group → threshold-cert dense ids.
    by_group: HashMap<String, Vec<u32>>,
    /// group currently indexed for each threshold-cert id.
    group_of: Vec<String>,
    /// Highest CRL sequence seen.
    latest_crl_seq: Option<u64>,
    /// Bytes already on the medium; spans below this go through pages.
    flushed_len: u64,
    /// Appended frames not yet flushed; spans at/after `flushed_len`.
    tail_buf: Vec<u8>,
    pager: Pager,
    metrics: Option<Instruments>,
    /// Consecutive cold page reads over the latency budget.
    slow_streak: usize,
    /// Cold-read circuit breaker state; `true` = open (failing fast).
    breaker_open: bool,
}

impl Inner {
    fn logical_len(&self) -> u64 {
        self.flushed_len + self.tail_buf.len() as u64
    }

    /// Indexes one decoded record at `loc`, maintaining secondaries.
    fn index_record(&mut self, record: &StoreRecord, loc: Loc) {
        let (column, key) = key_of(record);
        let (id, fresh) = self.columns[column.idx()].upsert(&key, loc);
        match record {
            StoreRecord::IdentityCert(cert) => {
                let id_us = id as usize;
                if fresh {
                    self.issuer_of.push(cert.issuer.clone());
                    self.by_issuer
                        .entry(cert.issuer.clone())
                        .or_default()
                        .push(id);
                } else if self.issuer_of[id_us] != cert.issuer {
                    let old = std::mem::replace(&mut self.issuer_of[id_us], cert.issuer.clone());
                    if let Some(ids) = self.by_issuer.get_mut(&old) {
                        ids.retain(|&i| i != id);
                    }
                    self.by_issuer
                        .entry(cert.issuer.clone())
                        .or_default()
                        .push(id);
                }
            }
            StoreRecord::ThresholdCert(cert) => {
                let id_us = id as usize;
                let group = cert.group.as_str().to_string();
                if fresh {
                    self.group_of.push(group.clone());
                    self.by_group.entry(group).or_default().push(id);
                } else if self.group_of[id_us] != group {
                    let old = std::mem::replace(&mut self.group_of[id_us], group.clone());
                    if let Some(ids) = self.by_group.get_mut(&old) {
                        ids.retain(|&i| i != id);
                    }
                    self.by_group.entry(group).or_default().push(id);
                }
            }
            StoreRecord::CrlAnchor(crl) => {
                self.latest_crl_seq = Some(
                    self.latest_crl_seq
                        .map_or(crl.sequence, |s| s.max(crl.sequence)),
                );
            }
            _ => {}
        }
    }

    /// Reads and decodes the framed record at `loc`.
    fn fetch(&mut self, loc: Loc) -> Result<StoreRecord, StoreError> {
        let bytes = if loc.offset >= self.flushed_len {
            let start = (loc.offset - self.flushed_len) as usize;
            let end = start + loc.len as usize;
            if end > self.tail_buf.len() {
                return Err(StoreError::Corrupt(format!(
                    "span [{start}, {end}) past tail buffer ({})",
                    self.tail_buf.len()
                )));
            }
            self.tail_buf[start..end].to_vec()
        } else {
            // Cold tier: fail fast while the breaker is open — queueing
            // reads behind a degraded medium turns one slow disk into a
            // server-wide convoy.
            if self.breaker_open {
                return Err(StoreError::Unavailable(format!(
                    "cold-read circuit breaker open after {} consecutive slow page reads \
                     (reset_breaker() to probe the medium again)",
                    self.slow_streak
                )));
            }
            let Inner { store, pager, .. } = self;
            let misses_before = pager.misses;
            let evictions_before = pager.evictions;
            let started = std::time::Instant::now();
            let bytes = pager.read_span(store.as_ref(), loc.offset, u64::from(loc.len))?;
            let missed = pager.misses > misses_before;
            if let Some(m) = &self.metrics {
                m.misses.add(pager.misses - misses_before);
                m.page_evictions.add(pager.evictions - evictions_before);
            }
            // Only reads that actually touched the medium (cache misses)
            // vote on its health; cached-page hits say nothing about it.
            if self.config.breaker_threshold != 0 && missed {
                if started.elapsed().as_micros() as u64 >= self.config.breaker_slow_us {
                    self.slow_streak += 1;
                    if let Some(m) = &self.metrics {
                        m.breaker_slow_reads.inc();
                    }
                    if self.slow_streak >= self.config.breaker_threshold {
                        self.breaker_open = true;
                        if let Some(m) = &self.metrics {
                            m.breaker_trips.inc();
                            m.breaker_open.set(1);
                        }
                    }
                } else {
                    self.slow_streak = 0;
                }
            }
            bytes
        };
        if let Some(m) = &self.metrics {
            m.reads.inc();
            m.resident_bytes.set(self.resident_bytes() as i64);
        }
        let frames = decode_frames(&bytes).map_err(|e| {
            StoreError::Corrupt(format!("frame at offset {} undecodable: {e}", loc.offset))
        })?;
        let payload = frames
            .first()
            .ok_or_else(|| StoreError::Corrupt(format!("empty frame span at {}", loc.offset)))?;
        StoreRecord::decode(&payload.payload)
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        if self.tail_buf.is_empty() {
            return Ok(());
        }
        self.store
            .append(&self.tail_buf)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        self.flushed_len += self.tail_buf.len() as u64;
        self.tail_buf.clear();
        Ok(())
    }

    /// Current resident footprint: cold-tier pages plus the unflushed
    /// tail. (Index overhead is `O(keys)` and excluded by design — the
    /// bounded claim is about *row bytes*.)
    fn resident_bytes(&self) -> u64 {
        self.pager.resident_bytes() + self.tail_buf.len() as u64
    }

    /// Rebuilds indexes from the full log image; used by `open` and
    /// `verify_integrity`.
    fn build_index(bytes: &[u8]) -> Result<(Vec<(StoreRecord, Loc)>, Tail), StoreError> {
        let parsed = parse_log(bytes);
        let mut rows = Vec::with_capacity(parsed.records.len());
        let mut start = 0u64;
        for (i, payload) in parsed.records.iter().enumerate() {
            let end = parsed.boundaries[i] as u64;
            let record = StoreRecord::decode(payload)?;
            rows.push((
                record,
                Loc {
                    offset: start,
                    len: (end - start) as u32,
                },
            ));
            start = end;
        }
        Ok((rows, parsed.tail))
    }
}

/// A cloneable handle on the persistent store. All handles share one
/// index and one epoch counter; reads of the epoch are lock-free.
#[derive(Debug, Clone)]
pub struct CertStore {
    inner: Arc<Mutex<Inner>>,
    epoch: Arc<AtomicU64>,
}

impl CertStore {
    /// Opens a store over `medium`, recovering indexes from the log. A
    /// torn or corrupt tail is physically truncated to the last clean
    /// record boundary (the WAL recovery rule) before indexing.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the medium fails; [`StoreError::Corrupt`] if
    /// a checksummed record fails to decode (real corruption, never
    /// silently skipped).
    pub fn open(
        mut medium: Box<dyn JournalStore>,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let mut bytes = medium.read().map_err(|e| StoreError::Io(e.to_string()))?;
        let (rows, tail) = Inner::build_index(&bytes)?;
        if let Tail::Truncated { offset, .. } = tail {
            bytes.truncate(offset);
            medium
                .reset(&bytes)
                .map_err(|e| StoreError::Io(e.to_string()))?;
        }
        let mut inner = Inner {
            store: medium,
            config,
            columns: Default::default(),
            by_issuer: HashMap::new(),
            issuer_of: Vec::new(),
            by_group: HashMap::new(),
            group_of: Vec::new(),
            latest_crl_seq: None,
            flushed_len: bytes.len() as u64,
            tail_buf: Vec::new(),
            pager: Pager::new(config.page_size, config.cache_pages),
            metrics: None,
            slow_streak: 0,
            breaker_open: false,
        };
        for (record, loc) in &rows {
            inner.index_record(record, *loc);
        }
        Ok(CertStore {
            inner: Arc::new(Mutex::new(inner)),
            epoch: Arc::new(AtomicU64::new(0)),
        })
    }

    /// An empty in-memory store (tests, benches without a filesystem).
    #[must_use]
    pub fn in_memory(config: StoreConfig) -> Self {
        CertStore::open(Box::new(MemStore::new()), config).expect("in-memory open cannot fail")
    }

    /// The current store epoch. Bumped on every mutation; lock-free, so
    /// snapshot publication can read it the way engine versions are read.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Rows indexed in `column` (live keys, not log records).
    #[must_use]
    pub fn len(&self, column: Column) -> usize {
        self.inner.lock().columns[column.idx()].len()
    }

    /// `true` when every column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock();
        inner.columns.iter().all(|c| c.len() == 0)
    }

    /// Current resident footprint in bytes (pages + unflushed tail).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().resident_bytes()
    }

    /// Resident cold-tier page count.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().pager.resident_pages()
    }

    /// Re-bounds the cold-tier page cache, evicting immediately.
    pub fn set_cache_pages(&self, pages: usize) {
        let mut inner = self.inner.lock();
        inner.pager.set_capacity(pages);
        if let Some(m) = &inner.metrics {
            m.resident_bytes.set(inner.resident_bytes() as i64);
        }
    }

    /// Resolves `store.{reads,misses,writes,page_evictions}` counters, the
    /// `store.resident_bytes` gauge, and the breaker instruments
    /// (`store.breaker.{slow_reads,trips}` counters, `store.breaker.open`
    /// gauge) from `registry`.
    pub fn set_metrics(&self, registry: &MetricsRegistry) {
        let mut inner = self.inner.lock();
        let instruments = Instruments {
            reads: registry.counter("store.reads"),
            misses: registry.counter("store.misses"),
            writes: registry.counter("store.writes"),
            page_evictions: registry.counter("store.page_evictions"),
            resident_bytes: registry.gauge("store.resident_bytes"),
            breaker_slow_reads: registry.counter("store.breaker.slow_reads"),
            breaker_trips: registry.counter("store.breaker.trips"),
            breaker_open: registry.gauge("store.breaker.open"),
        };
        instruments
            .resident_bytes
            .set(inner.resident_bytes() as i64);
        instruments.breaker_open.set(i64::from(inner.breaker_open));
        inner.metrics = Some(instruments);
    }

    /// `true` while the cold-read circuit breaker is open (cold-tier reads
    /// failing fast with [`StoreError::Unavailable`]).
    #[must_use]
    pub fn breaker_tripped(&self) -> bool {
        self.inner.lock().breaker_open
    }

    /// Closes the cold-read circuit breaker and clears the slow streak —
    /// the operator's (or a recovery policy's) explicit decision to probe
    /// the medium again. Deliberately manual: a self-resetting breaker
    /// under a still-degraded disk just oscillates.
    pub fn reset_breaker(&self) {
        let mut inner = self.inner.lock();
        inner.breaker_open = false;
        inner.slow_streak = 0;
        if let Some(m) = &inner.metrics {
            m.breaker_open.set(0);
        }
    }

    /// Appends one row (store-before-effect write path): encodes, frames,
    /// indexes, bumps the epoch, and flushes when the tail buffer crosses
    /// the configured threshold.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if an automatic flush hits the medium and fails.
    pub fn put(&self, record: &StoreRecord) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let framed = frame_record(&record.encode());
        let loc = Loc {
            offset: inner.logical_len(),
            len: framed.len() as u32,
        };
        inner.tail_buf.extend_from_slice(&framed);
        inner.index_record(record, loc);
        if inner.tail_buf.len() >= inner.config.flush_threshold {
            inner.flush()?;
        }
        if let Some(m) = &inner.metrics {
            m.writes.inc();
            m.resident_bytes.set(inner.resident_bytes() as i64);
        }
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Typed put: identity certificate.
    ///
    /// # Errors
    ///
    /// See [`CertStore::put`].
    pub fn put_identity_cert(&self, cert: &IdentityCertificate) -> Result<(), StoreError> {
        self.put(&StoreRecord::IdentityCert(cert.clone()))
    }

    /// Typed put: threshold attribute certificate.
    ///
    /// # Errors
    ///
    /// See [`CertStore::put`].
    pub fn put_threshold_cert(
        &self,
        cert: &ThresholdAttributeCertificate,
    ) -> Result<(), StoreError> {
        self.put(&StoreRecord::ThresholdCert(cert.clone()))
    }

    /// Typed put: single-subject attribute certificate.
    ///
    /// # Errors
    ///
    /// See [`CertStore::put`].
    pub fn put_attribute_cert(&self, cert: &AttributeCertificate) -> Result<(), StoreError> {
        self.put(&StoreRecord::AttributeCert(cert.clone()))
    }

    /// Typed put: identity revocation.
    ///
    /// # Errors
    ///
    /// See [`CertStore::put`].
    pub fn put_identity_revocation(&self, rev: &IdentityRevocation) -> Result<(), StoreError> {
        self.put(&StoreRecord::IdentityRevocation(rev.clone()))
    }

    /// Typed put: attribute revocation.
    ///
    /// # Errors
    ///
    /// See [`CertStore::put`].
    pub fn put_attribute_revocation(&self, rev: &AttributeRevocation) -> Result<(), StoreError> {
        self.put(&StoreRecord::AttributeRevocation(rev.clone()))
    }

    /// Typed put: CRL anchor.
    ///
    /// # Errors
    ///
    /// See [`CertStore::put`].
    pub fn put_crl(&self, crl: &Crl) -> Result<(), StoreError> {
        self.put(&StoreRecord::CrlAnchor(crl.clone()))
    }

    /// Typed put: ACL row.
    ///
    /// # Errors
    ///
    /// See [`CertStore::put`].
    pub fn put_acl(&self, object: &str, acl: &Acl) -> Result<(), StoreError> {
        self.put(&StoreRecord::AclRow {
            object: object.to_string(),
            acl: acl.clone(),
        })
    }

    /// Latest identity certificate for `subject`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the span cannot be read or decoded.
    pub fn identity_by_subject(
        &self,
        subject: &str,
    ) -> Result<Option<IdentityCertificate>, StoreError> {
        let mut inner = self.inner.lock();
        let Some(loc) = inner.columns[Column::IdentitySubject.idx()].get(subject) else {
            return Ok(None);
        };
        match inner.fetch(loc)? {
            StoreRecord::IdentityCert(cert) => Ok(Some(cert)),
            other => Err(StoreError::Corrupt(format!(
                "identity index points at {:?}",
                key_of(&other).0
            ))),
        }
    }

    /// Every live identity certificate issued by `issuer` (dense-id
    /// secondary index — no scan).
    ///
    /// # Errors
    ///
    /// [`StoreError`] if a span cannot be read or decoded.
    pub fn identities_by_issuer(
        &self,
        issuer: &str,
    ) -> Result<Vec<IdentityCertificate>, StoreError> {
        let mut inner = self.inner.lock();
        let ids = inner.by_issuer.get(issuer).cloned().unwrap_or_default();
        let mut certs = Vec::with_capacity(ids.len());
        for id in ids {
            let loc = inner.columns[Column::IdentitySubject.idx()].locs[id as usize];
            match inner.fetch(loc)? {
                StoreRecord::IdentityCert(cert) => certs.push(cert),
                _ => return Err(StoreError::Corrupt("issuer index points off-column".into())),
            }
        }
        Ok(certs)
    }

    /// Latest attribute certificate granting `subject` membership of
    /// `group`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the span cannot be read or decoded.
    pub fn attribute_grant(
        &self,
        subject: &str,
        group: &str,
    ) -> Result<Option<AttributeCertificate>, StoreError> {
        let mut inner = self.inner.lock();
        let key = grant_key(subject, group);
        let Some(loc) = inner.columns[Column::AttributeGrant.idx()].get(&key) else {
            return Ok(None);
        };
        match inner.fetch(loc)? {
            StoreRecord::AttributeCert(cert) => Ok(Some(cert)),
            _ => Err(StoreError::Corrupt("grant index points off-column".into())),
        }
    }

    /// Every live threshold certificate for `group` (dense-id secondary
    /// index).
    ///
    /// # Errors
    ///
    /// [`StoreError`] if a span cannot be read or decoded.
    pub fn threshold_certs_for_group(
        &self,
        group: &str,
    ) -> Result<Vec<ThresholdAttributeCertificate>, StoreError> {
        let mut inner = self.inner.lock();
        let ids = inner.by_group.get(group).cloned().unwrap_or_default();
        let mut certs = Vec::with_capacity(ids.len());
        for id in ids {
            let loc = inner.columns[Column::ThresholdGroup.idx()].locs[id as usize];
            match inner.fetch(loc)? {
                StoreRecord::ThresholdCert(cert) => certs.push(cert),
                _ => return Err(StoreError::Corrupt("group index points off-column".into())),
            }
        }
        Ok(certs)
    }

    /// Latest identity revocation for `subject`, if any.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the span cannot be read or decoded.
    pub fn identity_revocation(
        &self,
        subject: &str,
    ) -> Result<Option<IdentityRevocation>, StoreError> {
        let mut inner = self.inner.lock();
        let Some(loc) = inner.columns[Column::IdentityRevocation.idx()].get(subject) else {
            return Ok(None);
        };
        match inner.fetch(loc)? {
            StoreRecord::IdentityRevocation(rev) => Ok(Some(rev)),
            _ => Err(StoreError::Corrupt(
                "revocation index points off-column".into(),
            )),
        }
    }

    /// Latest attribute revocation for the member set `members` in
    /// `group`, if any.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the span cannot be read or decoded.
    pub fn attribute_revocation(
        &self,
        members: &[String],
        group: &str,
    ) -> Result<Option<AttributeRevocation>, StoreError> {
        let mut inner = self.inner.lock();
        let key = members_key(members.iter().map(String::as_str), group);
        let Some(loc) = inner.columns[Column::AttributeRevocation.idx()].get(&key) else {
            return Ok(None);
        };
        match inner.fetch(loc)? {
            StoreRecord::AttributeRevocation(rev) => Ok(Some(rev)),
            _ => Err(StoreError::Corrupt(
                "revocation index points off-column".into(),
            )),
        }
    }

    /// The CRL anchored at `sequence`, if stored.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the span cannot be read or decoded.
    pub fn crl(&self, sequence: u64) -> Result<Option<Crl>, StoreError> {
        let mut inner = self.inner.lock();
        let Some(loc) = inner.columns[Column::CrlAnchor.idx()].get(&crl_key(sequence)) else {
            return Ok(None);
        };
        match inner.fetch(loc)? {
            StoreRecord::CrlAnchor(crl) => Ok(Some(crl)),
            _ => Err(StoreError::Corrupt("CRL index points off-column".into())),
        }
    }

    /// The highest-sequence CRL stored, if any.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the span cannot be read or decoded.
    pub fn latest_crl(&self) -> Result<Option<Crl>, StoreError> {
        let seq = { self.inner.lock().latest_crl_seq };
        match seq {
            Some(seq) => self.crl(seq),
            None => Ok(None),
        }
    }

    /// The ACL row for `object`, if stored.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the span cannot be read or decoded.
    pub fn acl(&self, object: &str) -> Result<Option<Acl>, StoreError> {
        let mut inner = self.inner.lock();
        let Some(loc) = inner.columns[Column::AclRow.idx()].get(object) else {
            return Ok(None);
        };
        match inner.fetch(loc)? {
            StoreRecord::AclRow { acl, .. } => Ok(Some(acl)),
            _ => Err(StoreError::Corrupt("ACL index points off-column".into())),
        }
    }

    /// Pushes the unflushed tail to the medium.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the medium fails.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.flush()?;
        if let Some(m) = &inner.metrics {
            m.resident_bytes.set(inner.resident_bytes() as i64);
        }
        Ok(())
    }

    /// Rewrites the log to contain only the latest record per live key
    /// (dropping superseded versions), atomically via the medium's
    /// `reset` — the snapshot half of snapshot + log. Indexes are rebuilt
    /// on the compacted image and the page cache is dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if reading a live row or rewriting the log fails.
    pub fn snapshot_compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.flush()?;
        // Collect the latest image of every live row, column by column.
        let mut live: Vec<StoreRecord> = Vec::new();
        for column in Column::ALL {
            let locs = inner.columns[column.idx()].locs.clone();
            for loc in locs {
                live.push(inner.fetch(loc)?);
            }
        }
        let mut image = Vec::new();
        let mut rows = Vec::with_capacity(live.len());
        for record in &live {
            let framed = frame_record(&record.encode());
            let loc = Loc {
                offset: image.len() as u64,
                len: framed.len() as u32,
            };
            image.extend_from_slice(&framed);
            rows.push((record.clone(), loc));
        }
        inner
            .store
            .reset(&image)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        inner.flushed_len = image.len() as u64;
        inner.tail_buf.clear();
        inner.pager.clear();
        inner.columns = Default::default();
        inner.by_issuer.clear();
        inner.issuer_of.clear();
        inner.by_group.clear();
        inner.group_of.clear();
        inner.latest_crl_seq = None;
        for (record, loc) in &rows {
            inner.index_record(record, *loc);
        }
        if let Some(m) = &inner.metrics {
            m.resident_bytes.set(inner.resident_bytes() as i64);
        }
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Index-vs-log consistency check: flushes, re-reads the full log,
    /// rebuilds a fresh index, and compares every column (primary spans
    /// and secondary indexes) against the live one.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any divergence; [`StoreError::Io`] if
    /// the medium fails.
    pub fn verify_integrity(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.flush()?;
        let bytes = inner
            .store
            .read()
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let (rows, tail) = Inner::build_index(&bytes)?;
        if tail != Tail::Clean {
            return Err(StoreError::Corrupt("flushed log has a torn tail".into()));
        }
        let mut twin = Inner {
            store: Box::new(MemStore::new()),
            config: inner.config,
            columns: Default::default(),
            by_issuer: HashMap::new(),
            issuer_of: Vec::new(),
            by_group: HashMap::new(),
            group_of: Vec::new(),
            latest_crl_seq: None,
            flushed_len: 0,
            tail_buf: Vec::new(),
            pager: Pager::new(inner.config.page_size, inner.config.cache_pages),
            metrics: None,
            slow_streak: 0,
            breaker_open: false,
        };
        for (record, loc) in &rows {
            twin.index_record(record, *loc);
        }
        for column in Column::ALL {
            if twin.columns[column.idx()] != inner.columns[column.idx()] {
                return Err(StoreError::Corrupt(format!(
                    "column {} diverges from the log",
                    column.name()
                )));
            }
        }
        if twin.by_issuer != inner.by_issuer
            || twin.by_group != inner.by_group
            || twin.latest_crl_seq != inner.latest_crl_seq
        {
            return Err(StoreError::Corrupt(
                "secondary indexes diverge from the log".into(),
            ));
        }
        Ok(())
    }
}

/// The `(column, key)` a record lands under.
fn key_of(record: &StoreRecord) -> (Column, String) {
    match record {
        StoreRecord::IdentityCert(cert) => (Column::IdentitySubject, cert.subject.clone()),
        StoreRecord::ThresholdCert(cert) => (
            Column::ThresholdGroup,
            members_key(
                cert.subject.members.iter().map(|(name, _)| name.as_str()),
                cert.group.as_str(),
            ),
        ),
        StoreRecord::AttributeCert(cert) => (
            Column::AttributeGrant,
            grant_key(&cert.subject, cert.group.as_str()),
        ),
        StoreRecord::IdentityRevocation(rev) => (Column::IdentityRevocation, rev.subject.clone()),
        StoreRecord::AttributeRevocation(rev) => (
            Column::AttributeRevocation,
            members_key(
                rev.subject.members.iter().map(|(name, _)| name.as_str()),
                rev.group.as_str(),
            ),
        ),
        StoreRecord::CrlAnchor(crl) => (Column::CrlAnchor, crl_key(crl.sequence)),
        StoreRecord::AclRow { object, .. } => (Column::AclRow, object.clone()),
    }
}

fn grant_key(subject: &str, group: &str) -> String {
    format!("{subject}\u{1f}{group}")
}

fn members_key<'a>(members: impl Iterator<Item = &'a str>, group: &str) -> String {
    let mut key = String::new();
    for name in members {
        key.push_str(name);
        key.push('\u{1e}');
    }
    key.push('\u{1f}');
    key.push_str(group);
    key
}

fn crl_key(sequence: u64) -> String {
    format!("{sequence:020}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_bigint::Nat;
    use jaap_core::certs::Validity;
    use jaap_core::syntax::{GroupId, Time};
    use jaap_crypto::rsa::{RsaPublicKey, RsaSignature};
    use jaap_pki::{CrlEntry, ThresholdSubject};

    fn key(seed: u8) -> RsaPublicKey {
        RsaPublicKey::new(
            Nat::from_bytes_be(&[seed, 1, 2, 3]),
            Nat::from_bytes_be(&[3]),
        )
    }

    fn sig(seed: u8) -> RsaSignature {
        RsaSignature::from_value(Nat::from_bytes_be(&[seed, 9, 9]))
    }

    fn identity(subject: &str, issuer: &str, seed: u8) -> IdentityCertificate {
        IdentityCertificate {
            issuer: issuer.to_string(),
            subject: subject.to_string(),
            subject_key: key(seed),
            validity: Validity {
                begin: Time(0),
                end: Time(1000),
            },
            timestamp: Time(1),
            signature: sig(seed),
        }
    }

    fn grant(subject: &str, group: &str, seed: u8) -> AttributeCertificate {
        AttributeCertificate {
            issuer: "AA".into(),
            subject: subject.to_string(),
            subject_key: key(seed),
            group: GroupId::new(group),
            validity: Validity {
                begin: Time(0),
                end: Time(1000),
            },
            timestamp: Time(2),
            signature: sig(seed),
        }
    }

    fn crl(sequence: u64) -> Crl {
        let subject = ThresholdSubject::new(vec![("U1".to_string(), key(7))], 1).expect("subject");
        Crl {
            issuer: "RA".into(),
            sequence,
            timestamp: Time(5),
            entries: vec![CrlEntry {
                subject,
                group: GroupId::new("G"),
                revoked_from: Time(4),
            }],
            signature: sig(sequence as u8),
        }
    }

    fn tiny_config() -> StoreConfig {
        StoreConfig {
            page_size: 512,
            cache_pages: 2,
            flush_threshold: 1024,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn rows_round_trip_through_every_column() {
        let store = CertStore::in_memory(tiny_config());
        store
            .put_identity_cert(&identity("U1", "CA_D1", 1))
            .expect("put");
        store
            .put_attribute_cert(&grant("U1", "G_read", 2))
            .expect("put");
        store.put_crl(&crl(1)).expect("put");
        let mut acl = Acl::new();
        acl.permit(GroupId::new("G_read"), "read");
        store.put_acl("Object O", &acl).expect("put");

        assert_eq!(
            store.identity_by_subject("U1").expect("get"),
            Some(identity("U1", "CA_D1", 1))
        );
        assert_eq!(store.identity_by_subject("absent").expect("get"), None);
        assert_eq!(
            store.attribute_grant("U1", "G_read").expect("get"),
            Some(grant("U1", "G_read", 2))
        );
        assert_eq!(store.latest_crl().expect("get"), Some(crl(1)));
        assert_eq!(store.acl("Object O").expect("get"), Some(acl));
        assert_eq!(store.len(Column::IdentitySubject), 1);
        assert!(!store.is_empty());
        store.verify_integrity().expect("consistent");
    }

    #[test]
    fn reput_overwrites_and_issuer_index_follows() {
        let store = CertStore::in_memory(tiny_config());
        store
            .put_identity_cert(&identity("U1", "CA_D1", 1))
            .expect("put");
        store
            .put_identity_cert(&identity("U2", "CA_D1", 2))
            .expect("put");
        // U1 re-certified by a different CA: latest wins, secondary moves.
        store
            .put_identity_cert(&identity("U1", "CA_D2", 3))
            .expect("put");
        assert_eq!(
            store.identity_by_subject("U1").expect("get"),
            Some(identity("U1", "CA_D2", 3))
        );
        let d1: Vec<String> = store
            .identities_by_issuer("CA_D1")
            .expect("get")
            .into_iter()
            .map(|c| c.subject)
            .collect();
        assert_eq!(d1, vec!["U2".to_string()]);
        let d2: Vec<String> = store
            .identities_by_issuer("CA_D2")
            .expect("get")
            .into_iter()
            .map(|c| c.subject)
            .collect();
        assert_eq!(d2, vec!["U1".to_string()]);
        assert_eq!(store.len(Column::IdentitySubject), 2);
        store.verify_integrity().expect("consistent");
    }

    #[test]
    fn recovery_rebuilds_indexes_and_truncates_torn_tail() {
        let medium = MemStore::new();
        let store = CertStore::open(Box::new(medium.clone()), tiny_config()).expect("open");
        for i in 0..10u8 {
            store
                .put_identity_cert(&identity(&format!("U{i}"), "CA_D1", i))
                .expect("put");
        }
        store.put_crl(&crl(3)).expect("put");
        store.flush().expect("flush");
        // Tear the log mid-record; recovery must land on the clean prefix.
        let mut bytes = medium.snapshot();
        bytes.truncate(bytes.len() - 5);
        let torn = MemStore::from_bytes(bytes);
        let recovered = CertStore::open(Box::new(torn), tiny_config()).expect("reopen");
        assert_eq!(recovered.len(Column::IdentitySubject), 10);
        assert_eq!(recovered.latest_crl().expect("get"), None, "CRL was torn");
        assert_eq!(
            recovered.identity_by_subject("U7").expect("get"),
            Some(identity("U7", "CA_D1", 7))
        );
        recovered.verify_integrity().expect("consistent");
    }

    #[test]
    fn compaction_drops_superseded_rows_and_preserves_reads() {
        let medium = MemStore::new();
        let store = CertStore::open(Box::new(medium.clone()), tiny_config()).expect("open");
        for round in 0..5u8 {
            for i in 0..4u8 {
                store
                    .put_identity_cert(&identity(&format!("U{i}"), "CA_D1", round * 4 + i))
                    .expect("put");
            }
        }
        store.flush().expect("flush");
        let before = medium.snapshot().len();
        store.snapshot_compact().expect("compact");
        let after = medium.snapshot().len();
        assert!(after < before, "compaction must shrink the log");
        for i in 0..4u8 {
            assert_eq!(
                store.identity_by_subject(&format!("U{i}")).expect("get"),
                Some(identity(&format!("U{i}"), "CA_D1", 16 + i)),
                "latest version must survive compaction"
            );
        }
        store.verify_integrity().expect("consistent");
        // A fresh open over the compacted medium agrees.
        let reopened = CertStore::open(Box::new(medium), tiny_config()).expect("reopen");
        assert_eq!(reopened.len(Column::IdentitySubject), 4);
    }

    #[test]
    fn cold_reads_stay_within_the_page_budget() {
        let store = CertStore::in_memory(StoreConfig {
            page_size: 512,
            cache_pages: 2,
            flush_threshold: 256,
            ..StoreConfig::default()
        });
        let registry = MetricsRegistry::new();
        store.set_metrics(&registry);
        for i in 0..64u32 {
            store
                .put_identity_cert(&identity(&format!("U{i}"), "CA_D1", (i % 251) as u8))
                .expect("put");
        }
        store.flush().expect("flush");
        for i in 0..64u32 {
            assert!(store
                .identity_by_subject(&format!("U{i}"))
                .expect("get")
                .is_some());
        }
        assert!(store.resident_pages() <= 2);
        assert!(store.resident_bytes() <= 2 * 512);
        assert_eq!(registry.counter_value("store.reads"), Some(64));
        assert!(registry.counter_value("store.misses").unwrap_or(0) > 0);
        assert!(registry.counter_value("store.page_evictions").unwrap_or(0) > 0);
        let resident = registry.gauge_value("store.resident_bytes").unwrap_or(-1);
        assert!((0..=1024).contains(&resident));
        assert_eq!(registry.counter_value("store.writes"), Some(64));
    }

    #[test]
    fn breaker_trips_on_consecutive_slow_cold_reads_and_resets() {
        // breaker_slow_us = 0: every cold (medium-touching) read counts as
        // slow, so the trip is deterministic without real sleeps.
        let store = CertStore::in_memory(StoreConfig {
            page_size: 512,
            cache_pages: 1,
            flush_threshold: 64 * 1024,
            breaker_threshold: 2,
            breaker_slow_us: 0,
        });
        let registry = MetricsRegistry::new();
        store.set_metrics(&registry);
        for i in 0..16u8 {
            store
                .put_identity_cert(&identity(&format!("U{i}"), "CA_D1", i))
                .expect("put");
        }
        store.flush().expect("flush");
        assert_eq!(registry.gauge_value("store.breaker.open"), Some(0));
        // Two distant keys force two cache-missing cold reads: trip.
        assert!(store.identity_by_subject("U0").expect("get").is_some());
        let second = store.identity_by_subject("U15");
        assert!(second.is_ok() || matches!(second, Err(StoreError::Unavailable(_))));
        assert!(store.breaker_tripped());
        assert_eq!(registry.gauge_value("store.breaker.open"), Some(1));
        assert_eq!(registry.counter_value("store.breaker.trips"), Some(1));
        assert!(
            registry
                .counter_value("store.breaker.slow_reads")
                .unwrap_or(0)
                >= 2
        );
        // Open breaker: cold reads fail fast, typed Unavailable.
        let err = store.identity_by_subject("U7").expect_err("breaker open");
        assert!(matches!(err, StoreError::Unavailable(_)));
        // Writes (tail-buffer path) still work while the breaker is open.
        store
            .put_identity_cert(&identity("fresh", "CA_D1", 99))
            .expect("put");
        assert!(store.identity_by_subject("fresh").expect("tail").is_some());
        // Explicit reset closes the breaker and reads resume.
        store.reset_breaker();
        assert!(!store.breaker_tripped());
        assert_eq!(registry.gauge_value("store.breaker.open"), Some(0));
        // The very next cold reads re-trip (medium still "slow"), which is
        // exactly the fail-fast behaviour a degraded disk should get.
        assert!(store.identity_by_subject("U7").expect("probe").is_some());
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let store = CertStore::in_memory(tiny_config());
        let e0 = store.epoch();
        store
            .put_identity_cert(&identity("U1", "CA_D1", 1))
            .expect("put");
        let e1 = store.epoch();
        assert!(e1 > e0);
        store.snapshot_compact().expect("compact");
        assert!(store.epoch() > e1);
    }
}
