//! Crash-at-every-boundary recovery property for the persistent store.
//!
//! A store built from a random admit/revoke/ACL schedule, crashed at
//! *every* record boundary (and mid-record, modelling a torn write) and
//! recovered, must serve byte-identical probe results to a never-crashed
//! in-memory twin that saw exactly the surviving prefix of the schedule —
//! and its rebuilt indexes must agree with a from-scratch replay of its
//! own log (`verify_integrity`, the index-vs-log consistency check).

use jaap_bigint::Nat;
use jaap_core::certs::Validity;
use jaap_core::protocol::Acl;
use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::rsa::{RsaPublicKey, RsaSignature};
use jaap_pki::{
    AttributeCertificate, AttributeRevocation, Crl, CrlEntry, IdentityCertificate,
    IdentityRevocation, ThresholdAttributeCertificate, ThresholdSubject,
};
use jaap_store::{CertStore, StoreConfig};
use jaap_wal::{parse_log, MemStore, Tail};
use proptest::prelude::*;

const SUBJECTS: [&str; 5] = ["U0", "U1", "U2", "U3", "U4"];
const ISSUERS: [&str; 3] = ["CA0", "CA1", "CA2"];
const GROUPS: [&str; 3] = ["G0", "G1", "G2"];
const OBJECTS: [&str; 3] = ["O0", "O1", "O2"];

/// One schedule step. Each op is exactly one store record, so op `i`
/// corresponds to log record `i` — the invariant the crash cuts rely on.
#[derive(Debug, Clone)]
enum Op {
    Identity {
        s: usize,
        i: usize,
        seed: u8,
    },
    Grant {
        s: usize,
        g: usize,
        seed: u8,
    },
    Threshold {
        s: usize,
        t: usize,
        g: usize,
        seed: u8,
    },
    IdRevoke {
        s: usize,
        seed: u8,
    },
    AttrRevoke {
        s: usize,
        g: usize,
        seed: u8,
    },
    CrlAnchor {
        seq: u64,
        s: usize,
        g: usize,
    },
    AclRow {
        o: usize,
        g: usize,
    },
}

fn key(seed: u8) -> RsaPublicKey {
    RsaPublicKey::new(
        Nat::from_bytes_be(&[seed.max(1), 17, 2, 3]),
        Nat::from_bytes_be(&[3]),
    )
}

fn sig(seed: u8) -> RsaSignature {
    RsaSignature::from_value(Nat::from_bytes_be(&[seed.max(1), 9, 9]))
}

fn validity() -> Validity {
    Validity {
        begin: Time(0),
        end: Time(1000),
    }
}

fn pair_subject(s: usize, t: usize, seed: u8) -> ThresholdSubject {
    let mut members = vec![(SUBJECTS[s].to_string(), key(seed))];
    if t != s {
        members.push((SUBJECTS[t].to_string(), key(seed.wrapping_add(1))));
    }
    let m = members.len();
    ThresholdSubject::new(members, m).expect("subject")
}

fn apply(store: &CertStore, op: &Op) {
    match op {
        Op::Identity { s, i, seed } => store
            .put_identity_cert(&IdentityCertificate {
                issuer: ISSUERS[*i].to_string(),
                subject: SUBJECTS[*s].to_string(),
                subject_key: key(*seed),
                validity: validity(),
                timestamp: Time(i64::from(*seed)),
                signature: sig(*seed),
            })
            .expect("put identity"),
        Op::Grant { s, g, seed } => store
            .put_attribute_cert(&AttributeCertificate {
                issuer: "AA".into(),
                subject: SUBJECTS[*s].to_string(),
                subject_key: key(*seed),
                group: GroupId::new(GROUPS[*g]),
                validity: validity(),
                timestamp: Time(i64::from(*seed)),
                signature: sig(*seed),
            })
            .expect("put grant"),
        Op::Threshold { s, t, g, seed } => store
            .put_threshold_cert(&ThresholdAttributeCertificate {
                issuer: "AA".into(),
                subject: pair_subject(*s, *t, *seed),
                group: GroupId::new(GROUPS[*g]),
                validity: validity(),
                timestamp: Time(i64::from(*seed)),
                signature: sig(*seed),
            })
            .expect("put threshold"),
        Op::IdRevoke { s, seed } => store
            .put_identity_revocation(&IdentityRevocation {
                issuer: "RA".into(),
                subject: SUBJECTS[*s].to_string(),
                subject_key: key(*seed),
                revoked_from: Time(i64::from(*seed)),
                timestamp: Time(i64::from(*seed) + 1),
                signature: sig(*seed),
            })
            .expect("put id revocation"),
        Op::AttrRevoke { s, g, seed } => store
            .put_attribute_revocation(&AttributeRevocation {
                issuer: "RA".into(),
                subject: pair_subject(*s, *s, *seed),
                group: GroupId::new(GROUPS[*g]),
                revoked_from: Time(i64::from(*seed)),
                timestamp: Time(i64::from(*seed) + 1),
                signature: sig(*seed),
            })
            .expect("put attr revocation"),
        Op::CrlAnchor { seq, s, g } => store
            .put_crl(&Crl {
                issuer: "RA".into(),
                sequence: *seq,
                timestamp: Time(7),
                entries: vec![CrlEntry {
                    subject: pair_subject(*s, *s, 11),
                    group: GroupId::new(GROUPS[*g]),
                    revoked_from: Time(6),
                }],
                signature: sig(*seq as u8),
            })
            .expect("put crl"),
        Op::AclRow { o, g } => {
            let mut acl = Acl::new();
            acl.permit(GroupId::new(GROUPS[*g]), "read");
            acl.permit(GroupId::new(GROUPS[(*g + 1) % GROUPS.len()]), "write");
            store.put_acl(OBJECTS[*o], &acl).expect("put acl");
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SUBJECTS.len(), 0..ISSUERS.len(), any::<u8>()).prop_map(|(s, i, seed)| Op::Identity {
            s,
            i,
            seed
        }),
        (0..SUBJECTS.len(), 0..GROUPS.len(), any::<u8>()).prop_map(|(s, g, seed)| Op::Grant {
            s,
            g,
            seed
        }),
        (
            0..SUBJECTS.len(),
            0..SUBJECTS.len(),
            0..GROUPS.len(),
            any::<u8>()
        )
            .prop_map(|(s, t, g, seed)| Op::Threshold { s, t, g, seed }),
        (0..SUBJECTS.len(), any::<u8>()).prop_map(|(s, seed)| Op::IdRevoke { s, seed }),
        (0..SUBJECTS.len(), 0..GROUPS.len(), any::<u8>()).prop_map(|(s, g, seed)| Op::AttrRevoke {
            s,
            g,
            seed
        }),
        (1u64..6, 0..SUBJECTS.len(), 0..GROUPS.len()).prop_map(|(seq, s, g)| Op::CrlAnchor {
            seq,
            s,
            g
        }),
        (0..OBJECTS.len(), 0..GROUPS.len()).prop_map(|(o, g)| Op::AclRow { o, g }),
    ]
}

fn tiny_config() -> StoreConfig {
    StoreConfig {
        page_size: 512,
        cache_pages: 2,
        flush_threshold: 1,
        ..StoreConfig::default()
    }
}

/// Probes every key in the op universe on both stores and demands
/// identical results — the "byte-identical decision" oracle (decisions
/// are a pure function of these lookups).
fn assert_probes_match(recovered: &CertStore, twin: &CertStore, cut: usize) {
    for s in SUBJECTS {
        assert_eq!(
            recovered.identity_by_subject(s).expect("get"),
            twin.identity_by_subject(s).expect("get"),
            "identity({s}) diverged at cut {cut}"
        );
        assert_eq!(
            recovered.identity_revocation(s).expect("get"),
            twin.identity_revocation(s).expect("get"),
            "id-revocation({s}) diverged at cut {cut}"
        );
        for g in GROUPS {
            assert_eq!(
                recovered.attribute_grant(s, g).expect("get"),
                twin.attribute_grant(s, g).expect("get"),
                "grant({s},{g}) diverged at cut {cut}"
            );
        }
    }
    for i in ISSUERS {
        assert_eq!(
            recovered.identities_by_issuer(i).expect("get"),
            twin.identities_by_issuer(i).expect("get"),
            "issuer({i}) diverged at cut {cut}"
        );
    }
    for g in GROUPS {
        assert_eq!(
            recovered.threshold_certs_for_group(g).expect("get"),
            twin.threshold_certs_for_group(g).expect("get"),
            "threshold({g}) diverged at cut {cut}"
        );
    }
    for seq in 0..8u64 {
        assert_eq!(
            recovered.crl(seq).expect("get"),
            twin.crl(seq).expect("get"),
            "crl({seq}) diverged at cut {cut}"
        );
    }
    assert_eq!(
        recovered.latest_crl().expect("get"),
        twin.latest_crl().expect("get"),
        "latest crl diverged at cut {cut}"
    );
    for o in OBJECTS {
        assert_eq!(
            recovered.acl(o).expect("get"),
            twin.acl(o).expect("get"),
            "acl({o}) diverged at cut {cut}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every prefix cut — clean boundary or torn mid-record — the
    /// recovered store equals a never-crashed twin fed the surviving ops.
    #[test]
    fn recovery_at_every_boundary_matches_uncrashed_twin(
        ops in proptest::collection::vec(arb_op(), 1..18),
    ) {
        let medium = MemStore::new();
        let store = CertStore::open(Box::new(medium.clone()), tiny_config()).expect("open");
        for op in &ops {
            apply(&store, op);
        }
        store.flush().expect("flush");
        let bytes = medium.snapshot();
        let parsed = parse_log(&bytes);
        prop_assert_eq!(parsed.tail, Tail::Clean);
        prop_assert_eq!(parsed.boundaries.len(), ops.len());

        // Cut points: before everything, at every clean boundary, and a
        // few bytes into the next record (a torn append). A torn cut must
        // recover to the same state as the preceding clean boundary.
        let mut cuts: Vec<(usize, usize)> = vec![(0, 0)];
        for (i, &b) in parsed.boundaries.iter().enumerate() {
            cuts.push((b, i + 1));
            if b + 5 < bytes.len() {
                cuts.push((b + 5, i + 1));
            }
        }
        for (cut, survivors) in cuts {
            let crashed = MemStore::from_bytes(bytes[..cut].to_vec());
            let recovered =
                CertStore::open(Box::new(crashed), tiny_config()).expect("recover");
            let twin = CertStore::in_memory(tiny_config());
            for op in &ops[..survivors] {
                apply(&twin, op);
            }
            assert_probes_match(&recovered, &twin, cut);
            // Index-vs-log consistency: the rebuilt indexes agree with a
            // from-scratch replay of the recovered store's own log.
            recovered.verify_integrity().expect("index consistent with log");
        }
    }

    /// Recovery is idempotent across a second crash-free reopen: the
    /// truncated image reopens to the same state.
    #[test]
    fn reopen_after_recovery_is_stable(
        ops in proptest::collection::vec(arb_op(), 1..10),
        tear in 1usize..12,
    ) {
        let medium = MemStore::new();
        let store = CertStore::open(Box::new(medium.clone()), tiny_config()).expect("open");
        for op in &ops {
            apply(&store, op);
        }
        store.flush().expect("flush");
        let mut bytes = medium.snapshot();
        let cut = bytes.len().saturating_sub(tear);
        bytes.truncate(cut);
        let torn = MemStore::from_bytes(bytes);
        let first = CertStore::open(Box::new(torn.clone()), tiny_config()).expect("recover");
        first.verify_integrity().expect("consistent");
        // The first open physically truncated the tail; a second open of
        // the same medium must parse clean and agree everywhere.
        let second = CertStore::open(Box::new(torn.clone()), tiny_config()).expect("reopen");
        prop_assert_eq!(parse_log(&torn.snapshot()).tail, Tail::Clean);
        assert_probes_match(&second, &first, cut);
    }
}
