//! The shared, named-instrument registry and its JSON snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::instruments::{Counter, Gauge, Histogram};

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A cheap-to-clone handle owning all named instruments.
///
/// Instrument resolution (`counter`/`gauge`/`histogram`) takes a short lock
/// on the name map and returns an `Arc` handle; hot paths resolve once at
/// configuration time and afterwards touch only atomics. Dropping every
/// clone of the registry drops the instruments with it.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Resolves (creating on first use) the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Resolves (creating on first use) the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.gauges.lock();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Resolves (creating on first use) the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// The value of a counter, `None` if it was never resolved.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.counters.lock().get(name).map(|c| c.get())
    }

    /// The value of a gauge, `None` if it was never resolved.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.inner.gauges.lock().get(name).map(|g| g.get())
    }

    /// A histogram's snapshot, `None` if it was never resolved.
    #[must_use]
    pub fn histogram_snapshot(&self, name: &str) -> Option<crate::HistogramSnapshot> {
        self.inner.histograms.lock().get(name).map(|h| h.snapshot())
    }

    /// Deterministic JSON snapshot of every instrument, sorted by name.
    ///
    /// Shape:
    /// `{"counters":{name:value,...},"gauges":{...},"histograms":{name:
    /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
    /// "p99":..,"buckets":[[upper,count],...]},...}}`
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        {
            let map = self.inner.counters.lock();
            for (i, (name, c)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(name), c.get());
            }
        }
        out.push_str("},\"gauges\":{");
        {
            let map = self.inner.gauges.lock();
            for (i, (name, g)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(name), g.get());
            }
        }
        out.push_str("},\"histograms\":{");
        {
            let map = self.inner.histograms.lock();
            for (i, (name, h)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let s = h.snapshot();
                let _ = write!(
                    out,
                    "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                    json_string(name),
                    s.count,
                    s.sum,
                    s.min,
                    s.max,
                    s.mean(),
                    s.p50,
                    s.p90,
                    s.p99
                );
                for (j, (upper, count)) in s.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{upper},{count}]");
                }
                out.push_str("]}");
            }
        }
        out.push_str("}}");
        out
    }
}

/// Minimal JSON string encoding (instrument names are ASCII identifiers,
/// but escape defensively anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name_and_across_clones() {
        let r = MetricsRegistry::new();
        let other = r.clone();
        r.counter("hits").inc();
        other.counter("hits").add(2);
        assert_eq!(r.counter_value("hits"), Some(3));
        assert_eq!(r.counter_value("never"), None);
        r.gauge("live").set(9);
        assert_eq!(other.gauge_value("live"), Some(9));
    }

    #[test]
    fn json_snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.gauge("depth").set(-4);
        r.histogram("lat_ns").record(5);
        r.histogram("lat_ns").record(900);
        let json = r.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        let a = json.find("a.first").expect("a.first present");
        let b = json.find("b.second").expect("b.second present");
        assert!(a < b, "names must be sorted");
        assert!(json.contains("\"a.first\":1"));
        assert!(json.contains("\"depth\":-4"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"buckets\":[[7,1],[1023,1]]"));
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        assert_eq!(
            MetricsRegistry::new().to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn json_escapes_odd_names() {
        let r = MetricsRegistry::new();
        r.counter("weird\"name\\x").inc();
        let json = r.to_json();
        assert!(json.contains("\"weird\\\"name\\\\x\":1"));
    }
}
