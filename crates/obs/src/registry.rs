//! The shared, named-instrument registry and its JSON snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::instruments::{Counter, Gauge, Histogram};

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A cheap-to-clone handle owning all named instruments.
///
/// Instrument resolution (`counter`/`gauge`/`histogram`) takes a short lock
/// on the name map and returns an `Arc` handle; hot paths resolve once at
/// configuration time and afterwards touch only atomics. Dropping every
/// clone of the registry drops the instruments with it.
///
/// A registry handle may carry a *scope prefix* ([`MetricsRegistry::scoped`]):
/// every instrument it resolves or reads gets the prefix prepended, while
/// the instruments still live in the one shared map (a root handle's
/// [`MetricsRegistry::to_json`] exports them all). This is how a sharded
/// deployment gives each shard its own `shard.{i}.server.*` pipeline
/// instruments without per-shard registries drifting apart.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
    /// Scope prefix prepended to every instrument name (empty at the root).
    prefix: Arc<str>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            inner: Arc::default(),
            prefix: Arc::from(""),
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A view of the same registry with `prefix` prepended to every
    /// instrument name resolved or read through it. Scopes nest:
    /// `r.scoped("a.").scoped("b.")` resolves under `a.b.`.
    #[must_use]
    pub fn scoped(&self, prefix: &str) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::clone(&self.inner),
            prefix: Arc::from(format!("{}{prefix}", self.prefix)),
        }
    }

    /// This handle's scope prefix (empty at the root).
    #[must_use]
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    fn full_name<'a>(&self, name: &'a str) -> std::borrow::Cow<'a, str> {
        if self.prefix.is_empty() {
            std::borrow::Cow::Borrowed(name)
        } else {
            std::borrow::Cow::Owned(format!("{}{name}", self.prefix))
        }
    }

    /// Resolves (creating on first use) the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let name = self.full_name(name);
        let mut map = self.inner.counters.lock();
        if let Some(c) = map.get(name.as_ref()) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.into_owned(), Arc::clone(&c));
        c
    }

    /// Resolves (creating on first use) the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let name = self.full_name(name);
        let mut map = self.inner.gauges.lock();
        if let Some(g) = map.get(name.as_ref()) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.into_owned(), Arc::clone(&g));
        g
    }

    /// Resolves (creating on first use) the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let name = self.full_name(name);
        let mut map = self.inner.histograms.lock();
        if let Some(h) = map.get(name.as_ref()) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.into_owned(), Arc::clone(&h));
        h
    }

    /// The value of a counter, `None` if it was never resolved.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let name = self.full_name(name);
        self.inner
            .counters
            .lock()
            .get(name.as_ref())
            .map(|c| c.get())
    }

    /// The value of a gauge, `None` if it was never resolved.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let name = self.full_name(name);
        self.inner.gauges.lock().get(name.as_ref()).map(|g| g.get())
    }

    /// A histogram's snapshot, `None` if it was never resolved.
    #[must_use]
    pub fn histogram_snapshot(&self, name: &str) -> Option<crate::HistogramSnapshot> {
        let name = self.full_name(name);
        self.inner
            .histograms
            .lock()
            .get(name.as_ref())
            .map(|h| h.snapshot())
    }

    /// Deterministic JSON snapshot of every instrument, sorted by name.
    ///
    /// Shape:
    /// `{"counters":{name:value,...},"gauges":{...},"histograms":{name:
    /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
    /// "p99":..,"p999":..,"buckets":[[upper,count],...]},...}}`
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        {
            let map = self.inner.counters.lock();
            for (i, (name, c)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(name), c.get());
            }
        }
        out.push_str("},\"gauges\":{");
        {
            let map = self.inner.gauges.lock();
            for (i, (name, g)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(name), g.get());
            }
        }
        out.push_str("},\"histograms\":{");
        {
            let map = self.inner.histograms.lock();
            for (i, (name, h)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let s = h.snapshot();
                let _ = write!(
                    out,
                    "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                    json_string(name),
                    s.count,
                    s.sum,
                    s.min,
                    s.max,
                    s.mean(),
                    s.p50,
                    s.p90,
                    s.p99,
                    s.p999
                );
                for (j, (upper, count)) in s.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{upper},{count}]");
                }
                out.push_str("]}");
            }
        }
        out.push_str("}}");
        out
    }
}

/// Minimal JSON string encoding (instrument names are ASCII identifiers,
/// but escape defensively anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name_and_across_clones() {
        let r = MetricsRegistry::new();
        let other = r.clone();
        r.counter("hits").inc();
        other.counter("hits").add(2);
        assert_eq!(r.counter_value("hits"), Some(3));
        assert_eq!(r.counter_value("never"), None);
        r.gauge("live").set(9);
        assert_eq!(other.gauge_value("live"), Some(9));
    }

    #[test]
    fn json_snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.gauge("depth").set(-4);
        r.histogram("lat_ns").record(5);
        r.histogram("lat_ns").record(900);
        let json = r.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        let a = json.find("a.first").expect("a.first present");
        let b = json.find("b.second").expect("b.second present");
        assert!(a < b, "names must be sorted");
        assert!(json.contains("\"a.first\":1"));
        assert!(json.contains("\"depth\":-4"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"p999\":1023"));
        assert!(json.contains("\"buckets\":[[7,1],[1023,1]]"));
    }

    #[test]
    fn scoped_views_share_the_root_map() {
        let root = MetricsRegistry::new();
        let shard0 = root.scoped("shard.0.");
        let shard1 = root.scoped("shard.1.");
        shard0.counter("server.decisions").add(3);
        shard1.counter("server.decisions").inc();
        // Scoped reads see their own prefix; the root sees full names.
        assert_eq!(shard0.counter_value("server.decisions"), Some(3));
        assert_eq!(shard1.counter_value("server.decisions"), Some(1));
        assert_eq!(root.counter_value("shard.0.server.decisions"), Some(3));
        assert_eq!(root.counter_value("server.decisions"), None);
        // Scopes nest.
        let nested = shard0.scoped("inner.");
        assert_eq!(nested.prefix(), "shard.0.inner.");
        nested.gauge("depth").set(2);
        assert_eq!(root.gauge_value("shard.0.inner.depth"), Some(2));
        // The root JSON export contains every scoped instrument.
        let json = root.to_json();
        assert!(json.contains("\"shard.0.server.decisions\":3"));
        assert!(json.contains("\"shard.1.server.decisions\":1"));
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        assert_eq!(
            MetricsRegistry::new().to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn json_escapes_odd_names() {
        let r = MetricsRegistry::new();
        r.counter("weird\"name\\x").inc();
        let json = r.to_json();
        assert!(json.contains("\"weird\\\"name\\\\x\":1"));
    }
}
