//! Observability primitives for the coalition stack.
//!
//! The authorization pipeline is a four-step derivation (§4.3 / Appendix E)
//! whose cost and failure modes the rest of the workspace exercises at
//! scale — fault-injected signing sessions, the parallel cached decision
//! pipeline — yet until this crate the only visibility into a decision was
//! the final audit entry. `jaap-obs` provides the missing instruments in
//! the style of BAN-family protocol analyzers and threshold-RSA service
//! measurements:
//!
//! * [`Counter`] — monotone event counts (cache hits, retries, evictions),
//!   lock-free atomic increments.
//! * [`Gauge`] — signed point-in-time values (live cache entries).
//! * [`Histogram`] — latency distributions over **fixed log₂-scale
//!   buckets**: recording is two atomic adds and one atomic increment, with
//!   no allocation and no lock, so it is safe on the hottest path.
//! * [`Span`] — a drop-guard that times a region and records the elapsed
//!   nanoseconds into a histogram (span-style timed events).
//! * [`MetricsRegistry`] — a cheap-to-clone shared handle owning all named
//!   instruments, exporting a deterministic JSON snapshot
//!   ([`MetricsRegistry::to_json`]) with no external dependencies.
//!
//! # Design constraints
//!
//! The registry hangs off the coalition server behind an `Option`; the
//! disabled path must stay allocation-free. To make the *enabled* path
//! nearly free too, instruments are resolved **once** (a locked name-map
//! lookup returning an `Arc` handle) and then used forever after via atomic
//! operations only. Callers on hot paths should resolve handles at
//! configuration time, not per event.
//!
//! ```
//! use jaap_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let decisions = registry.counter("server.decisions");
//! let latency = registry.histogram("server.decision_ns");
//!
//! decisions.inc();
//! {
//!     let _span = latency.span(); // records on drop
//! }
//! latency.record(1_500); // or record nanoseconds directly
//!
//! let json = registry.to_json();
//! assert!(json.contains("\"server.decisions\":1"));
//! ```

mod instruments;
mod registry;

pub use instruments::{Counter, Gauge, Histogram, HistogramSnapshot, Span, BUCKETS};
pub use registry::MetricsRegistry;
