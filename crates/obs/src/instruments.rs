//! The individual instruments: counters, gauges, log-scale histograms and
//! span timers. Everything here is lock-free after construction.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per `u64` bit length, so the buckets
/// cover `[0, u64::MAX]` on a log₂ scale with no configuration.
pub const BUCKETS: usize = 65;

/// A latency/size distribution over fixed log₂-scale buckets.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)` — i.e. values whose bit length is `i`. Recording is
/// three relaxed atomic operations plus two compare-exchange loops for
/// min/max; there is no allocation and no lock, so histograms are safe to
/// share across the batch-verification worker pool.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: its bit length.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0, else `2^i − 1`).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a span-style timer that records the elapsed nanoseconds into
    /// this histogram when dropped (or explicitly [`Span::finish`]ed).
    pub fn span(&self) -> Span<'_> {
        Span {
            histogram: self,
            started: Instant::now(),
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot of the distribution. (Individual loads
    /// are relaxed; a snapshot taken while writers are active can be off by
    /// the in-flight events, which is the usual histogram contract.)
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64)> = (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper(i), c))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(&buckets, count, 0.50),
            p90: quantile(&buckets, count, 0.90),
            p99: quantile(&buckets, count, 0.99),
            p999: quantile(&buckets, count, 0.999),
            buckets,
        }
    }
}

/// Upper-bound estimate of quantile `q` from `(upper, count)` buckets.
fn quantile(buckets: &[(u64, u64)], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // ceil(q * count), clamped into [1, count].
    let rank = {
        let r = (q * count as f64).ceil() as u64;
        r.clamp(1, count)
    };
    let mut seen = 0u64;
    for &(upper, c) in buckets {
        seen += c;
        if seen >= rank {
            return upper;
        }
    }
    buckets.last().map_or(0, |&(upper, _)| upper)
}

/// A point-in-time view of a [`Histogram`], with log-bucket quantile
/// estimates (each quantile is reported as its bucket's upper bound, so
/// estimates are conservative: never below the true quantile's bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate (bucket upper bound).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate — the open-loop load experiments' tail
    /// metric. Same conservative rule: the bucket upper bound at rank
    /// `clamp(ceil(0.999·count), 1, count)`.
    pub p999: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A drop-guard timing a region into a [`Histogram`].
#[must_use = "a span records on drop; binding it to _ discards the timing immediately"]
pub struct Span<'a> {
    histogram: &'a Histogram,
    started: Instant,
}

impl Span<'_> {
    /// Stops the span now and records the elapsed time.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.histogram.record_duration(self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 1106.0 / 6.0).abs() < 1e-9);
        // 0 → bucket 0; 1 → b1; 2,3 → b2; 100 → b7; 1000 → b10.
        assert_eq!(s.buckets.len(), 5);
        assert_eq!(s.buckets[0], (0, 1));
        assert_eq!(s.buckets[2], (3, 2));
        // p50: rank 3 of 6 lands in bucket upper 3.
        assert_eq!(s.p50, 3);
        // p99: rank 6 lands in the 1000 bucket (upper 1023).
        assert_eq!(s.p99, 1023);
        // p999: rank 6 too — at small counts the tail quantiles coincide.
        assert_eq!(s.p999, 1023);
    }

    #[test]
    fn p999_separates_from_p99_at_scale() {
        let h = Histogram::new();
        // 9989 fast events, 10 slow, 1 very slow: p99 stays in the fast
        // bucket, p999 lands in the slow one, max sees the straggler.
        for _ in 0..9989 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        h.record(10_000_000);
        let s = h.snapshot();
        assert_eq!(s.p99, 127);
        assert_eq!(s.p999, 131_071);
        assert_eq!(s.max, 10_000_000);
        // Conservative rule: never below the true quantile's bucket.
        assert!(s.p999 >= 100_000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p999, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn span_records_elapsed_time() {
        let h = Histogram::new();
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        h.span().finish();
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert!(s.max >= 1_000_000, "slept ≥ 1ms, got {} ns", s.max);
    }

    #[test]
    fn histogram_is_shareable_across_threads() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for v in 0..100u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 400);
    }
}
