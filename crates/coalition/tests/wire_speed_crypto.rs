//! End-to-end behavior of the wire-speed crypto path: fixed-base
//! precomputation and batch signature verification must be invisible in
//! decisions, audit lines, and check counters (metrics off, cache off) —
//! across revocations and trust-store swaps — while a forged or swapped
//! signature anywhere in a batch is pinned to exactly its own request.

use jaap_coalition::concurrent::ConcurrentServer;
use jaap_coalition::request::JointAccessRequest;
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_coalition::server::ServerDecision;
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_wal::MemStore;

fn coalition(seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("coalition")
}

/// A mixed batch: two granted joint writes, one under-threshold denial,
/// and one more granted write — enough to exercise every signature kind.
fn batch(c: &Coalition) -> Vec<JointAccessRequest> {
    [
        &["User_D1", "User_D2"][..],
        &["User_D3"][..],
        &["User_D1", "User_D3"][..],
        &["User_D2", "User_D3"][..],
    ]
    .iter()
    .map(|signers| {
        c.build_request(signers, Operation::new("write", "Object O"))
            .expect("request")
    })
    .collect()
}

fn assert_decisions_eq(slow: &[ServerDecision], fast: &[ServerDecision]) {
    assert_eq!(slow.len(), fast.len());
    for (i, (s, f)) in slow.iter().zip(fast).enumerate() {
        assert_eq!(s.granted, f.granted, "request {i}: granted");
        assert_eq!(s.detail, f.detail, "request {i}: detail");
        assert_eq!(
            s.signature_checks, f.signature_checks,
            "request {i}: signature_checks"
        );
        assert_eq!(
            s.cached_signature_checks, f.cached_signature_checks,
            "request {i}: cached_signature_checks"
        );
        assert_eq!(
            s.axiom_applications, f.axiom_applications,
            "request {i}: axiom_applications"
        );
    }
}

/// Satellite: with metrics and the verify cache off, decisions, audit
/// lines, and every check counter are byte-identical with precomp +
/// batching on vs off — including across a mid-schedule revocation and a
/// full trust-store swap (server reset).
#[test]
fn precomp_and_batching_are_invisible_in_decisions_and_audit() {
    let mut slow = coalition(71);
    let mut fast = coalition(71);
    fast.set_crypto_precomp(true).expect("config");
    fast.set_batch_verify(true).expect("config");

    let reqs = batch(&slow);
    let d_slow = slow.server_mut().verify_batch(&reqs, 3);
    let d_fast = fast.server_mut().verify_batch(&reqs, 3);
    assert_decisions_eq(&d_slow, &d_fast);
    assert!(d_fast[0].granted && !d_fast[1].granted);

    // Mid-schedule revocation: the write AC dies, later decisions flip.
    slow.advance_time(Time(30)).expect("clock");
    fast.advance_time(Time(30)).expect("clock");
    slow.revoke_write_ac(Time(30)).expect("revoke");
    fast.revoke_write_ac(Time(30)).expect("revoke");
    let d_slow = slow.server_mut().verify_batch(&reqs, 3);
    let d_fast = fast.server_mut().verify_batch(&reqs, 3);
    assert_decisions_eq(&d_slow, &d_fast);
    assert_eq!(slow.server().audit_log(), fast.server().audit_log());

    // Trust-store swap: reset rebuilds the server (fresh store, fresh
    // precomp tables behind a fresh Arc); the flags reset too and are
    // re-applied on the fast side only.
    slow.reset_server();
    fast.reset_server();
    assert!(!fast.server().crypto_precomp());
    assert!(!fast.server().batch_verify_enabled());
    fast.set_crypto_precomp(true).expect("config");
    fast.set_batch_verify(true).expect("config");
    let d_slow = slow.server_mut().verify_batch(&reqs, 2);
    let d_fast = fast.server_mut().verify_batch(&reqs, 2);
    assert_decisions_eq(&d_slow, &d_fast);
    assert_eq!(slow.server().audit_log(), fast.server().audit_log());
}

/// The lock-free snapshot path with precomp on decides identically to the
/// plain serial server with it off.
#[test]
fn concurrent_snapshot_precomp_matches_serial() {
    let serial_c = coalition(72);
    let mut conc_c = coalition(72);
    conc_c.set_crypto_precomp(true).expect("config");
    let reqs = batch(&serial_c);
    let mut serial = serial_c.into_server();
    let conc = ConcurrentServer::new(conc_c.into_server());
    for req in &reqs {
        let s = serial.handle_request(req);
        let c = conc.decide(req);
        assert_eq!(s.granted, c.granted);
        assert_eq!(s.detail, c.detail);
        assert_eq!(s.signature_checks, c.signature_checks);
        assert_eq!(s.axiom_applications, c.axiom_applications);
    }
}

/// Satellite (batch soundness): swapped statement signatures and forged
/// certificate signatures are rejected with exactly the serial denial, the
/// bisection fallback pins the offending certificate inside its combined
/// check, and untouched requests in the same batch are unaffected.
#[test]
fn forged_signatures_in_a_batch_are_pinned_to_their_requests() {
    let mut slow = coalition(73);
    let mut fast = coalition(73);
    let registry = fast.enable_metrics();
    fast.set_crypto_precomp(true).expect("config");
    fast.set_batch_verify(true).expect("config");

    let mut reqs = batch(&slow);
    // A read rides in the same batch, so the AA's group holds both the
    // write AC and the read AC — a genuinely multi-item combined check.
    reqs.push(
        slow.build_request(&["User_D1"], Operation::new("read", "Object O"))
            .expect("read request"),
    );
    // Cross-swap the first statement signatures of requests 0 and 1
    // (different principals, so both become invalid; statements take the
    // serial precomp path, never the batch)...
    let s0 = reqs[0].statements[0].signature.clone();
    reqs[0].statements[0].signature = reqs[1].statements[0].signature.clone();
    reqs[1].statements[0].signature = s0;
    // ...graft a foreign signature onto an identity certificate of
    // request 3 (a single-item group: the leaf check pins it)...
    reqs[3].identity_certs[0].signature = reqs[3].identity_certs[1].signature.clone();
    // ...and forge request 3's threshold AC signature: the AA's combined
    // check now fails and bisection must isolate exactly this item.
    reqs[3].threshold_certs[0].signature = reqs[3].identity_certs[1].signature.clone();

    let d_slow = slow.server_mut().verify_batch(&reqs, 2);
    let d_fast = fast.server_mut().verify_batch(&reqs, 2);
    assert_decisions_eq(&d_slow, &d_fast);
    assert!(!d_fast[0].granted);
    assert!(d_fast[0]
        .detail
        .as_deref()
        .is_some_and(|d| d.contains("request signature by")));
    assert!(!d_fast[3].granted);
    // The untouched write and the read still pass through the same batch.
    assert!(d_fast[2].granted);
    assert!(d_fast[4].granted);
    // The combined checks ran and the forged AC forced a bisection.
    assert!(
        registry
            .counter_value("server.crypto.batch_verifies")
            .unwrap_or(0)
            >= 1
    );
    assert!(
        registry
            .counter_value("server.crypto.batch_fallbacks")
            .unwrap_or(0)
            >= 1
    );
}

/// Review regression (±1 subgroup of `Z_N*`): replacing a signature `s`
/// with `N - s` flips `s^e` to `-h`, and an *even* number of flips inside
/// one issuer group cancels out of any parity-fixed weighted product. Both
/// AA-issued certificates in the batch (write AC + read AC — the one
/// multi-item combined check) are mauled this way; the exact settlement of
/// screened items must deny every request with the serial denial.
#[test]
fn even_count_minus_s_mauls_are_denied_exactly() {
    let mut slow = coalition(76);
    let mut fast = coalition(76);
    let registry = fast.enable_metrics();
    fast.set_crypto_precomp(true).expect("config");
    fast.set_batch_verify(true).expect("config");

    let store = slow.trust_store();
    let n = store.aa_key().expect("aa key").rsa().modulus().clone();
    let mut reqs = batch(&slow);
    // The read request pulls the read AC into the AA's group alongside
    // the write AC, so the group holds exactly two (deduped) items.
    reqs.push(
        slow.build_request(&["User_D2"], Operation::new("read", "Object O"))
            .expect("read request"),
    );
    for req in &mut reqs {
        for tc in &mut req.threshold_certs {
            let mauled = &n - tc.signature.value();
            tc.signature = jaap_crypto::rsa::RsaSignature::from_value(mauled);
        }
    }

    let d_slow = slow.server_mut().verify_batch(&reqs, 2);
    let d_fast = fast.server_mut().verify_batch(&reqs, 2);
    assert_decisions_eq(&d_slow, &d_fast);
    for (i, d) in d_fast.iter().enumerate() {
        assert!(!d.granted, "request {i}: mauled AC must be denied");
    }
    // The multi-item combined check actually ran on the batching side.
    assert!(
        registry
            .counter_value("server.crypto.batch_verifies")
            .unwrap_or(0)
            >= 1
    );
}

/// Satellite (cache discipline): a batch-vouched certificate never enters
/// the verification cache — only individually verified ones do.
#[test]
fn batch_vouched_certs_never_populate_the_verify_cache() {
    let mut c = coalition(74);
    c.set_verification_cache(true).expect("config");
    c.set_batch_verify(true).expect("config");
    let reqs = batch(&c);
    let d = c.server_mut().verify_batch(&reqs, 2);
    assert!(d[0].granted);
    let stats = c.server().verification_cache().expect("cache on").stats();
    assert_eq!(
        stats.entries, 0,
        "batch-vouched certificates must not populate the cache"
    );
    // With batching off the same requests verify individually and do
    // populate the cache.
    c.set_batch_verify(false).expect("config");
    let _ = c.server_mut().verify_batch(&reqs, 2);
    let stats = c.server().verification_cache().expect("cache on").stats();
    assert!(
        stats.entries > 0,
        "individual verifications populate the cache"
    );
}

/// The precomp instrument exports shared-cache hits, and both config
/// flags survive a WAL snapshot + crash recovery.
#[test]
fn precomp_hits_export_and_flags_survive_recovery() {
    let mut c = coalition(75);
    let registry = c.enable_metrics();
    c.set_crypto_precomp(true).expect("config");
    let reqs = batch(&c);
    let _ = c.server_mut().verify_batch(&reqs, 1);
    let _ = c.server_mut().verify_batch(&reqs, 1);
    assert!(
        registry
            .counter_value("server.crypto.precomp_hits")
            .unwrap_or(0)
            > 0,
        "warm passes must hit the shared precomp cache"
    );

    // Flags round-trip through the journal: bootstrap snapshot captures
    // them, recovery replays them.
    let store = c.trust_store();
    let mem = MemStore::new();
    let disk = mem.clone();
    let mut server = c.into_server();
    server
        .attach_journal(Box::new(mem))
        .expect("attach journal");
    server.set_batch_verify(true).expect("config");
    drop(server); // crash
    let (recovered, report) =
        jaap_coalition::server::CoalitionServer::recover("P", store, Box::new(disk))
            .expect("recover");
    assert!(report.truncation.is_none());
    assert!(recovered.crypto_precomp(), "precomp flag survives recovery");
    assert!(
        recovered.batch_verify_enabled(),
        "batch-verify flag survives recovery"
    );
}
