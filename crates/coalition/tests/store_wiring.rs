//! Integration of the persistent cert/CRL/ACL store with the coalition
//! server: store-before-effect mirroring, snapshot plumbing through the
//! concurrent front-end, and `CapacityConfig` replay through the journal.

use jaap_coalition::concurrent::ConcurrentServer;
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_coalition::server::{CapacityConfig, CoalitionServer};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_pki::TrustStore;
use jaap_store::{CertStore, Column, StoreConfig};
use jaap_wal::MemStore;

fn coalition(seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .domains(&["D1", "D2"])
        .key_bits(192)
        .seed(seed)
        .build()
        .expect("build")
}

fn store_config() -> StoreConfig {
    StoreConfig {
        page_size: 1024,
        cache_pages: 8,
        flush_threshold: 512,
        ..StoreConfig::default()
    }
}

#[test]
fn attached_store_mirrors_acls_and_admitted_certs() {
    let mut c = coalition(51);
    let req = c
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    let medium = MemStore::new();
    let store = CertStore::open(Box::new(medium.clone()), store_config()).expect("open");
    let server = c.server_mut();
    server
        .attach_cert_store(store.clone())
        .expect("attach backfills");
    // The attach backfilled every registered object's ACL row.
    let obj_acl = server.object("Object O").expect("object").acl.clone();
    assert_eq!(store.acl("Object O").expect("get"), Some(obj_acl));

    // A granted decision admits the request's certificate bodies; the
    // store sees them before the engine does (store-before-effect).
    let d = server.handle_request(&req);
    assert!(d.granted, "{:?}", d.detail);
    assert!(store.identity_by_subject("User_D1").expect("get").is_some());
    assert!(store.len(Column::IdentitySubject) >= 2);
    store.verify_integrity().expect("index consistent");

    // A reopen over the same medium serves the same rows.
    store.flush().expect("flush");
    let reopened = CertStore::open(Box::new(medium), store_config()).expect("reopen");
    assert_eq!(
        reopened.identity_by_subject("User_D1").expect("get"),
        store.identity_by_subject("User_D1").expect("get")
    );
    assert_eq!(
        reopened.len(Column::IdentitySubject),
        store.len(Column::IdentitySubject)
    );
}

#[test]
fn concurrent_snapshot_carries_store_handle_and_epoch() {
    let c = coalition(52);
    let req = c
        .build_request(&["User_D1"], Operation::new("read", "Object O"))
        .expect("request");
    let store = CertStore::in_memory(store_config());
    let server = ConcurrentServer::new(c.into_server());
    let snap0 = server.snapshot();
    assert!(snap0.cert_store().is_none());
    server
        .with_writer(|s| s.attach_cert_store(store.clone()))
        .expect("attach");
    // Attaching bumped the state version, so a fresh snapshot was
    // published carrying the store handle and its epoch.
    let snap1 = server.snapshot();
    assert!(snap1.version() > snap0.version());
    assert!(snap1.cert_store().is_some());
    let epoch1 = snap1.store_epoch();
    let _ = server.decide(&req);
    let snap2 = server.snapshot();
    assert!(
        snap2.store_epoch() >= epoch1,
        "store epoch never goes backwards across publishes"
    );
}

#[test]
fn capacity_config_round_trips_through_the_journal() {
    let medium = MemStore::new();
    let mut server = CoalitionServer::new("P", TrustStore::new(Time(0)));
    server
        .attach_journal(Box::new(medium.clone()))
        .expect("attach journal");
    server.set_verification_cache(true).expect("config");
    let cfg = CapacityConfig::million_principals();
    server.apply_capacity_config(&cfg).expect("config");
    assert_eq!(server.verify_cache_capacity(), Some(65_536));

    let (recovered, report) =
        CoalitionServer::recover("P", TrustStore::new(Time(0)), Box::new(medium)).expect("recover");
    assert!(report.records_replayed > 0);
    assert_eq!(
        recovered.verify_cache_capacity(),
        Some(65_536),
        "verify-cache bound must survive crash recovery"
    );
}

#[test]
fn default_capacity_config_reproduces_historical_defaults() {
    let cfg = CapacityConfig::default();
    let mut server = CoalitionServer::new("P", TrustStore::new(Time(0)));
    server.apply_capacity_config(&cfg).expect("config");
    assert_eq!(server.verify_cache_capacity(), None);
}
