//! Property tests over the coalition's threshold semantics: for any signer
//! subset, the server's decision must equal "distinct valid signers ≥ m".

use jaap_coalition::scenario::CoalitionBuilder;
use proptest::prelude::*;

fn signer_names(mask: u8, n: usize) -> Vec<String> {
    (0..n)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| format!("User_D{}", i + 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Decision ⇔ |signers| ≥ m, for every subset of a 3-domain coalition
    /// with write threshold 2.
    #[test]
    fn write_decision_matches_threshold(mask in 1u8..8) {
        let mut c = CoalitionBuilder::new()
            .key_bits(192)
            .seed(u64::from(mask) + 9000)
            .build()
            .expect("coalition");
        let names = signer_names(mask, 3);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let d = c.request_write(&refs).expect("request");
        prop_assert_eq!(d.granted, refs.len() >= 2, "signers: {:?}", refs);
    }

    /// Same law for a 4-domain coalition with threshold 3.
    #[test]
    fn four_domain_threshold_three(mask in 1u8..16) {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3", "D4"])
            .write_threshold(3)
            .key_bits(192)
            .seed(u64::from(mask) + 9100)
            .build()
            .expect("coalition");
        let names = signer_names(mask, 4);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let d = c.request_write(&refs).expect("request");
        prop_assert_eq!(d.granted, refs.len() >= 3, "signers: {:?}", refs);
    }

    /// Reads always grant for any nonempty signer subset (threshold 1).
    #[test]
    fn read_grants_for_any_nonempty_subset(mask in 1u8..8) {
        let mut c = CoalitionBuilder::new()
            .key_bits(192)
            .seed(u64::from(mask) + 9200)
            .build()
            .expect("coalition");
        let names = signer_names(mask, 3);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let d = c.request_read(&refs).expect("request");
        prop_assert!(d.granted);
    }

    /// The crypto-only ablation monitor agrees with the logic-checked
    /// monitor on every subset (they differ only in proofs/revocation
    /// reasoning, not on plain threshold decisions).
    #[test]
    fn ablation_monitors_agree(mask in 1u8..8) {
        let seed = u64::from(mask) + 9300;
        let mut logic = CoalitionBuilder::new().key_bits(192).seed(seed).build().expect("c");
        let mut crypto = CoalitionBuilder::new().key_bits(192).seed(seed).build().expect("c");
        crypto.server_mut().set_logic_checking(false).expect("config");
        let names = signer_names(mask, 3);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let d1 = logic.request_write(&refs).expect("request");
        let d2 = crypto.request_write(&refs).expect("request");
        prop_assert_eq!(d1.granted, d2.granted);
    }
}
