//! One-call construction of the Figure 1 scenario and helpers that walk the
//! Figure 2 flows.

use jaap_core::certs::Validity;
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};
use jaap_pki::attribute::{ThresholdAttributeCertificate, ThresholdSubject};
use jaap_pki::{IdentityCertificate, RevocationAuthority, TrustStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use jaap_crypto::session::SessionConfig;
use jaap_crypto::CryptoError;
use jaap_net::FaultPlan;
use jaap_obs::MetricsRegistry;

use crate::aa::{CoalitionAa, SigningMode};
use crate::domain::{Domain, UserAgent};
use crate::request::{assemble, JointAccessRequest};
use crate::server::{CoalitionServer, ServerDecision};
use crate::CoalitionError;

/// The object name used by the scenario.
pub const OBJECT_O: &str = "Object O";

/// Builder for a full coalition scenario.
#[derive(Debug, Clone)]
pub struct CoalitionBuilder {
    domains: Vec<String>,
    key_bits: usize,
    seed: u64,
    write_threshold: usize,
    distributed_keygen: bool,
    validity_end: i64,
}

impl Default for CoalitionBuilder {
    fn default() -> Self {
        CoalitionBuilder {
            domains: vec!["D1".into(), "D2".into(), "D3".into()],
            key_bits: 192,
            seed: 0,
            write_threshold: 2,
            distributed_keygen: false,
            validity_end: 1_000,
        }
    }
}

impl CoalitionBuilder {
    /// Starts a builder with the paper's defaults (3 domains, 2-of-3
    /// writes, dealer-based AA key).
    #[must_use]
    pub fn new() -> Self {
        CoalitionBuilder::default()
    }

    /// Sets the member domains.
    pub fn domains(&mut self, names: &[&str]) -> &mut Self {
        self.domains = names.iter().map(|s| (*s).to_string()).collect();
        self
    }

    /// RSA modulus size for all keys.
    pub fn key_bits(&mut self, bits: usize) -> &mut Self {
        self.key_bits = bits;
        self
    }

    /// Deterministic seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// The write threshold `m` (paper: 2-of-3).
    pub fn write_threshold(&mut self, m: usize) -> &mut Self {
        self.write_threshold = m;
        self
    }

    /// Use the full Boneh–Franklin distributed key generation for the AA
    /// instead of the dealer fast path.
    pub fn distributed_keygen(&mut self, on: bool) -> &mut Self {
        self.distributed_keygen = on;
        self
    }

    /// Certificate validity horizon.
    pub fn validity_end(&mut self, t: i64) -> &mut Self {
        self.validity_end = t;
        self
    }

    /// Builds the coalition: domains + CAs + users, the shared-key AA, the
    /// RA, the server with `Object O`, and the write/read threshold ACs.
    ///
    /// # Errors
    ///
    /// Propagates crypto/PKI failures and configuration errors.
    pub fn build(&self) -> Result<Coalition, CoalitionError> {
        if self.domains.len() < 2 {
            return Err(CoalitionError::Config(
                "a coalition needs at least two domains".into(),
            ));
        }
        if self.write_threshold == 0 || self.write_threshold > self.domains.len() {
            return Err(CoalitionError::Config(format!(
                "write threshold {} out of range for {} domains",
                self.write_threshold,
                self.domains.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let validity = Validity::new(Time(0), Time(self.validity_end));

        // Domains, CAs and one user per domain.
        let mut domains = Vec::with_capacity(self.domains.len());
        let mut identity_certs = Vec::new();
        for name in &self.domains {
            let mut d = Domain::new(name, &mut rng, self.key_bits)?;
            let cert = d.register_user(
                format!("User_{name}"),
                &mut rng,
                self.key_bits,
                validity,
                Time(1),
            )?;
            identity_certs.push(cert);
            domains.push(d);
        }

        // The coalition AA (Case II: shared key).
        let aa = if self.distributed_keygen {
            CoalitionAa::establish_distributed(
                "AA",
                self.domains.clone(),
                self.key_bits.max(64),
                self.seed,
            )?
            .0
        } else {
            CoalitionAa::establish_dealt("AA", self.domains.clone(), &mut rng, self.key_bits)?
        };
        let ra = RevocationAuthority::new("RA", "AA", &mut rng, self.key_bits)?;

        // The server's trust store (its initial beliefs).
        let mut store = TrustStore::new(Time(0));
        for d in &domains {
            store.trust_ca(d.ca().name(), d.ca().public().clone());
        }
        store.trust_aa("AA", aa.public().clone(), self.domains.clone());
        store.trust_ra("RA", "AA", ra.public().clone());

        let mut server = CoalitionServer::new("P", store);
        let mut acl = Acl::new();
        acl.permit(GroupId::new("G_write"), "write");
        acl.permit(GroupId::new("G_read"), "read");
        server
            .add_object(OBJECT_O, acl)
            .expect("fresh server has no journal to fail");
        server
            .advance_clock(Time(10))
            .expect("fresh server clock starts at zero");

        // Threshold attribute certificates (Figure 2(a)/(c)).
        let members: Vec<(String, jaap_crypto::rsa::RsaPublicKey)> = domains
            .iter()
            .map(|d| {
                let u = &d.users()[0];
                (u.name().to_string(), u.public().clone())
            })
            .collect();
        let write_subject = ThresholdSubject::new(members.clone(), self.write_threshold)?;
        let read_subject = ThresholdSubject::new(members, 1)?;
        let write_ac = aa.issue_threshold_certificate(
            write_subject,
            GroupId::new("G_write"),
            validity,
            Time(6),
        )?;
        let read_ac = aa.issue_threshold_certificate(
            read_subject,
            GroupId::new("G_read"),
            validity,
            Time(6),
        )?;

        Ok(Coalition {
            domains,
            aa,
            ra,
            server,
            identity_certs,
            write_ac,
            read_ac,
            validity,
            key_bits: self.key_bits,
            metrics: None,
            rng,
        })
    }
}

/// A fully constructed Figure 1 coalition.
#[derive(Debug)]
pub struct Coalition {
    pub(crate) domains: Vec<Domain>,
    pub(crate) aa: CoalitionAa,
    pub(crate) ra: RevocationAuthority,
    pub(crate) server: CoalitionServer,
    pub(crate) identity_certs: Vec<IdentityCertificate>,
    pub(crate) write_ac: ThresholdAttributeCertificate,
    pub(crate) read_ac: ThresholdAttributeCertificate,
    pub(crate) validity: Validity,
    pub(crate) key_bits: usize,
    pub(crate) metrics: Option<MetricsRegistry>,
    pub(crate) rng: StdRng,
}

impl Coalition {
    /// The coalition server.
    #[must_use]
    pub fn server(&self) -> &CoalitionServer {
        &self.server
    }

    /// Mutable server access.
    #[must_use]
    pub fn server_mut(&mut self) -> &mut CoalitionServer {
        &mut self.server
    }

    /// Consumes the coalition and returns its server — for wrapping in the
    /// concurrent/sharded front-end ([`crate::concurrent::ConcurrentServer`],
    /// [`crate::shard::ShardedCoalition`]). The signing-side artifacts
    /// (domains, AA, RA, certificates) are dropped, so build any requests
    /// and revocations first.
    #[must_use]
    pub fn into_server(self) -> CoalitionServer {
        self.server
    }

    /// The coalition AA.
    #[must_use]
    pub fn aa(&self) -> &CoalitionAa {
        &self.aa
    }

    /// Mutable AA access (for share refresh experiments).
    #[must_use]
    pub fn aa_mut(&mut self) -> &mut CoalitionAa {
        &mut self.aa
    }

    /// The revocation authority.
    #[must_use]
    pub fn ra(&self) -> &RevocationAuthority {
        &self.ra
    }

    /// The member domains.
    #[must_use]
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The standing write threshold AC.
    #[must_use]
    pub fn write_ac(&self) -> &ThresholdAttributeCertificate {
        &self.write_ac
    }

    /// The standing read threshold AC.
    #[must_use]
    pub fn read_ac(&self) -> &ThresholdAttributeCertificate {
        &self.read_ac
    }

    /// Finds a user by name across domains.
    #[must_use]
    pub fn user(&self, name: &str) -> Option<&UserAgent> {
        self.domains.iter().find_map(|d| d.user(name))
    }

    /// The identity certificate for a user.
    #[must_use]
    pub fn identity_cert(&self, user: &str) -> Option<&IdentityCertificate> {
        self.identity_certs.iter().find(|c| c.subject == user)
    }

    /// Advances the server clock.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] if `to` is before the current time.
    pub fn advance_time(&mut self, to: Time) -> Result<(), CoalitionError> {
        self.server.advance_clock(to)
    }

    /// Enables/disables the server's certificate-verification cache
    /// (delegates to [`CoalitionServer::set_verification_cache`]).
    ///
    /// # Errors
    ///
    /// Propagates the server's journal fail-stop error.
    pub fn set_verification_cache(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.server.set_verification_cache(on)
    }

    /// Enables/disables the engine's derivation memo (delegates to
    /// [`CoalitionServer::set_derivation_memo`]; off by default).
    ///
    /// # Errors
    ///
    /// Propagates the server's journal fail-stop error.
    pub fn set_derivation_memo(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.server.set_derivation_memo(on)
    }

    /// Enables/disables fixed-base precomputation in the server's crypto
    /// phase (delegates to [`CoalitionServer::set_crypto_precomp`]; off by
    /// default).
    ///
    /// # Errors
    ///
    /// Propagates the server's journal fail-stop error.
    pub fn set_crypto_precomp(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.server.set_crypto_precomp(on)
    }

    /// Enables/disables batch signature verification for
    /// [`CoalitionServer::verify_batch`] (delegates to
    /// [`CoalitionServer::set_batch_verify`]; off by default).
    ///
    /// # Errors
    ///
    /// Propagates the server's journal fail-stop error.
    pub fn set_batch_verify(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.server.set_batch_verify(on)
    }

    /// Turns observability on for the whole coalition: one shared
    /// [`MetricsRegistry`] wired through the server's §4.3 pipeline
    /// ([`CoalitionServer::set_metrics`]) and the AA's networked signing
    /// sessions ([`CoalitionAa::set_metrics`]). Returns a handle to the
    /// registry (cheap clone — snapshots and JSON export read live state).
    pub fn enable_metrics(&mut self) -> MetricsRegistry {
        let registry = self
            .metrics
            .get_or_insert_with(MetricsRegistry::new)
            .clone();
        self.server.set_metrics(Some(&registry));
        self.aa.set_metrics(Some(registry.clone()));
        registry
    }

    /// Turns observability back off; the request path returns to doing no
    /// metrics work at all.
    pub fn disable_metrics(&mut self) {
        self.metrics = None;
        self.server.set_metrics(None);
        self.aa.set_metrics(None);
    }

    /// The coalition's metrics registry, when enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// A fresh trust store carrying the coalition's current trust anchors
    /// (domain CAs, the AA, the RA) — exactly what a rebuilt or recovered
    /// server must be configured with, since trust anchors are
    /// configuration rather than journaled state.
    #[must_use]
    pub fn trust_store(&self) -> TrustStore {
        let mut store = TrustStore::new(Time(0));
        for d in &self.domains {
            store.trust_ca(d.ca().name(), d.ca().public().clone());
        }
        let names: Vec<String> = self.domains.iter().map(|d| d.name().to_string()).collect();
        store.trust_aa("AA", self.aa.public().clone(), names);
        store.trust_ra("RA", "AA", self.ra.public().clone());
        store
    }

    /// Replaces the server with a fresh one built from the coalition's
    /// existing trust material: a new trust store, an empty audit log,
    /// `Object O` back at version 0, and the clock preserved. No keys are
    /// regenerated, so this is cheap; benchmarks use it to sweep server
    /// configurations (cache on/off, worker counts) against identical
    /// certificates and requests.
    pub fn reset_server(&mut self) {
        let now = self.server.now();
        let mut server = CoalitionServer::new("P", self.trust_store());
        let mut acl = Acl::new();
        acl.permit(GroupId::new("G_write"), "write");
        acl.permit(GroupId::new("G_read"), "read");
        server
            .add_object(OBJECT_O, acl)
            .expect("fresh server has no journal to fail");
        server
            .advance_clock(now)
            .expect("fresh server clock starts at zero");
        if let Some(registry) = &self.metrics {
            server.set_metrics(Some(registry));
        }
        self.server = server;
    }

    /// Sets the fault model the AA's networked signing sessions run under
    /// (delegates to [`CoalitionAa::set_fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.aa.set_fault_plan(plan);
    }

    /// Sets the timeout/retry policy of the AA's networked signing sessions
    /// (delegates to [`CoalitionAa::set_session_config`]).
    pub fn set_session_config(&mut self, config: SessionConfig) {
        self.aa.set_session_config(config);
    }

    /// Builds and submits a Figure 2(b) **write** request signed by
    /// `signers`.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for unknown users; signing failures.
    pub fn request_write(&mut self, signers: &[&str]) -> Result<ServerDecision, CoalitionError> {
        self.request_operation(signers, Operation::new("write", OBJECT_O))
    }

    /// Builds and submits a Figure 2(d) **read** request.
    ///
    /// # Errors
    ///
    /// See [`Coalition::request_write`].
    pub fn request_read(&mut self, signers: &[&str]) -> Result<ServerDecision, CoalitionError> {
        self.request_operation(signers, Operation::new("read", OBJECT_O))
    }

    /// Builds and submits a request for an arbitrary operation.
    ///
    /// # Errors
    ///
    /// See [`Coalition::request_write`].
    pub fn request_operation(
        &mut self,
        signers: &[&str],
        operation: Operation,
    ) -> Result<ServerDecision, CoalitionError> {
        if self.aa.signing_mode() == SigningMode::Networked {
            return self.request_operation_networked(signers, operation);
        }
        let request = self.build_request(signers, operation)?;
        Ok(self.server.handle_request(&request))
    }

    /// The networked request path (E6): the member domains countersign the
    /// standing threshold AC afresh over the simulated (faulty) network
    /// before the request is submitted. When the signing session cannot
    /// assemble its quorum, the coalition **degrades gracefully**: instead
    /// of an error or a hang, the server records an unavailability denial
    /// carrying the session's retry trace in the audit log, and the caller
    /// gets a [`ServerDecision`] with `unavailable` set.
    fn request_operation_networked(
        &mut self,
        signers: &[&str],
        operation: Operation,
    ) -> Result<ServerDecision, CoalitionError> {
        let ac = if operation.action == "read" {
            self.read_ac.clone()
        } else {
            self.write_ac.clone()
        };
        let body = ThresholdAttributeCertificate::body_bytes(
            self.aa.name(),
            &ac.subject,
            &ac.group,
            ac.validity,
            ac.timestamp,
        );
        let (outcome, report) = self.aa.joint_sign_with_report(&body);
        match outcome {
            Ok(signature) => {
                let fresh = ThresholdAttributeCertificate { signature, ..ac };
                let request = self.build_request_with_ac(signers, operation, fresh)?;
                Ok(self.server.handle_request(&request))
            }
            Err(CoalitionError::Crypto(e @ CryptoError::QuorumUnreachable { .. })) => {
                let trace = report.summary();
                Ok(self.server.record_unavailable(
                    signers.iter().map(|s| (*s).to_string()).collect(),
                    operation,
                    format!("coalition signing unavailable: {e}"),
                    (!trace.is_empty()).then_some(trace),
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Assembles (but does not submit) a joint request — used by tests
    /// that want to tamper with it first.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for unknown users; signing failures.
    pub fn build_request(
        &self,
        signers: &[&str],
        operation: Operation,
    ) -> Result<JointAccessRequest, CoalitionError> {
        let ac = if operation.action == "read" {
            self.read_ac.clone()
        } else {
            self.write_ac.clone()
        };
        self.build_request_with_ac(signers, operation, ac)
    }

    /// Assembles a joint request around a specific threshold AC (the
    /// networked path countersigns the AC at request time).
    fn build_request_with_ac(
        &self,
        signers: &[&str],
        operation: Operation,
        ac: ThresholdAttributeCertificate,
    ) -> Result<JointAccessRequest, CoalitionError> {
        let users: Vec<&UserAgent> = signers
            .iter()
            .map(|name| {
                self.user(name)
                    .ok_or_else(|| CoalitionError::Config(format!("unknown user {name}")))
            })
            .collect::<Result<_, _>>()?;
        let identity_certs = signers
            .iter()
            .map(|name| {
                self.identity_cert(name)
                    .cloned()
                    .ok_or_else(|| CoalitionError::Config(format!("no identity cert for {name}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        assemble(
            &users,
            identity_certs,
            vec![ac],
            vec![],
            operation,
            self.server.now(),
        )
    }

    /// Issues (jointly) a threshold AC granting `m`-of-all-users the
    /// authority to modify `Object O`'s policy object — the paper's
    /// "threshold attribute certificates are distributed that grant certain
    /// coalition users the authority to modify policy objects" (§4.3).
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn issue_policy_admin_ac(
        &mut self,
        m: usize,
    ) -> Result<ThresholdAttributeCertificate, CoalitionError> {
        let members: Vec<(String, jaap_crypto::rsa::RsaPublicKey)> = self
            .domains
            .iter()
            .map(|d| {
                let u = &d.users()[0];
                (u.name().to_string(), u.public().clone())
            })
            .collect();
        let subject = ThresholdSubject::new(members, m)?;
        self.aa.issue_threshold_certificate(
            subject,
            GroupId::new("G_policy_admin"),
            self.validity,
            self.server.now(),
        )
    }

    /// Submits a joint **set-policy** request; when granted, the server
    /// replaces `Object O`'s ACL with `new_acl` (joint administration of
    /// the policy object itself).
    ///
    /// The request needs the standing ACL to contain
    /// `(G_policy_admin, set-policy)` — bootstrap that via an initial
    /// consented [`Coalition::request_set_policy`]-free `set_acl`, or by
    /// including the entry from day one; the quickstart scenario includes
    /// it when `policy_admin_ac` is issued.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for unknown users; signing failures.
    pub fn request_set_policy(
        &mut self,
        signers: &[&str],
        admin_ac: &ThresholdAttributeCertificate,
        new_acl: Acl,
    ) -> Result<ServerDecision, CoalitionError> {
        let operation = Operation::new("set-policy", OBJECT_O);
        let users: Vec<&UserAgent> = signers
            .iter()
            .map(|name| {
                self.user(name)
                    .ok_or_else(|| CoalitionError::Config(format!("unknown user {name}")))
            })
            .collect::<Result<_, _>>()?;
        let identity_certs = signers
            .iter()
            .map(|name| {
                self.identity_cert(name)
                    .cloned()
                    .ok_or_else(|| CoalitionError::Config(format!("no identity cert for {name}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let request = assemble(
            &users,
            identity_certs,
            vec![admin_ac.clone()],
            vec![],
            operation,
            self.server.now(),
        )?;
        let decision = self.server.handle_request(&request);
        if decision.granted {
            self.server.set_acl(OBJECT_O, new_acl)?;
        }
        Ok(decision)
    }

    /// Adds `(group, action)` to `Object O`'s standing ACL (administrative
    /// bootstrap; runtime changes should go through
    /// [`Coalition::request_set_policy`]).
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an unknown object.
    pub fn permit_on_object(&mut self, group: GroupId, action: &str) -> Result<(), CoalitionError> {
        let mut acl = self
            .server
            .object(OBJECT_O)
            .map(|o| o.acl.clone())
            .ok_or_else(|| CoalitionError::Config("no Object O".into()))?;
        acl.permit(group, action);
        self.server.set_acl(OBJECT_O, acl)
    }

    /// Proactively refreshes the AA's private-key shares over the network
    /// (Wu et al. [27]); the public key and all certificates stay valid.
    ///
    /// # Errors
    ///
    /// Propagates refresh failures.
    pub fn refresh_aa_shares(&mut self, seed: u64) -> Result<(), CoalitionError> {
        let (refreshed, _stats) = jaap_crypto::refresh::refresh_over_network_observed(
            self.aa.shares(),
            seed,
            FaultPlan::reliable(),
            self.metrics.as_ref(),
        )?;
        for (slot, new) in self.aa.shares_mut().iter_mut().zip(refreshed) {
            *slot = new;
        }
        Ok(())
    }

    /// Has the RA revoke the write AC effective `from`, and the server
    /// admit the revocation.
    ///
    /// # Errors
    ///
    /// Propagates signing/admission failures.
    pub fn revoke_write_ac(&mut self, from: Time) -> Result<(), CoalitionError> {
        let rev = self.ra.revoke_attribute(
            &self.write_ac.subject,
            self.write_ac.group.clone(),
            from,
            from,
        )?;
        self.server.admit_attribute_revocation(&rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_parameters() {
        assert!(matches!(
            CoalitionBuilder::new().domains(&["D1"]).build(),
            Err(CoalitionError::Config(_))
        ));
        assert!(matches!(
            CoalitionBuilder::new().write_threshold(5).build(),
            Err(CoalitionError::Config(_))
        ));
    }

    #[test]
    fn figure1_scenario_constructs() {
        let c = CoalitionBuilder::new()
            .seed(5)
            .key_bits(192)
            .build()
            .expect("build");
        assert_eq!(c.domains().len(), 3);
        assert!(c.user("User_D1").is_some());
        assert!(c.user("User_D9").is_none());
        assert!(c.server().object(OBJECT_O).is_some());
        assert!(c.write_ac().verify(c.aa().public()).is_ok());
        assert!(c.read_ac().verify(c.aa().public()).is_ok());
    }

    #[test]
    fn read_needs_one_signer_write_needs_two() {
        let mut c = CoalitionBuilder::new()
            .seed(6)
            .key_bits(192)
            .build()
            .expect("build");
        assert!(c.request_read(&["User_D3"]).expect("read").granted);
        assert!(!c.request_write(&["User_D3"]).expect("write-1").granted);
        assert!(
            c.request_write(&["User_D3", "User_D1"])
                .expect("write-2")
                .granted
        );
        assert!(
            c.request_write(&["User_D1", "User_D2", "User_D3"])
                .expect("write-3")
                .granted
        );
    }

    #[test]
    fn five_domain_coalition_with_3_of_5_writes() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3", "D4", "D5"])
            .write_threshold(3)
            .seed(7)
            .key_bits(192)
            .build()
            .expect("build");
        assert!(!c.request_write(&["User_D1", "User_D2"]).expect("2").granted);
        assert!(
            c.request_write(&["User_D1", "User_D3", "User_D5"])
                .expect("3")
                .granted
        );
    }

    #[test]
    fn revocation_flips_decision() {
        let mut c = CoalitionBuilder::new()
            .seed(8)
            .key_bits(192)
            .build()
            .expect("build");
        assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
        c.advance_time(Time(20)).expect("clock");
        c.revoke_write_ac(Time(20)).expect("revoke");
        c.advance_time(Time(21)).expect("clock");
        assert!(
            !c.request_write(&["User_D1", "User_D2"])
                .expect("w2")
                .granted
        );
        // Reads are unaffected (separate AC).
        assert!(c.request_read(&["User_D1"]).expect("r").granted);
    }

    #[test]
    fn distributed_keygen_scenario_end_to_end() {
        let mut c = CoalitionBuilder::new()
            .seed(9)
            .key_bits(96)
            .distributed_keygen(true)
            .build()
            .expect("build");
        assert!(c.request_write(&["User_D1", "User_D2"]).expect("w").granted);
    }
}
