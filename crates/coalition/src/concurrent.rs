//! The read/write split: epoch-versioned decision snapshots and a
//! single-writer coalition server (DESIGN §5g).
//!
//! The coalition workload is read-dominated — streams of decision requests
//! against slowly-changing trust/ACL/revocation beliefs. The §4.3 pipeline
//! splits naturally:
//!
//! * the **crypto phase** is a pure function of (trust store, verify-cache
//!   handle, clock, request) — parallelizable, and by far the most
//!   expensive part of a decision;
//! * the **logic/ACL/audit tail** mutates the belief engine and must run
//!   serially, in commit order.
//!
//! [`ConcurrentServer`] exploits that split. All mutations (admissions,
//! revocations, clock advances, configuration — each already WAL-journaled
//! before taking effect) go through the single writer lock, and every
//! mutation publishes a fresh immutable [`DecisionSnapshot`] stamped with
//! the server's [`state_version`](crate::server::CoalitionServer::state_version).
//! Decision workers evaluate the crypto phase against a snapshot **without
//! holding any lock**, then take the writer lock only for the serial tail.
//! At commit the snapshot's version is compared against the live one: equal
//! means nothing changed since the snapshot was taken, so the decision is
//! byte-identical to serial execution at that version; different means the
//! crypto outcome may be stale and the decision retries against the newly
//! published snapshot (bounded — the final attempt runs fully serial under
//! the lock, which is always sound).
//!
//! A torn epoch is structurally impossible: the version a reader validates
//! against travels *inside* the immutable snapshot `Arc` it evaluates, not
//! in a separate cell that could be observed mid-publish.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jaap_core::syntax::Time;
use jaap_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use jaap_pki::TrustStore;
use jaap_store::CertStore;
use parking_lot::Mutex;

use crate::cache::VerifyCache;
use crate::request::JointAccessRequest;
use crate::server::{
    crypto_verify, AuditEntry, CoalitionServer, CryptoOutcome, ServerDecision, ShedReason,
};
use crate::CoalitionError;

/// How many optimistic attempts a decision makes before falling back to
/// fully serial execution under the writer lock. Each failed attempt means
/// a mutation landed between snapshot load and commit; under any realistic
/// admission rate one retry is already rare.
const MAX_OPTIMISTIC_ATTEMPTS: usize = 3;

/// Bounded capacity of the volatile shed-audit ring (oldest lines evicted
/// first). Shedding exists to protect the server from overload; an
/// unbounded audit of sheds would reintroduce the unbounded queue it
/// replaces.
const SHED_AUDIT_CAPACITY: usize = 1024;

/// Pre-resolved instruments for the lock-free shed path (`server.inflight`,
/// `server.shed.{overloaded,deadline}`). The shed counters resolve to the
/// same registry slots as the serial server's, so totals aggregate across
/// whichever path rejected the request.
#[derive(Debug)]
struct GateInstruments {
    inflight: Arc<Gauge>,
    shed_overloaded: Arc<Counter>,
    shed_deadline: Arc<Counter>,
}

/// RAII in-flight permit: decrements the gate count (and gauge) on every
/// exit path out of a decision, shed or served. Also handed out by
/// [`ConcurrentServer::acquire_slot`] so drain tooling and benches can
/// occupy the gate without running a decision.
pub struct InflightPermit<'a> {
    count: &'a AtomicUsize,
    gauge: Option<Arc<Gauge>>,
}

impl std::fmt::Debug for InflightPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightPermit").finish_non_exhaustive()
    }
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        let now = self.count.fetch_sub(1, Ordering::AcqRel) - 1;
        if let Some(g) = &self.gauge {
            g.set(i64::try_from(now).unwrap_or(i64::MAX));
        }
    }
}

/// An immutable view of everything the crypto phase of a decision depends
/// on, published at a single state version.
#[derive(Debug, Clone)]
pub struct DecisionSnapshot {
    version: u64,
    at: Time,
    /// Stale-recency refusal precomputed at publish time: the recency
    /// policy depends only on writer-side state (window, last CRL, clock),
    /// all captured by `version`.
    recency_refusal: Option<String>,
    store: Arc<TrustStore>,
    /// The live cache handle (internally synchronized and
    /// revocation-invalidated); `None` when the cache is off.
    verify_cache: Option<VerifyCache>,
    /// Whether the crypto phase routes through the trust store's shared
    /// fixed-base precomputation cache. The tables live *inside* `store`,
    /// so they travel behind the same `Arc` as the keys they were derived
    /// from — a store swap can never pair this snapshot with foreign
    /// tables.
    precomp: bool,
    /// Pre-resolved crypto-latency histogram, when metrics are attached.
    crypto_ns: Option<Arc<Histogram>>,
    /// The persistent cert/CRL/ACL store handle (internally synchronized,
    /// cloneable), when one is attached. Travels with the snapshot so
    /// readers can page in cold certificate bodies without the writer
    /// lock.
    cert_store: Option<CertStore>,
    /// The store epoch captured at publish — the store analogue of
    /// `version`: any store mutation bumps it, so a reader can tell
    /// whether index state moved since this snapshot was taken.
    store_epoch: u64,
}

impl DecisionSnapshot {
    fn capture(server: &CoalitionServer) -> Self {
        let cert_store = server.cert_store_handle();
        let store_epoch = cert_store.as_ref().map_or(0, CertStore::epoch);
        DecisionSnapshot {
            version: server.state_version(),
            at: server.now(),
            recency_refusal: server.recency_error(),
            store: server.trust_store_handle(),
            verify_cache: server.verify_cache_handle(),
            precomp: server.crypto_precomp(),
            crypto_ns: server.crypto_histogram(),
            cert_store,
            store_epoch,
        }
    }

    /// The state version this snapshot was published at.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The persistent cert/CRL/ACL store handle, when one is attached.
    #[must_use]
    pub fn cert_store(&self) -> Option<&CertStore> {
        self.cert_store.as_ref()
    }

    /// The store epoch captured at publish (0 when no store is attached).
    #[must_use]
    pub fn store_epoch(&self) -> u64 {
        self.store_epoch
    }

    /// The server clock captured at publish.
    #[must_use]
    pub fn at(&self) -> Time {
        self.at
    }

    /// Runs the lock-free phase of a decision: the recency check and the
    /// full crypto verification, against this snapshot's fixed state.
    pub(crate) fn evaluate(&self, req: &JointAccessRequest) -> CryptoOutcome {
        if let Some(detail) = &self.recency_refusal {
            return CryptoOutcome::failed(detail.clone());
        }
        let t = self.crypto_ns.as_ref().map(|_| Instant::now());
        let outcome = crypto_verify(
            &self.store,
            self.verify_cache.as_ref(),
            self.at,
            req,
            self.precomp,
            None,
        );
        if let (Some(h), Some(t)) = (&self.crypto_ns, t) {
            h.record_duration(t.elapsed());
        }
        outcome
    }
}

/// The publication cell: the current snapshot plus an atomic copy of its
/// version used as a cheap refresh hint.
///
/// The hot read path ([`SnapshotReader::load`]) is one atomic load and a
/// version compare; the slot mutex is taken only when the version actually
/// moved (or by the writer, which is rare by assumption). The hint is
/// *only* a hint: a reader acting on a stale cached snapshot is
/// indistinguishable from one that decided just before the publish, and
/// the commit-time version check catches it.
#[derive(Debug)]
struct SnapshotCell {
    version: AtomicU64,
    slot: Mutex<Arc<DecisionSnapshot>>,
}

impl SnapshotCell {
    fn new(snapshot: DecisionSnapshot) -> Self {
        SnapshotCell {
            version: AtomicU64::new(snapshot.version),
            slot: Mutex::new(Arc::new(snapshot)),
        }
    }

    fn load(&self) -> Arc<DecisionSnapshot> {
        Arc::clone(&self.slot.lock())
    }

    fn publish(&self, snapshot: DecisionSnapshot) {
        let version = snapshot.version;
        let snapshot = Arc::new(snapshot);
        let mut slot = self.slot.lock();
        *slot = snapshot;
        // Publish the hint only after the slot holds the matching
        // snapshot; a reader that races sees at worst an older hint and
        // keeps its cached (older) snapshot — never a mixed state.
        self.version.store(version, Ordering::Release);
    }
}

/// A per-worker cached view of the published snapshot. `load` refreshes
/// the cached `Arc` only when the atomic version hint moved, so steady-state
/// reads touch no lock at all.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    cell: &'a SnapshotCell,
    cached: Arc<DecisionSnapshot>,
}

impl SnapshotReader<'_> {
    /// The current snapshot (refreshing the cache if the version moved).
    pub fn load(&mut self) -> Arc<DecisionSnapshot> {
        let hint = self.cell.version.load(Ordering::Acquire);
        if self.cached.version != hint {
            self.cached = self.cell.load();
        }
        Arc::clone(&self.cached)
    }
}

/// A [`CoalitionServer`] behind the read/write split: lock-free snapshot
/// reads for the decision hot path, single-writer mutations that publish a
/// new epoch.
#[derive(Debug)]
pub struct ConcurrentServer {
    writer: Mutex<CoalitionServer>,
    published: SnapshotCell,
    /// In-flight decision count (the admission gate).
    inflight: AtomicUsize,
    /// Gate capacity; `0` = unlimited (gate off).
    inflight_limit: AtomicUsize,
    /// Lock-free-path instruments, when a registry is attached.
    gate_metrics: Mutex<Option<Arc<GateInstruments>>>,
    /// Volatile bounded audit ring for decisions shed off the writer lock —
    /// the serial audit log cannot record them without taking the very
    /// lock the shed path exists to avoid.
    shed_audit: Mutex<VecDeque<AuditEntry>>,
}

impl ConcurrentServer {
    /// Wraps a server, publishing its current state as the first snapshot.
    #[must_use]
    pub fn new(server: CoalitionServer) -> Self {
        let snapshot = DecisionSnapshot::capture(&server);
        ConcurrentServer {
            writer: Mutex::new(server),
            published: SnapshotCell::new(snapshot),
            inflight: AtomicUsize::new(0),
            inflight_limit: AtomicUsize::new(0),
            gate_metrics: Mutex::new(None),
            shed_audit: Mutex::new(VecDeque::new()),
        }
    }

    /// Caps concurrent in-flight decisions. At the cap, further requests
    /// are **rejected** with a typed [`ShedReason::Overloaded`] decision —
    /// never queued: a queue under sustained overload grows without bound
    /// and destroys every deadline behind it. `0` disables the gate.
    pub fn set_inflight_limit(&self, limit: usize) {
        self.inflight_limit.store(limit, Ordering::Relaxed);
    }

    /// The configured in-flight cap (`0` = unlimited).
    #[must_use]
    pub fn inflight_limit(&self) -> usize {
        self.inflight_limit.load(Ordering::Relaxed)
    }

    /// Decisions currently in flight.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Resolves the lock-free-path instruments (`server.inflight` gauge,
    /// `server.shed.{overloaded,deadline}` counters) from `registry`. The
    /// serial server's own pipeline instruments attach separately through
    /// the writer (`with_writer(|s| s.set_metrics(..))`); shed counters
    /// resolved from the same registry aggregate across both paths.
    pub fn set_gate_metrics(&self, registry: &MetricsRegistry) {
        *self.gate_metrics.lock() = Some(Arc::new(GateInstruments {
            inflight: registry.gauge("server.inflight"),
            shed_overloaded: registry.counter("server.shed.overloaded"),
            shed_deadline: registry.counter("server.shed.deadline"),
        }));
    }

    /// The shed-audit ring: decisions shed off the writer lock, oldest
    /// first (bounded; oldest lines evicted past capacity). Every entry has
    /// `shed: Some(..)` — Indeterminate outcomes, distinguishable from the
    /// policy denials in the serial audit log.
    #[must_use]
    pub fn shed_audit(&self) -> Vec<AuditEntry> {
        self.shed_audit.lock().iter().cloned().collect()
    }

    /// Takes (and holds, until the permit drops) one admission-gate slot
    /// without running a decision; `None` means the gate is full. Drain
    /// tooling parks permits to shrink effective capacity, and benches
    /// use a parked permit to price the reject path deterministically.
    #[must_use]
    pub fn acquire_slot(&self) -> Option<InflightPermit<'_>> {
        let instruments = self.gate_metrics.lock().clone();
        self.try_enter(instruments.as_ref())
    }

    /// Tries to take an in-flight slot; `None` means the gate is full.
    fn try_enter(&self, instruments: Option<&Arc<GateInstruments>>) -> Option<InflightPermit<'_>> {
        let limit = self.inflight_limit.load(Ordering::Relaxed);
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if limit != 0 && prev >= limit {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        let gauge = instruments.map(|m| Arc::clone(&m.inflight));
        if let Some(g) = &gauge {
            g.set(i64::try_from(prev + 1).unwrap_or(i64::MAX));
        }
        Some(InflightPermit {
            count: &self.inflight,
            gauge,
        })
    }

    /// Sheds a request without touching the writer lock: a typed decision,
    /// a line in the bounded shed-audit ring, and a counter bump. Stamped
    /// with the published snapshot's clock (the freshest time visible
    /// without the lock).
    fn shed_unlocked(
        &self,
        req: &JointAccessRequest,
        reason: ShedReason,
        detail: &str,
        instruments: Option<&Arc<GateInstruments>>,
    ) -> ServerDecision {
        let entry = AuditEntry {
            at: self.published.load().at(),
            principals: req.statements.iter().map(|s| s.principal.clone()).collect(),
            operation: req.operation.clone(),
            granted: false,
            detail: detail.to_string(),
            cached_checks: 0,
            retry_trace: None,
            shed: Some(reason),
        };
        {
            let mut ring = self.shed_audit.lock();
            if ring.len() == SHED_AUDIT_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(entry);
        }
        if let Some(m) = instruments {
            match reason {
                ShedReason::Overloaded => m.shed_overloaded.inc(),
                ShedReason::DeadlineExceeded => m.shed_deadline.inc(),
                // Poison sheds happen under the writer lock (the serial
                // server owns that state) and are counted there.
                ShedReason::JournalPoisoned => {}
            }
        }
        ServerDecision::shed(reason, detail)
    }

    /// Unwraps back into the plain server.
    #[must_use]
    pub fn into_inner(self) -> CoalitionServer {
        self.writer.into_inner()
    }

    /// The currently published snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Arc<DecisionSnapshot> {
        self.published.load()
    }

    /// A per-worker cached snapshot reader (steady-state loads are one
    /// atomic read).
    #[must_use]
    pub fn reader(&self) -> SnapshotReader<'_> {
        SnapshotReader {
            cell: &self.published,
            cached: self.published.load(),
        }
    }

    /// Runs a mutation under the writer lock and republishes the snapshot
    /// if the mutation moved the state version. This is the **single
    /// writer**: every admission, revocation, clock advance, and
    /// configuration change goes through here (each is WAL-journaled
    /// before taking effect by the underlying server).
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut CoalitionServer) -> R) -> R {
        let mut server = self.writer.lock();
        let before = server.state_version();
        let out = f(&mut server);
        if server.state_version() != before {
            self.published.publish(DecisionSnapshot::capture(&server));
        }
        out
    }

    /// Read-only access to the underlying server (takes the writer lock;
    /// for inspection, not the decision hot path).
    pub fn read<R>(&self, f: impl FnOnce(&CoalitionServer) -> R) -> R {
        f(&self.writer.lock())
    }

    /// Convenience passthrough: advances the clock through the writer.
    ///
    /// # Errors
    ///
    /// Propagates [`CoalitionServer::advance_clock`] errors.
    pub fn advance_clock(&self, to: Time) -> Result<(), CoalitionError> {
        self.with_writer(|s| s.advance_clock(to))
    }

    /// Decides a request: crypto off-lock against the published snapshot,
    /// serial tail under the writer lock, with commit-time version
    /// validation (see the module docs).
    pub fn decide(&self, req: &JointAccessRequest) -> ServerDecision {
        self.decide_with(req, || {})
    }

    /// Decides using a caller-owned cached [`SnapshotReader`] (saves the
    /// slot lock when the version has not moved).
    pub fn decide_with_reader<'a>(
        &'a self,
        reader: &mut SnapshotReader<'a>,
        req: &JointAccessRequest,
    ) -> ServerDecision {
        self.decide_inner(req, Some(reader), &mut || {})
    }

    /// Test hook variant of [`ConcurrentServer::decide`]: `mid_crypto` runs
    /// after the crypto phase of the first attempt, **before** the writer
    /// lock is taken — the window in which a concurrent admission must be
    /// able to proceed. Used by the regression test for the
    /// "no writer lock across the crypto phase" invariant.
    #[doc(hidden)]
    pub fn decide_with(
        &self,
        req: &JointAccessRequest,
        mut mid_crypto: impl FnMut(),
    ) -> ServerDecision {
        self.decide_inner(req, None, &mut mid_crypto)
    }

    fn decide_inner<'a>(
        &'a self,
        req: &JointAccessRequest,
        reader: Option<&mut SnapshotReader<'a>>,
        mid_crypto: &mut dyn FnMut(),
    ) -> ServerDecision {
        let instruments = self.gate_metrics.lock().clone();
        // Admission gate: reject at the door, never queue. The rejection
        // path touches no lock a decision in progress could be holding.
        let Some(_permit) = self.try_enter(instruments.as_ref()) else {
            return self.shed_unlocked(
                req,
                ShedReason::Overloaded,
                "in-flight limit reached: request rejected at admission, not queued",
                instruments.as_ref(),
            );
        };
        let mut own_reader;
        let reader = match reader {
            Some(r) => r,
            None => {
                own_reader = self.reader();
                &mut own_reader
            }
        };
        for attempt in 0..MAX_OPTIMISTIC_ATTEMPTS {
            // Pre-crypto deadline gate: don't spend signature work on a
            // request whose budget is already gone.
            if req.deadline.is_some_and(|d| Instant::now() >= d) {
                return self.shed_unlocked(
                    req,
                    ShedReason::DeadlineExceeded,
                    "deadline budget exhausted before the crypto phase",
                    instruments.as_ref(),
                );
            }
            let snapshot = reader.load();
            // Lock-free phase: recency + crypto against the immutable
            // snapshot. No writer can be blocked by this work.
            let outcome = snapshot.evaluate(req);
            if attempt == 0 {
                mid_crypto();
            }
            // Pre-commit deadline gate: the answer would land after the
            // caller stopped caring — don't take the writer lock for it.
            if req.deadline.is_some_and(|d| Instant::now() >= d) {
                return self.shed_unlocked(
                    req,
                    ShedReason::DeadlineExceeded,
                    "deadline budget exhausted before the commit phase",
                    instruments.as_ref(),
                );
            }
            let mut server = self.writer.lock();
            if server.state_version() == snapshot.version {
                // Nothing changed since the snapshot: committing now is
                // byte-identical to serial execution at this version.
                let decision = server.finish_decision(req, outcome);
                // The tail itself may admit request certificates (bumping
                // the engine epoch); republish so the next reader sees it.
                if server.state_version() != snapshot.version {
                    self.published.publish(DecisionSnapshot::capture(&server));
                }
                return decision;
            }
            // A mutation landed in between; if the writer republished we
            // retry against the fresh snapshot off-lock. (The writer always
            // republishes on version change, so the reader will observe a
            // new version.)
            drop(server);
        }
        // Contention fallback: run the whole pipeline serially under the
        // lock — always sound, never starved.
        let mut server = self.writer.lock();
        let before = server.state_version();
        let decision = server.handle_request(req);
        if server.state_version() != before {
            self.published.publish(DecisionSnapshot::capture(&server));
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CoalitionBuilder;
    use jaap_core::protocol::Operation;

    fn coalition(seed: u64) -> crate::scenario::Coalition {
        CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(seed)
            .build()
            .expect("build")
    }

    #[test]
    fn decide_matches_serial_server() {
        let mut serial = coalition(41);
        let mut conc = coalition(41);
        let reqs: Vec<_> = [
            (20, vec!["User_D1", "User_D2"]),
            (21, vec!["User_D3"]),
            (22, vec!["User_D2", "User_D3"]),
        ]
        .into_iter()
        .map(|(t, signers)| {
            serial.advance_time(Time(t)).expect("clock");
            conc.advance_time(Time(t)).expect("clock");
            conc.build_request(&signers, Operation::new("write", "Object O"))
                .expect("request")
        })
        .collect();
        // Requests were built at increasing times; decide them all at the
        // final clock on both sides.
        let server = ConcurrentServer::new(conc.into_server());
        for req in &reqs {
            let e = serial.server_mut().handle_request(req);
            let g = server.decide(req);
            assert_eq!(g.granted, e.granted);
            assert_eq!(g.detail, e.detail);
            assert_eq!(g.signature_checks, e.signature_checks);
            assert_eq!(g.axiom_applications, e.axiom_applications);
        }
        let version = server.read(|s| s.object("Object O").expect("obj").version);
        assert_eq!(
            version,
            serial.server().object("Object O").expect("obj").version
        );
    }

    #[test]
    fn mutations_republish_and_decisions_see_new_epoch() {
        let c = coalition(42);
        let req = c
            .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
            .expect("request");
        let server = ConcurrentServer::new(c.into_server());
        let v0 = server.snapshot().version();
        server.advance_clock(Time(25)).expect("clock");
        let snap = server.snapshot();
        assert!(
            snap.version() > v0,
            "clock advance must publish a new epoch"
        );
        assert_eq!(snap.at(), Time(25));
        // A decision that admits new certificate bodies republishes too.
        let d = server.decide(&req);
        assert!(d.granted);
        assert!(server.snapshot().version() > snap.version());
        // Deciding the same request again changes nothing (bodies known).
        let v_stable = server.snapshot().version();
        let _ = server.decide(&req);
        assert_eq!(server.snapshot().version(), v_stable);
    }

    #[test]
    fn reader_refreshes_only_on_version_move() {
        let c = ConcurrentServer::new(CoalitionServer::new("P", TrustStore::new(Time(0))));
        let mut reader = c.reader();
        let s1 = reader.load();
        let s2 = reader.load();
        assert!(Arc::ptr_eq(&s1, &s2));
        c.advance_clock(Time(5)).expect("clock");
        let s3 = reader.load();
        assert!(!Arc::ptr_eq(&s2, &s3));
        assert_eq!(s3.at(), Time(5));
        assert!(s3.version() > s2.version());
    }
}
