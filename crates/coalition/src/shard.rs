//! `ShardedCoalition`: a router partitioning independent coalition
//! namespaces across N single-writer shards (DESIGN §5g).
//!
//! Each shard is a [`ConcurrentServer`] owning a **disjoint** object/group
//! namespace; the router keeps an object → shard map built from the shards'
//! registered objects (and refuses overlapping namespaces — the soundness
//! condition for sharding: belief lookups filter by group/key, so decisions
//! about one namespace never depend on another's beliefs). Decision
//! requests route to the owning shard and run on its lock-free snapshot
//! path; coalition-wide events — clock advances, revocations, CRLs — fan
//! out to every shard through each shard's single writer.
//!
//! A shard presented with an artifact from a foreign trust root rejects it
//! exactly as its serial twin would (the signature does not verify against
//! its anchors); fan-out reports per-shard outcomes rather than failing the
//! whole operation.

use std::collections::HashMap;
use std::sync::Arc;

use jaap_core::syntax::Time;
use jaap_obs::{Counter, MetricsRegistry};
use jaap_pki::attribute::AttributeRevocation;
use jaap_pki::{Crl, IdentityRevocation};

use crate::concurrent::ConcurrentServer;
use crate::pool::WorkerPool;
use crate::request::JointAccessRequest;
use crate::server::{CoalitionServer, ServerDecision};
use crate::CoalitionError;

/// Per-shard instruments (`server.shard.{i}.*`), resolved once when a
/// registry is attached.
#[derive(Debug)]
struct ShardInstruments {
    decisions: Arc<Counter>,
    granted: Arc<Counter>,
    fanout: Arc<Counter>,
}

/// The sharded front-end: N concurrent shards plus the routing map.
#[derive(Debug)]
pub struct ShardedCoalition {
    shards: Vec<Arc<ConcurrentServer>>,
    /// Object name → owning shard.
    routes: HashMap<String, usize>,
    instruments: Vec<ShardInstruments>,
}

impl ShardedCoalition {
    /// Builds the router over pre-built shard servers, indexing each
    /// shard's registered objects.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] when two shards claim the same object
    /// name (namespaces must be disjoint) or no shards are given.
    pub fn new(servers: Vec<CoalitionServer>) -> Result<Self, CoalitionError> {
        if servers.is_empty() {
            return Err(CoalitionError::Config(
                "a sharded coalition needs at least one shard".into(),
            ));
        }
        let mut routes = HashMap::new();
        for (i, server) in servers.iter().enumerate() {
            for obj in server.objects() {
                if let Some(prev) = routes.insert(obj.name.clone(), i) {
                    return Err(CoalitionError::Config(format!(
                        "object {:?} owned by shards {prev} and {i}: shard namespaces must be disjoint",
                        obj.name
                    )));
                }
            }
        }
        Ok(ShardedCoalition {
            shards: servers
                .into_iter()
                .map(|s| Arc::new(ConcurrentServer::new(s)))
                .collect(),
            routes,
            instruments: Vec::new(),
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `object`, falling back to a stable hash for
    /// unregistered names (the decision will then be a clean
    /// "unknown object" denial on that shard).
    #[must_use]
    pub fn shard_for(&self, object: &str) -> usize {
        self.routes
            .get(object)
            .copied()
            .unwrap_or_else(|| (fnv1a(object.as_bytes()) as usize) % self.shards.len())
    }

    /// Direct access to shard `i`'s concurrent server.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn shard(&self, i: usize) -> &Arc<ConcurrentServer> {
        &self.shards[i]
    }

    /// Registers an object on shard `i` and in the routing map.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an out-of-range shard or an object
    /// name already owned by another shard.
    pub fn add_object(
        &mut self,
        shard: usize,
        name: impl Into<String>,
        acl: jaap_core::protocol::Acl,
    ) -> Result<(), CoalitionError> {
        let name = name.into();
        if shard >= self.shards.len() {
            return Err(CoalitionError::Config(format!(
                "no shard {shard} (have {})",
                self.shards.len()
            )));
        }
        if let Some(&owner) = self.routes.get(&name) {
            if owner != shard {
                return Err(CoalitionError::Config(format!(
                    "object {name:?} already owned by shard {owner}"
                )));
            }
        }
        self.shards[shard].with_writer(|s| s.add_object(name.clone(), acl))?;
        self.routes.insert(name, shard);
        Ok(())
    }

    /// Attaches a persistent cert/CRL/ACL store to shard `i` through its
    /// single writer (store-before-effect composes with the shard's
    /// WAL-before-effect; the attach backfills existing ACL rows and
    /// republishes the shard's snapshot so readers see the store handle).
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an out-of-range shard;
    /// [`CoalitionError::Store`] when the backfill fails.
    pub fn attach_cert_store(
        &mut self,
        shard: usize,
        store: jaap_store::CertStore,
    ) -> Result<(), CoalitionError> {
        if shard >= self.shards.len() {
            return Err(CoalitionError::Config(format!(
                "no shard {shard} (have {})",
                self.shards.len()
            )));
        }
        self.shards[shard].with_writer(|s| s.attach_cert_store(store))
    }

    /// Attaches per-shard instruments `server.shard.{i}.{decisions,granted,
    /// fanout_admissions}` to the router and a scoped `shard.{i}.`-prefixed
    /// registry view to each shard server (so the full `server.*` pipeline
    /// instruments exist once per shard).
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.instruments = (0..self.shards.len())
            .map(|i| ShardInstruments {
                decisions: registry.counter(&format!("server.shard.{i}.decisions")),
                granted: registry.counter(&format!("server.shard.{i}.granted")),
                fanout: registry.counter(&format!("server.shard.{i}.fanout_admissions")),
            })
            .collect();
        for (i, shard) in self.shards.iter().enumerate() {
            let scoped = registry.scoped(&format!("shard.{i}."));
            shard.with_writer(|s| s.set_metrics(Some(&scoped)));
            // Same scoped registry for the lock-free gate path, so the
            // shard's `server.shed.*` counters aggregate both paths.
            shard.set_gate_metrics(&scoped);
        }
    }

    /// Caps concurrent in-flight decisions **per shard**; excess requests
    /// are rejected with typed [`crate::server::ShedReason::Overloaded`]
    /// decisions, never queued. `0` disables the gate.
    pub fn set_inflight_limit(&self, per_shard: usize) {
        for shard in &self.shards {
            shard.set_inflight_limit(per_shard);
        }
    }

    /// Routes one decision to the owning shard's lock-free snapshot path.
    #[must_use]
    pub fn decide(&self, req: &JointAccessRequest) -> ServerDecision {
        let i = self.shard_for(&req.operation.object);
        let decision = self.shards[i].decide(req);
        if let Some(m) = self.instruments.get(i) {
            m.decisions.inc();
            if decision.granted {
                m.granted.inc();
            }
        }
        decision
    }

    /// Decides a batch across up to `workers` pool workers; requests for
    /// different shards proceed fully independently, requests for the same
    /// shard parallelize their crypto phases and serialize only the commit
    /// tail. Results come back in request order.
    #[must_use]
    pub fn decide_batch(
        &self,
        requests: &[JointAccessRequest],
        workers: usize,
    ) -> Vec<ServerDecision> {
        WorkerPool::global().run_indexed(requests.len(), workers, |i| self.decide(&requests[i]))
    }

    /// Fans a clock advance to every shard.
    ///
    /// # Errors
    ///
    /// The first shard error, after attempting every shard (clocks must
    /// not diverge silently).
    pub fn advance_clock(&self, to: Time) -> Result<(), CoalitionError> {
        let mut first_err = None;
        for shard in &self.shards {
            if let Err(e) = shard.advance_clock(to) {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Fans an attribute revocation to every shard; per-shard outcomes
    /// (a shard with a foreign trust root rejects the artifact, as its
    /// serial twin would).
    pub fn admit_attribute_revocation(
        &self,
        rev: &AttributeRevocation,
    ) -> Vec<Result<(), CoalitionError>> {
        self.fan_out(|s| s.admit_attribute_revocation(rev))
    }

    /// Fans an identity revocation to every shard (per-shard outcomes).
    pub fn admit_identity_revocation(
        &self,
        rev: &IdentityRevocation,
    ) -> Vec<Result<(), CoalitionError>> {
        self.fan_out(|s| s.admit_identity_revocation(rev))
    }

    /// Fans a CRL to every shard (per-shard outcomes).
    pub fn admit_crl(&self, crl: &Crl) -> Vec<Result<(), CoalitionError>> {
        self.fan_out(|s| s.admit_crl(crl))
    }

    /// Runs `f` on every shard's writer in shard order, recording fan-out
    /// instruments.
    fn fan_out<R>(&self, mut f: impl FnMut(&mut CoalitionServer) -> R) -> Vec<R> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                if let Some(m) = self.instruments.get(i) {
                    m.fanout.inc();
                }
                shard.with_writer(&mut f)
            })
            .collect()
    }

    /// Tears the router down into its shard servers (shard order).
    #[must_use]
    pub fn into_servers(self) -> Vec<CoalitionServer> {
        self.shards
            .into_iter()
            .map(|shard| {
                Arc::try_unwrap(shard)
                    .expect("no outstanding shard handles")
                    .into_inner()
            })
            .collect()
    }
}

/// FNV-1a, the stable fallback route for unregistered object names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_core::protocol::Acl;
    use jaap_core::syntax::GroupId;
    use jaap_pki::TrustStore;

    fn bare_server(name: &str, objects: &[&str]) -> CoalitionServer {
        let mut s = CoalitionServer::new(name, TrustStore::new(Time(0)));
        for obj in objects {
            let mut acl = Acl::new();
            acl.permit(GroupId::new("G"), "write");
            s.add_object(*obj, acl).expect("fresh server, no journal");
        }
        s
    }

    #[test]
    fn routing_follows_object_ownership() {
        let router = ShardedCoalition::new(vec![
            bare_server("P0", &["A", "B"]),
            bare_server("P1", &["C"]),
        ])
        .expect("router");
        assert_eq!(router.shards(), 2);
        assert_eq!(router.shard_for("A"), 0);
        assert_eq!(router.shard_for("B"), 0);
        assert_eq!(router.shard_for("C"), 1);
        // Unknown objects get a stable fallback shard.
        let f1 = router.shard_for("nope");
        let f2 = router.shard_for("nope");
        assert_eq!(f1, f2);
        assert!(f1 < 2);
    }

    #[test]
    fn overlapping_namespaces_are_rejected() {
        let err = ShardedCoalition::new(vec![bare_server("P0", &["A"]), bare_server("P1", &["A"])]);
        assert!(matches!(err, Err(CoalitionError::Config(_))));
    }

    #[test]
    fn add_object_registers_route_and_rejects_theft() {
        let mut router =
            ShardedCoalition::new(vec![bare_server("P0", &["A"]), bare_server("P1", &[])])
                .expect("router");
        let mut acl = Acl::new();
        acl.permit(GroupId::new("G"), "write");
        router.add_object(1, "D", acl.clone()).expect("add");
        assert_eq!(router.shard_for("D"), 1);
        assert!(router.add_object(0, "D", acl.clone()).is_err());
        assert!(router.add_object(7, "E", acl).is_err());
    }

    #[test]
    fn clock_fanout_reaches_every_shard() {
        let router =
            ShardedCoalition::new(vec![bare_server("P0", &["A"]), bare_server("P1", &["B"])])
                .expect("router");
        router.advance_clock(Time(9)).expect("clock");
        for i in 0..2 {
            assert_eq!(router.shard(i).read(|s| s.now()), Time(9));
        }
        let servers = router.into_servers();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].name(), "P0");
    }
}
