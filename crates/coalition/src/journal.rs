//! Write-ahead journal for the coalition server's belief-changing events.
//!
//! Durability model: every event that changes what the server *believes* or
//! how it *decides* — certificate/CRL/revocation admission, ACL and object
//! mutation, clock advance, configuration change, decision bookkeeping — is
//! encoded as a [`JournalRecord`] and appended to a [`jaap_wal::Journal`]
//! **before** the event takes effect in memory. After a crash,
//! [`crate::server::CoalitionServer::recover`] replays the log and rebuilds
//! a server whose every subsequent decision is identical to one that never
//! crashed.
//!
//! Records are encoded with the same canonical TLV scheme certificates are
//! signed over ([`jaap_pki::encoding`]): a record is
//! `domain || tag(u64) || fields…`, and whole certificates travel with
//! their signatures so recovery re-verifies them instead of trusting the
//! log. The framing layer beneath ([`jaap_wal::frame`]) adds per-record
//! checksums, so a torn or bit-flipped tail is detected and truncated —
//! never replayed.
//!
//! Two record kinds exist only in snapshots ([`JournalRecord::ObjectState`],
//! [`JournalRecord::ReplaySeen`]): a snapshot rewrite compacts the decision
//! history into final object states plus audit/replay rows, while
//! *admission-class* records (certificates, revocations, CRLs) are retained
//! verbatim with their original clock interleaving — beliefs cannot be
//! serialized (their proofs hold interned terms), so they are always
//! re-derived from the original signed artifacts.

use jaap_core::certs::Validity;
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::rsa::{RsaPublicKey, RsaSignature};
use jaap_pki::attribute::{
    AttributeCertificate, AttributeRevocation, ThresholdAttributeCertificate, ThresholdSubject,
};
use jaap_pki::encoding::{Decoder, Encoder};
use jaap_pki::{Crl, CrlEntry, IdentityCertificate, IdentityRevocation};
use jaap_wal::{Journal, JournalStats, JournalStore};

use crate::CoalitionError;

/// Domain-separation label for journal records.
const DOMAIN: &str = "jaap-journal-record-v1";

/// Which server configuration knob a [`JournalRecord::Config`] sets.
///
/// Values are encoded as `i64`: booleans as 0/1, `None` capacities as -1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigKind {
    /// [`crate::server::CoalitionServer::set_logic_checking`].
    LogicChecking,
    /// [`crate::server::CoalitionServer::set_replay_protection`].
    ReplayProtection,
    /// [`crate::server::CoalitionServer::set_replay_protection_capacity`].
    ReplayCapacity,
    /// [`crate::server::CoalitionServer::set_audit_capacity`].
    AuditCapacity,
    /// [`crate::server::CoalitionServer::set_verification_cache`].
    VerifyCache,
    /// [`crate::server::CoalitionServer::set_derivation_memo`].
    DerivationMemo,
    /// [`crate::server::CoalitionServer::set_revocation_recency`].
    RecencyWindow,
    /// [`crate::server::CoalitionServer::set_derivation_memo_capacity`].
    DerivationMemoCapacity,
    /// [`crate::server::CoalitionServer::set_crypto_precomp`].
    CryptoPrecomp,
    /// [`crate::server::CoalitionServer::set_batch_verify`].
    BatchVerify,
    /// [`crate::server::CoalitionServer::set_verify_cache_capacity`].
    VerifyCacheCapacity,
}

impl ConfigKind {
    fn code(self) -> u64 {
        match self {
            ConfigKind::LogicChecking => 1,
            ConfigKind::ReplayProtection => 2,
            ConfigKind::ReplayCapacity => 3,
            ConfigKind::AuditCapacity => 4,
            ConfigKind::VerifyCache => 5,
            ConfigKind::DerivationMemo => 6,
            ConfigKind::RecencyWindow => 7,
            ConfigKind::DerivationMemoCapacity => 8,
            ConfigKind::CryptoPrecomp => 9,
            ConfigKind::BatchVerify => 10,
            ConfigKind::VerifyCacheCapacity => 11,
        }
    }

    fn from_code(code: u64) -> Result<Self, CoalitionError> {
        Ok(match code {
            1 => ConfigKind::LogicChecking,
            2 => ConfigKind::ReplayProtection,
            3 => ConfigKind::ReplayCapacity,
            4 => ConfigKind::AuditCapacity,
            5 => ConfigKind::VerifyCache,
            6 => ConfigKind::DerivationMemo,
            7 => ConfigKind::RecencyWindow,
            8 => ConfigKind::DerivationMemoCapacity,
            9 => ConfigKind::CryptoPrecomp,
            10 => ConfigKind::BatchVerify,
            11 => ConfigKind::VerifyCacheCapacity,
            other => {
                return Err(CoalitionError::Journal(format!(
                    "unknown config kind {other}"
                )))
            }
        })
    }
}

/// The durable form of one audit-log line plus its side effects: whether
/// the decision bumped an object version and, with replay protection on,
/// which request digest it answered. Replaying a `Decision` record
/// reconstructs the audit entry, the version counter, and the replay
/// window without re-running any cryptography or logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Server time of the decision.
    pub at: Time,
    /// The signers named in the request.
    pub principals: Vec<String>,
    /// The operation decided.
    pub operation: Operation,
    /// Whether access was granted.
    pub granted: bool,
    /// Denial detail (empty when granted).
    pub detail: String,
    /// Signature checks served from the verification cache.
    pub cached_checks: usize,
    /// Signing-session retry trace, when the decision followed a degraded
    /// networked signing attempt.
    pub retry_trace: Option<String>,
    /// Axiom applications spent.
    pub axioms: usize,
    /// RSA signature verifications actually performed.
    pub signature_checks: usize,
    /// True for an unavailability denial (quorum could not assemble).
    pub unavailable: bool,
    /// True when the decision incremented the object's write version.
    pub version_bump: bool,
    /// The request digest remembered by replay protection, if any.
    pub replay_digest: Option<String>,
}

/// A compacted replay-window entry: the fields of a remembered
/// [`crate::server::ServerDecision`] that survive a snapshot (derivations
/// and encrypted responses do not — a replayed hit after recovery carries
/// the same verdict and counters, minus the proof object).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRecord {
    /// The request digest.
    pub digest: String,
    /// Whether access was granted.
    pub granted: bool,
    /// Denial detail when refused.
    pub detail: Option<String>,
    /// Axiom applications spent.
    pub axioms: usize,
    /// RSA signature verifications performed.
    pub signature_checks: usize,
    /// Checks served from the verification cache.
    pub cached_signature_checks: usize,
    /// True for an unavailability denial.
    pub unavailable: bool,
}

/// One belief-changing event, in its durable form.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// The server clock moved forward.
    ClockAdvance(Time),
    /// A configuration knob changed.
    Config(ConfigKind, i64),
    /// An object was registered with its initial ACL.
    ObjectAdded {
        /// Object name.
        name: String,
        /// Initial ACL.
        acl: Acl,
    },
    /// An object's ACL was replaced.
    AclSet {
        /// Object name.
        name: String,
        /// The new ACL.
        acl: Acl,
    },
    /// An object's contents were replaced.
    ContentSet {
        /// Object name.
        name: String,
        /// The new contents.
        content: Vec<u8>,
    },
    /// An identity revocation was admitted.
    IdentityRevocation(IdentityRevocation),
    /// An attribute revocation was admitted.
    AttributeRevocation(AttributeRevocation),
    /// A CRL was admitted.
    Crl(Crl),
    /// A request's certificates changed the belief state (first admission
    /// of at least one certificate body). The raw signed certificates are
    /// stored so recovery re-verifies and re-admits them in the original
    /// order.
    RequestCerts {
        /// Identity certificates, request order.
        identity: Vec<IdentityCertificate>,
        /// Threshold attribute certificates, request order.
        threshold: Vec<ThresholdAttributeCertificate>,
        /// Single-subject attribute certificates, request order.
        attribute: Vec<AttributeCertificate>,
    },
    /// A decision was reached (audit entry + version bump + replay window).
    Decision(DecisionRecord),
    /// Snapshot only: an object's full current state.
    ObjectState {
        /// Object name.
        name: String,
        /// Current ACL.
        acl: Acl,
        /// Current write version.
        version: u64,
        /// Current contents.
        content: Vec<u8>,
    },
    /// Snapshot only: a remembered replay-window decision.
    ReplaySeen(ReplayRecord),
}

impl JournalRecord {
    /// True for records that re-admit signed artifacts into the belief
    /// engine on replay; snapshots retain these verbatim (beliefs cannot
    /// be serialized, only re-derived).
    #[must_use]
    pub fn is_admission(&self) -> bool {
        matches!(
            self,
            JournalRecord::IdentityRevocation(_)
                | JournalRecord::AttributeRevocation(_)
                | JournalRecord::Crl(_)
                | JournalRecord::RequestCerts { .. }
        )
    }

    fn tag(&self) -> u64 {
        match self {
            JournalRecord::ClockAdvance(_) => 1,
            JournalRecord::Config(..) => 2,
            JournalRecord::ObjectAdded { .. } => 3,
            JournalRecord::AclSet { .. } => 4,
            JournalRecord::ContentSet { .. } => 5,
            JournalRecord::IdentityRevocation(_) => 6,
            JournalRecord::AttributeRevocation(_) => 7,
            JournalRecord::Crl(_) => 8,
            JournalRecord::RequestCerts { .. } => 9,
            JournalRecord::Decision(_) => 10,
            JournalRecord::ObjectState { .. } => 11,
            JournalRecord::ReplaySeen(_) => 12,
        }
    }

    /// Canonical bytes for this record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new(DOMAIN);
        e.put_u64(self.tag());
        match self {
            JournalRecord::ClockAdvance(t) => {
                e.put_i64(t.0);
            }
            JournalRecord::Config(kind, value) => {
                e.put_u64(kind.code());
                e.put_i64(*value);
            }
            JournalRecord::ObjectAdded { name, acl } | JournalRecord::AclSet { name, acl } => {
                e.put_str(name);
                put_acl(&mut e, acl);
            }
            JournalRecord::ContentSet { name, content } => {
                e.put_str(name);
                e.put_bytes(content);
            }
            JournalRecord::IdentityRevocation(rev) => {
                e.put_str(&rev.issuer);
                e.put_str(&rev.subject);
                put_key(&mut e, &rev.subject_key);
                e.put_i64(rev.revoked_from.0);
                e.put_i64(rev.timestamp.0);
                put_sig(&mut e, &rev.signature);
            }
            JournalRecord::AttributeRevocation(rev) => {
                e.put_str(&rev.issuer);
                put_subject(&mut e, &rev.subject);
                e.put_str(rev.group.as_str());
                e.put_i64(rev.revoked_from.0);
                e.put_i64(rev.timestamp.0);
                put_sig(&mut e, &rev.signature);
            }
            JournalRecord::Crl(crl) => {
                e.put_str(&crl.issuer);
                e.put_u64(crl.sequence);
                e.put_i64(crl.timestamp.0);
                e.put_list(crl.entries.len());
                for entry in &crl.entries {
                    put_subject(&mut e, &entry.subject);
                    e.put_str(entry.group.as_str());
                    e.put_i64(entry.revoked_from.0);
                }
                put_sig(&mut e, &crl.signature);
            }
            JournalRecord::RequestCerts {
                identity,
                threshold,
                attribute,
            } => {
                e.put_list(identity.len());
                for cert in identity {
                    put_identity_cert(&mut e, cert);
                }
                e.put_list(threshold.len());
                for cert in threshold {
                    put_threshold_cert(&mut e, cert);
                }
                e.put_list(attribute.len());
                for cert in attribute {
                    put_attribute_cert(&mut e, cert);
                }
            }
            JournalRecord::Decision(d) => {
                e.put_i64(d.at.0);
                e.put_list(d.principals.len());
                for p in &d.principals {
                    e.put_str(p);
                }
                e.put_str(&d.operation.action);
                e.put_str(&d.operation.object);
                e.put_u64(u64::from(d.granted));
                e.put_str(&d.detail);
                e.put_u64(d.cached_checks as u64);
                put_opt_str(&mut e, d.retry_trace.as_deref());
                e.put_u64(d.axioms as u64);
                e.put_u64(d.signature_checks as u64);
                e.put_u64(u64::from(d.unavailable));
                e.put_u64(u64::from(d.version_bump));
                put_opt_str(&mut e, d.replay_digest.as_deref());
            }
            JournalRecord::ObjectState {
                name,
                acl,
                version,
                content,
            } => {
                e.put_str(name);
                put_acl(&mut e, acl);
                e.put_u64(*version);
                e.put_bytes(content);
            }
            JournalRecord::ReplaySeen(r) => {
                e.put_str(&r.digest);
                e.put_u64(u64::from(r.granted));
                put_opt_str(&mut e, r.detail.as_deref());
                e.put_u64(r.axioms as u64);
                e.put_u64(r.signature_checks as u64);
                e.put_u64(r.cached_signature_checks as u64);
                e.put_u64(u64::from(r.unavailable));
            }
        }
        e.finish()
    }

    /// Decodes a record from its canonical bytes.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] for any malformed or unknown record —
    /// recovery treats this as corruption, not as something to skip.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoalitionError> {
        let mut d = Decoder::new(bytes, DOMAIN).map_err(journal_err)?;
        let tag = d.take_u64().map_err(journal_err)?;
        let record = match tag {
            1 => JournalRecord::ClockAdvance(take_time(&mut d)?),
            2 => {
                let kind = ConfigKind::from_code(d.take_u64().map_err(journal_err)?)?;
                let value = d.take_i64().map_err(journal_err)?;
                JournalRecord::Config(kind, value)
            }
            3 | 4 => {
                let name = d.take_str().map_err(journal_err)?;
                let acl = take_acl(&mut d)?;
                if tag == 3 {
                    JournalRecord::ObjectAdded { name, acl }
                } else {
                    JournalRecord::AclSet { name, acl }
                }
            }
            5 => JournalRecord::ContentSet {
                name: d.take_str().map_err(journal_err)?,
                content: d.take_bytes().map_err(journal_err)?,
            },
            6 => JournalRecord::IdentityRevocation(IdentityRevocation {
                issuer: d.take_str().map_err(journal_err)?,
                subject: d.take_str().map_err(journal_err)?,
                subject_key: take_key(&mut d)?,
                revoked_from: take_time(&mut d)?,
                timestamp: take_time(&mut d)?,
                signature: take_sig(&mut d)?,
            }),
            7 => JournalRecord::AttributeRevocation(AttributeRevocation {
                issuer: d.take_str().map_err(journal_err)?,
                subject: take_subject(&mut d)?,
                group: GroupId::new(&d.take_str().map_err(journal_err)?),
                revoked_from: take_time(&mut d)?,
                timestamp: take_time(&mut d)?,
                signature: take_sig(&mut d)?,
            }),
            8 => {
                let issuer = d.take_str().map_err(journal_err)?;
                let sequence = d.take_u64().map_err(journal_err)?;
                let timestamp = take_time(&mut d)?;
                let count = d.take_list().map_err(journal_err)?;
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    entries.push(CrlEntry {
                        subject: take_subject(&mut d)?,
                        group: GroupId::new(&d.take_str().map_err(journal_err)?),
                        revoked_from: take_time(&mut d)?,
                    });
                }
                JournalRecord::Crl(Crl {
                    issuer,
                    sequence,
                    timestamp,
                    entries,
                    signature: take_sig(&mut d)?,
                })
            }
            9 => {
                let n = d.take_list().map_err(journal_err)?;
                let mut identity = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    identity.push(take_identity_cert(&mut d)?);
                }
                let n = d.take_list().map_err(journal_err)?;
                let mut threshold = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    threshold.push(take_threshold_cert(&mut d)?);
                }
                let n = d.take_list().map_err(journal_err)?;
                let mut attribute = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    attribute.push(take_attribute_cert(&mut d)?);
                }
                JournalRecord::RequestCerts {
                    identity,
                    threshold,
                    attribute,
                }
            }
            10 => {
                let at = take_time(&mut d)?;
                let count = d.take_list().map_err(journal_err)?;
                let mut principals = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    principals.push(d.take_str().map_err(journal_err)?);
                }
                let action = d.take_str().map_err(journal_err)?;
                let object = d.take_str().map_err(journal_err)?;
                JournalRecord::Decision(DecisionRecord {
                    at,
                    principals,
                    operation: Operation::new(action, object),
                    granted: take_bool(&mut d)?,
                    detail: d.take_str().map_err(journal_err)?,
                    cached_checks: take_usize(&mut d)?,
                    retry_trace: take_opt_str(&mut d)?,
                    axioms: take_usize(&mut d)?,
                    signature_checks: take_usize(&mut d)?,
                    unavailable: take_bool(&mut d)?,
                    version_bump: take_bool(&mut d)?,
                    replay_digest: take_opt_str(&mut d)?,
                })
            }
            11 => JournalRecord::ObjectState {
                name: d.take_str().map_err(journal_err)?,
                acl: take_acl(&mut d)?,
                version: d.take_u64().map_err(journal_err)?,
                content: d.take_bytes().map_err(journal_err)?,
            },
            12 => JournalRecord::ReplaySeen(ReplayRecord {
                digest: d.take_str().map_err(journal_err)?,
                granted: take_bool(&mut d)?,
                detail: take_opt_str(&mut d)?,
                axioms: take_usize(&mut d)?,
                signature_checks: take_usize(&mut d)?,
                cached_signature_checks: take_usize(&mut d)?,
                unavailable: take_bool(&mut d)?,
            }),
            other => {
                return Err(CoalitionError::Journal(format!(
                    "unknown record tag {other}"
                )))
            }
        };
        if !d.is_empty() {
            return Err(CoalitionError::Journal(
                "trailing bytes after record".into(),
            ));
        }
        Ok(record)
    }
}

fn journal_err(e: jaap_pki::PkiError) -> CoalitionError {
    CoalitionError::Journal(format!("undecodable record: {e}"))
}

fn put_key(e: &mut Encoder, key: &RsaPublicKey) {
    e.put_bytes(&key.modulus().to_bytes_be());
    e.put_bytes(&key.exponent().to_bytes_be());
}

fn take_key(d: &mut Decoder<'_>) -> Result<RsaPublicKey, CoalitionError> {
    let n = jaap_bigint::Nat::from_bytes_be(&d.take_bytes().map_err(journal_err)?);
    let exp = jaap_bigint::Nat::from_bytes_be(&d.take_bytes().map_err(journal_err)?);
    Ok(RsaPublicKey::new(n, exp))
}

fn put_sig(e: &mut Encoder, sig: &RsaSignature) {
    e.put_bytes(&sig.value().to_bytes_be());
}

fn take_sig(d: &mut Decoder<'_>) -> Result<RsaSignature, CoalitionError> {
    Ok(RsaSignature::from_value(jaap_bigint::Nat::from_bytes_be(
        &d.take_bytes().map_err(journal_err)?,
    )))
}

fn put_validity(e: &mut Encoder, v: &Validity) {
    e.put_i64(v.begin.0);
    e.put_i64(v.end.0);
}

fn take_validity(d: &mut Decoder<'_>) -> Result<Validity, CoalitionError> {
    let begin = take_time(d)?;
    let end = take_time(d)?;
    if begin > end {
        return Err(CoalitionError::Journal(format!(
            "inverted validity window [{begin:?}, {end:?}]"
        )));
    }
    Ok(Validity { begin, end })
}

fn take_time(d: &mut Decoder<'_>) -> Result<Time, CoalitionError> {
    Ok(Time(d.take_i64().map_err(journal_err)?))
}

fn take_bool(d: &mut Decoder<'_>) -> Result<bool, CoalitionError> {
    Ok(d.take_u64().map_err(journal_err)? != 0)
}

fn take_usize(d: &mut Decoder<'_>) -> Result<usize, CoalitionError> {
    usize::try_from(d.take_u64().map_err(journal_err)?)
        .map_err(|_| CoalitionError::Journal("count overflows usize".into()))
}

fn put_opt_str(e: &mut Encoder, s: Option<&str>) {
    match s {
        Some(s) => {
            e.put_u64(1);
            e.put_str(s);
        }
        None => {
            e.put_u64(0);
        }
    }
}

fn take_opt_str(d: &mut Decoder<'_>) -> Result<Option<String>, CoalitionError> {
    if take_bool(d)? {
        Ok(Some(d.take_str().map_err(journal_err)?))
    } else {
        Ok(None)
    }
}

fn put_subject(e: &mut Encoder, subject: &ThresholdSubject) {
    e.put_u64(subject.m as u64);
    e.put_list(subject.members.len());
    for (name, key) in &subject.members {
        e.put_str(name);
        put_key(e, key);
    }
}

fn take_subject(d: &mut Decoder<'_>) -> Result<ThresholdSubject, CoalitionError> {
    let m = take_usize(d)?;
    let count = d.take_list().map_err(journal_err)?;
    let mut members = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = d.take_str().map_err(journal_err)?;
        members.push((name, take_key(d)?));
    }
    ThresholdSubject::new(members, m)
        .map_err(|e| CoalitionError::Journal(format!("undecodable subject: {e}")))
}

fn put_acl(e: &mut Encoder, acl: &Acl) {
    e.put_list(acl.entries().len());
    for entry in acl.entries() {
        e.put_str(entry.group.as_str());
        e.put_str(&entry.action);
    }
}

fn take_acl(d: &mut Decoder<'_>) -> Result<Acl, CoalitionError> {
    let count = d.take_list().map_err(journal_err)?;
    let mut acl = Acl::new();
    for _ in 0..count {
        let group = GroupId::new(&d.take_str().map_err(journal_err)?);
        let action = d.take_str().map_err(journal_err)?;
        acl.permit(group, action);
    }
    Ok(acl)
}

fn put_identity_cert(e: &mut Encoder, cert: &IdentityCertificate) {
    e.put_str(&cert.issuer);
    e.put_str(&cert.subject);
    put_key(e, &cert.subject_key);
    put_validity(e, &cert.validity);
    e.put_i64(cert.timestamp.0);
    put_sig(e, &cert.signature);
}

fn take_identity_cert(d: &mut Decoder<'_>) -> Result<IdentityCertificate, CoalitionError> {
    Ok(IdentityCertificate {
        issuer: d.take_str().map_err(journal_err)?,
        subject: d.take_str().map_err(journal_err)?,
        subject_key: take_key(d)?,
        validity: take_validity(d)?,
        timestamp: take_time(d)?,
        signature: take_sig(d)?,
    })
}

fn put_threshold_cert(e: &mut Encoder, cert: &ThresholdAttributeCertificate) {
    e.put_str(&cert.issuer);
    put_subject(e, &cert.subject);
    e.put_str(cert.group.as_str());
    put_validity(e, &cert.validity);
    e.put_i64(cert.timestamp.0);
    put_sig(e, &cert.signature);
}

fn take_threshold_cert(
    d: &mut Decoder<'_>,
) -> Result<ThresholdAttributeCertificate, CoalitionError> {
    Ok(ThresholdAttributeCertificate {
        issuer: d.take_str().map_err(journal_err)?,
        subject: take_subject(d)?,
        group: GroupId::new(&d.take_str().map_err(journal_err)?),
        validity: take_validity(d)?,
        timestamp: take_time(d)?,
        signature: take_sig(d)?,
    })
}

fn put_attribute_cert(e: &mut Encoder, cert: &AttributeCertificate) {
    e.put_str(&cert.issuer);
    e.put_str(&cert.subject);
    put_key(e, &cert.subject_key);
    e.put_str(cert.group.as_str());
    put_validity(e, &cert.validity);
    e.put_i64(cert.timestamp.0);
    put_sig(e, &cert.signature);
}

fn take_attribute_cert(d: &mut Decoder<'_>) -> Result<AttributeCertificate, CoalitionError> {
    Ok(AttributeCertificate {
        issuer: d.take_str().map_err(journal_err)?,
        subject: d.take_str().map_err(journal_err)?,
        subject_key: take_key(d)?,
        group: GroupId::new(&d.take_str().map_err(journal_err)?),
        validity: take_validity(d)?,
        timestamp: take_time(d)?,
        signature: take_sig(d)?,
    })
}

/// The server's write-ahead journal: a [`jaap_wal::Journal`] plus the
/// retained admission-class records a snapshot must re-emit (with their
/// original admission times, so recovery replays every belief derivation
/// at the clock it originally ran under).
#[derive(Debug)]
pub struct ServerJournal {
    wal: Journal,
    /// Admission-class records in append order, each with the server time
    /// at which it was admitted.
    admissions: Vec<(Time, JournalRecord)>,
}

impl ServerJournal {
    /// Wraps a store.
    #[must_use]
    pub fn new(store: Box<dyn JournalStore>) -> Self {
        ServerJournal {
            wal: Journal::new(store),
            admissions: Vec::new(),
        }
    }

    /// Encodes and appends one record; admission-class records are also
    /// retained for the next snapshot. Returns the framed length in bytes.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] if the store fails.
    pub fn append(&mut self, at: Time, record: &JournalRecord) -> Result<usize, CoalitionError> {
        let len = self.wal.append(&record.encode())?;
        if record.is_admission() {
            self.admissions.push((at, record.clone()));
        }
        Ok(len)
    }

    /// Replaces the log with a snapshot (`records`, already in replay
    /// order). The retained admissions are preserved — they are part of
    /// every snapshot.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] if the store fails.
    pub fn rewrite(&mut self, records: &[JournalRecord]) -> Result<(), CoalitionError> {
        let payloads: Vec<Vec<u8>> = records.iter().map(JournalRecord::encode).collect();
        self.wal.rewrite(&payloads)?;
        Ok(())
    }

    /// Reads back and decodes the whole log, physically truncating any
    /// torn/corrupt tail. Returns the decoded records plus the replay
    /// report from the framing layer.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] if the store fails or a *checksummed*
    /// record fails to decode (real corruption the frame checksum missed,
    /// or a version mismatch — never silently skipped).
    pub fn replay(&mut self) -> Result<(Vec<JournalRecord>, jaap_wal::Replay), CoalitionError> {
        let replay = self.wal.replay()?;
        let mut records = Vec::with_capacity(replay.records.len());
        for payload in &replay.records {
            records.push(JournalRecord::decode(payload)?);
        }
        Ok((records, replay))
    }

    /// Adopts `admissions` as the retained admission set (used by
    /// recovery, which rebuilds it from the replayed log).
    pub fn set_admissions(&mut self, admissions: Vec<(Time, JournalRecord)>) {
        self.admissions = admissions;
    }

    /// The retained admission-class records with their admission times.
    #[must_use]
    pub fn admissions(&self) -> &[(Time, JournalRecord)] {
        &self.admissions
    }

    /// Sets the primary term stamped into every frame written from now
    /// on (replication provenance; fencing itself acts on message terms).
    pub fn set_term(&mut self, term: u64) {
        self.wal.set_term(term);
    }

    /// The term currently stamped into new frames.
    #[must_use]
    pub fn term(&self) -> u64 {
        self.wal.term()
    }

    /// Framing-layer activity counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.wal.stats()
    }

    /// Current log length in bytes.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] if the store fails.
    pub fn len_bytes(&self) -> Result<u64, CoalitionError> {
        Ok(self.wal.store_len()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_bigint::Nat;
    use jaap_wal::MemStore;

    fn key(n: u64) -> RsaPublicKey {
        RsaPublicKey::new(Nat::from(n), Nat::from(65537u64))
    }

    fn sig(v: u64) -> RsaSignature {
        RsaSignature::from_value(Nat::from(v))
    }

    fn subject() -> ThresholdSubject {
        ThresholdSubject::new(vec![("U1".into(), key(77)), ("U2".into(), key(91))], 2)
            .expect("subject")
    }

    fn sample_records() -> Vec<JournalRecord> {
        let mut acl = Acl::new();
        acl.permit(GroupId::new("CG"), "write");
        acl.permit(GroupId::new("CG"), "read");
        vec![
            JournalRecord::ClockAdvance(Time(42)),
            JournalRecord::Config(ConfigKind::ReplayCapacity, 128),
            JournalRecord::Config(ConfigKind::DerivationMemoCapacity, -1),
            JournalRecord::Config(ConfigKind::CryptoPrecomp, 1),
            JournalRecord::Config(ConfigKind::BatchVerify, 1),
            JournalRecord::ObjectAdded {
                name: "Object O".into(),
                acl: acl.clone(),
            },
            JournalRecord::AclSet {
                name: "Object O".into(),
                acl: acl.clone(),
            },
            JournalRecord::ContentSet {
                name: "Object O".into(),
                content: vec![1, 2, 3],
            },
            JournalRecord::IdentityRevocation(IdentityRevocation {
                issuer: "CA1".into(),
                subject: "U1".into(),
                subject_key: key(77),
                revoked_from: Time(30),
                timestamp: Time(31),
                signature: sig(5),
            }),
            JournalRecord::AttributeRevocation(AttributeRevocation {
                issuer: "RA".into(),
                subject: subject(),
                group: GroupId::new("CG"),
                revoked_from: Time(33),
                timestamp: Time(34),
                signature: sig(6),
            }),
            JournalRecord::Crl(Crl {
                issuer: "RA".into(),
                sequence: 9,
                timestamp: Time(35),
                entries: vec![CrlEntry {
                    subject: subject(),
                    group: GroupId::new("CG"),
                    revoked_from: Time(36),
                }],
                signature: sig(7),
            }),
            JournalRecord::RequestCerts {
                identity: vec![IdentityCertificate {
                    issuer: "CA1".into(),
                    subject: "U1".into(),
                    subject_key: key(77),
                    validity: Validity {
                        begin: Time(0),
                        end: Time(100),
                    },
                    timestamp: Time(5),
                    signature: sig(8),
                }],
                threshold: vec![ThresholdAttributeCertificate {
                    issuer: "AA".into(),
                    subject: subject(),
                    group: GroupId::new("CG"),
                    validity: Validity {
                        begin: Time(0),
                        end: Time(100),
                    },
                    timestamp: Time(6),
                    signature: sig(9),
                }],
                attribute: vec![AttributeCertificate {
                    issuer: "AA".into(),
                    subject: "U2".into(),
                    subject_key: key(91),
                    group: GroupId::new("CG"),
                    validity: Validity {
                        begin: Time(0),
                        end: Time(100),
                    },
                    timestamp: Time(7),
                    signature: sig(10),
                }],
            },
            JournalRecord::Decision(DecisionRecord {
                at: Time(50),
                principals: vec!["U1".into(), "U2".into()],
                operation: Operation::new("write", "Object O"),
                granted: true,
                detail: String::new(),
                cached_checks: 2,
                retry_trace: Some("timeout@1".into()),
                axioms: 17,
                signature_checks: 5,
                unavailable: false,
                version_bump: true,
                replay_digest: Some("abc123".into()),
            }),
            JournalRecord::ObjectState {
                name: "Object O".into(),
                acl,
                version: 4,
                content: vec![9, 9],
            },
            JournalRecord::ReplaySeen(ReplayRecord {
                digest: "abc123".into(),
                granted: false,
                detail: Some("denied".into()),
                axioms: 0,
                signature_checks: 3,
                cached_signature_checks: 1,
                unavailable: true,
            }),
        ]
    }

    #[test]
    fn every_record_kind_roundtrips() {
        for record in sample_records() {
            let bytes = record.encode();
            let back = JournalRecord::decode(&bytes).expect("decode");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_skipped() {
        let bytes = sample_records()[0].encode();
        for cut in 0..bytes.len() {
            assert!(
                JournalRecord::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xFF;
        assert!(JournalRecord::decode(&flipped).is_err());
    }

    #[test]
    fn server_journal_retains_admissions_across_appends() {
        let mut j = ServerJournal::new(Box::new(MemStore::new()));
        let records = sample_records();
        for (i, record) in records.iter().enumerate() {
            j.append(Time(i as i64), record).expect("append");
        }
        let admitted: Vec<&JournalRecord> = j.admissions().iter().map(|(_, r)| r).collect();
        assert_eq!(admitted.len(), 4, "revocation, attr-rev, CRL, certs");
        assert!(admitted.iter().all(|r| r.is_admission()));
    }

    #[test]
    fn server_journal_replay_decodes_everything() {
        let store = MemStore::new();
        let records = sample_records();
        {
            let mut j = ServerJournal::new(Box::new(store.clone()));
            for record in &records {
                j.append(Time(0), record).expect("append");
            }
        }
        let mut j = ServerJournal::new(Box::new(store));
        let (decoded, replay) = j.replay().expect("replay");
        assert_eq!(decoded, records);
        assert!(replay.truncation.is_none());
    }
}
