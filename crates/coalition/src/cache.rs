//! Revocation-aware certificate-verification cache.
//!
//! The coalition server re-receives the *same* certificates on almost
//! every request: identity certificates travel with each joint request and
//! the standing threshold AC is presented unchanged until re-issued. Each
//! presentation costs an RSA verification (`sig^e mod N`). The
//! [`VerifyCache`] memoizes the verify-and-idealize step, keyed on the
//! certificate digest × verifying-key id, so a byte-identical certificate
//! checked once against the same trusted key is served from memory.
//!
//! Soundness of reuse: the key includes a collision-resistant digest of the
//! certificate body *and* signature, so a hit can only occur for a
//! byte-identical certificate whose signature already verified against the
//! same key — the cached idealized [`Message`] is exactly what
//! re-verification would produce. Revocation reasoning stays in the logic
//! engine; on top of that the cache is invalidated eagerly:
//!
//! * [`VerifyCache::invalidate_subject`] on an `IdentityRevocation`,
//! * [`VerifyCache::invalidate_group`] on an `AttributeRevocation` or any
//!   CRL entry,
//! * timestamp expiry — entries past their certificate's validity end are
//!   evicted on lookup.
//!
//! The cache is `Clone`-cheap (a shared handle) and thread-safe, so the
//! [`crate::server::CoalitionServer::verify_batch`] worker pool shares one
//! instance live across workers.

use std::collections::HashMap;
use std::sync::Arc;

use jaap_core::syntax::{Message, Time};
use jaap_crypto::sha256::{hex, Sha256};
use jaap_pki::attribute::{AttributeCertificate, ThresholdAttributeCertificate};
use jaap_pki::IdentityCertificate;
use parking_lot::Mutex;

/// Cache key: `(certificate digest, verifying key id)`.
pub type CacheKey = (String, String);

/// One memoized verification result.
#[derive(Debug, Clone)]
struct CachedEntry {
    /// The idealized message the verify step produced.
    message: Message,
    /// Validity end of the certificate; entries are evicted past this.
    expires: Time,
    /// Subject names for identity-revocation invalidation.
    subjects: Vec<String>,
    /// Granted group for attribute-revocation invalidation.
    group: Option<String>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<CacheKey, CachedEntry>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that fell through to a real verification.
    pub misses: u64,
    /// Entries dropped by revocations or expiry.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
}

/// A shared, thread-safe verification cache handle.
#[derive(Debug, Clone, Default)]
pub struct VerifyCache {
    inner: Arc<Mutex<Inner>>,
}

impl VerifyCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        VerifyCache::default()
    }

    /// Looks up a memoized idealization. Counts a hit or a miss; an entry
    /// whose certificate validity has expired is evicted and counts as a
    /// miss (and an invalidation).
    #[must_use]
    pub fn lookup(&self, key: &CacheKey, now: Time) -> Option<Message> {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.entries.get(key) {
            if now.0 > entry.expires.0 {
                inner.entries.remove(key);
                inner.invalidations += 1;
                inner.misses += 1;
                return None;
            }
            inner.hits += 1;
            return Some(inner.entries[key].message.clone());
        }
        inner.misses += 1;
        None
    }

    /// Memoizes a verified certificate's idealization.
    pub fn insert(
        &self,
        key: CacheKey,
        message: Message,
        expires: Time,
        subjects: Vec<String>,
        group: Option<String>,
    ) {
        self.inner.lock().entries.insert(
            key,
            CachedEntry {
                message,
                expires,
                subjects,
                group,
            },
        );
    }

    /// Drops every entry naming `subject` (identity revocation). Returns
    /// how many entries were dropped.
    pub fn invalidate_subject(&self, subject: &str) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|_, e| !e.subjects.iter().any(|s| s == subject));
        let dropped = before - inner.entries.len();
        inner.invalidations += dropped as u64;
        dropped
    }

    /// Drops every entry granting `group` (attribute revocation / CRL
    /// entry). Returns how many entries were dropped.
    pub fn invalidate_group(&self, group: &str) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|_, e| e.group.as_deref() != Some(group));
        let dropped = before - inner.entries.len();
        inner.invalidations += dropped as u64;
        dropped
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.invalidations += dropped;
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            entries: inner.entries.len(),
        }
    }
}

fn digest(domain: &str, body: &[u8], sig: &jaap_bigint::Nat) -> String {
    let mut h = Sha256::new();
    h.update(domain.as_bytes());
    h.update(body);
    h.update(b"|");
    h.update(&sig.to_bytes_be());
    hex(&h.finalize())
}

/// Digest of an identity certificate (body + signature).
#[must_use]
pub fn identity_digest(cert: &IdentityCertificate) -> String {
    let body = IdentityCertificate::body_bytes(
        &cert.issuer,
        &cert.subject,
        &cert.subject_key,
        cert.validity,
        cert.timestamp,
    );
    digest("jaap-cache-identity", &body, cert.signature.value())
}

/// Digest of a threshold attribute certificate (body + signature).
#[must_use]
pub fn threshold_digest(cert: &ThresholdAttributeCertificate) -> String {
    let body = ThresholdAttributeCertificate::body_bytes(
        &cert.issuer,
        &cert.subject,
        &cert.group,
        cert.validity,
        cert.timestamp,
    );
    digest("jaap-cache-threshold", &body, cert.signature.value())
}

/// Digest of a single-subject attribute certificate (body + signature).
#[must_use]
pub fn attribute_digest(cert: &AttributeCertificate) -> String {
    let body = AttributeCertificate::body_bytes(
        &cert.issuer,
        &cert.subject,
        &cert.subject_key,
        &cert.group,
        cert.validity,
        cert.timestamp,
    );
    digest("jaap-cache-attribute", &body, cert.signature.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_core::syntax::Message;

    fn msg(tag: &str) -> Message {
        Message::data(tag)
    }

    fn key(d: &str) -> CacheKey {
        (d.to_string(), "K".to_string())
    }

    #[test]
    fn hit_miss_and_expiry() {
        let cache = VerifyCache::new();
        assert_eq!(cache.lookup(&key("a"), Time(0)), None);
        cache.insert(key("a"), msg("m"), Time(10), vec!["U".into()], None);
        assert_eq!(cache.lookup(&key("a"), Time(5)), Some(msg("m")));
        // Past validity end: evicted, counted as miss + invalidation.
        assert_eq!(cache.lookup(&key("a"), Time(11)), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn subject_and_group_invalidation() {
        let cache = VerifyCache::new();
        cache.insert(key("id"), msg("id"), Time(100), vec!["U1".into()], None);
        cache.insert(
            key("ac"),
            msg("ac"),
            Time(100),
            vec!["U1".into(), "U2".into()],
            Some("G_write".into()),
        );
        assert_eq!(cache.invalidate_group("G_read"), 0);
        assert_eq!(cache.invalidate_group("G_write"), 1);
        assert_eq!(cache.invalidate_subject("U1"), 1);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn clones_share_state() {
        let cache = VerifyCache::new();
        let other = cache.clone();
        other.insert(key("a"), msg("m"), Time(10), vec![], None);
        assert_eq!(cache.lookup(&key("a"), Time(0)), Some(msg("m")));
        cache.clear();
        assert_eq!(other.stats().entries, 0);
    }
}
