//! Revocation-aware certificate-verification cache.
//!
//! The coalition server re-receives the *same* certificates on almost
//! every request: identity certificates travel with each joint request and
//! the standing threshold AC is presented unchanged until re-issued. Each
//! presentation costs an RSA verification (`sig^e mod N`). The
//! [`VerifyCache`] memoizes the verify-and-idealize step, keyed on the
//! certificate digest × verifying-key id, so a byte-identical certificate
//! checked once against the same trusted key is served from memory.
//!
//! Soundness of reuse: the key includes a collision-resistant digest of the
//! certificate body *and* signature, so a hit can only occur for a
//! byte-identical certificate whose signature already verified against the
//! same key — the cached idealized [`Message`] is exactly what
//! re-verification would produce. Revocation reasoning stays in the logic
//! engine; on top of that the cache is invalidated eagerly:
//!
//! * [`VerifyCache::invalidate_subject`] on an `IdentityRevocation`,
//! * [`VerifyCache::invalidate_group`] on an `AttributeRevocation` or any
//!   CRL entry,
//! * timestamp expiry — entries past their certificate's validity end are
//!   evicted on lookup.
//!
//! The cache is `Clone`-cheap (a shared handle) and thread-safe, so the
//! [`crate::server::CoalitionServer::verify_batch`] worker pool shares one
//! instance live across workers.
//!
//! **Bounded.** The cache holds at most its capacity
//! ([`DEFAULT_CACHE_CAPACITY`] unless overridden via
//! [`VerifyCache::with_capacity`]); inserting past the bound evicts the
//! oldest entries by insertion order. Eviction is sound for the same reason
//! memoization is: an evicted certificate is simply re-verified on its next
//! presentation, so decisions never change — only the hit/miss split does.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use jaap_core::syntax::{Message, Time};
use jaap_crypto::sha256::{hex, Sha256};
use jaap_obs::{Counter, MetricsRegistry};
use jaap_pki::attribute::{AttributeCertificate, ThresholdAttributeCertificate};
use jaap_pki::IdentityCertificate;
use parking_lot::Mutex;

/// Default bound on live cache entries. Generous for the coalition
/// scenarios (a request presents a handful of certificates), small enough
/// that a long-running server cannot grow without bound on a stream of
/// distinct certificates.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Cache key: `(certificate digest, verifying key id)`.
pub type CacheKey = (String, String);

/// One memoized verification result.
#[derive(Debug, Clone)]
struct CachedEntry {
    /// The idealized message the verify step produced.
    message: Message,
    /// Validity end of the certificate; entries are evicted past this.
    expires: Time,
    /// Subject names for identity-revocation invalidation.
    subjects: Vec<String>,
    /// Granted group for attribute-revocation invalidation.
    group: Option<String>,
}

/// Registry handles, pre-resolved once when a registry is attached so the
/// hot path only touches atomics.
#[derive(Debug, Clone)]
struct CacheCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    invalidations: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl CacheCounters {
    fn resolve(registry: &MetricsRegistry) -> Self {
        CacheCounters {
            hits: registry.counter("server.cache.hits"),
            misses: registry.counter("server.cache.misses"),
            invalidations: registry.counter("server.cache.invalidations"),
            evictions: registry.counter("server.cache.evictions"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    entries: HashMap<CacheKey, CachedEntry>,
    /// Keys in insertion order, for capacity eviction. May hold keys whose
    /// entries were already invalidated; those are skipped when popped.
    order: VecDeque<CacheKey>,
    /// Maximum live entries; `None` means unbounded (comparison baseline).
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
    metrics: Option<CacheCounters>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: Some(DEFAULT_CACHE_CAPACITY),
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
            metrics: None,
        }
    }
}

impl Inner {
    /// Pops insertion-order keys until the live-entry count fits the
    /// capacity. Stale keys (already invalidated) are skipped uncounted.
    fn enforce_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.entries.len() > cap {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if self.entries.remove(&old).is_some() {
                self.evictions += 1;
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                }
            }
        }
    }
}

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that fell through to a real verification.
    pub misses: u64,
    /// Entries dropped by revocations or expiry.
    pub invalidations: u64,
    /// Entries dropped by the capacity bound (oldest-first).
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
}

/// A shared, thread-safe verification cache handle.
#[derive(Debug, Clone, Default)]
pub struct VerifyCache {
    inner: Arc<Mutex<Inner>>,
}

impl VerifyCache {
    /// Creates an empty cache bounded at [`DEFAULT_CACHE_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        VerifyCache::default()
    }

    /// Creates an empty cache bounded at `capacity` live entries (`None`
    /// for the unbounded comparison baseline).
    #[must_use]
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        let cache = VerifyCache::default();
        cache.inner.lock().capacity = capacity;
        cache
    }

    /// The configured capacity (`None` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().capacity
    }

    /// Re-bounds the cache, evicting oldest entries immediately if the new
    /// capacity is already exceeded.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity;
        inner.enforce_capacity();
    }

    /// Mirrors the cache counters into `registry` (pre-resolved handles:
    /// `server.cache.{hits,misses,invalidations,evictions}`). Pass `None`
    /// to detach.
    pub fn set_metrics(&self, registry: Option<&MetricsRegistry>) {
        self.inner.lock().metrics = registry.map(CacheCounters::resolve);
    }

    /// Looks up a memoized idealization. Counts a hit or a miss; an entry
    /// whose certificate validity has expired is evicted and counts as a
    /// miss (and an invalidation).
    #[must_use]
    pub fn lookup(&self, key: &CacheKey, now: Time) -> Option<Message> {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.entries.get(key) {
            if now.0 > entry.expires.0 {
                inner.entries.remove(key);
                inner.invalidations += 1;
                inner.misses += 1;
                if let Some(m) = &inner.metrics {
                    m.invalidations.inc();
                    m.misses.inc();
                }
                return None;
            }
            inner.hits += 1;
            if let Some(m) = &inner.metrics {
                m.hits.inc();
            }
            return Some(inner.entries[key].message.clone());
        }
        inner.misses += 1;
        if let Some(m) = &inner.metrics {
            m.misses.inc();
        }
        None
    }

    /// Memoizes a verified certificate's idealization. Past the capacity
    /// bound, the oldest entries (by first insertion) are evicted to make
    /// room.
    pub fn insert(
        &self,
        key: CacheKey,
        message: Message,
        expires: Time,
        subjects: Vec<String>,
        group: Option<String>,
    ) {
        let mut inner = self.inner.lock();
        let fresh = inner
            .entries
            .insert(
                key.clone(),
                CachedEntry {
                    message,
                    expires,
                    subjects,
                    group,
                },
            )
            .is_none();
        if fresh {
            // Re-inserting an existing key keeps its original order slot;
            // only first insertions enter the queue, so it never holds
            // duplicate live keys.
            inner.order.push_back(key);
        }
        inner.enforce_capacity();
    }

    /// Drops every entry naming `subject` (identity revocation). Returns
    /// how many entries were dropped.
    pub fn invalidate_subject(&self, subject: &str) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|_, e| !e.subjects.iter().any(|s| s == subject));
        let dropped = before - inner.entries.len();
        inner.invalidations += dropped as u64;
        if let Some(m) = &inner.metrics {
            m.invalidations.add(dropped as u64);
        }
        dropped
    }

    /// Drops every entry granting `group` (attribute revocation / CRL
    /// entry). Returns how many entries were dropped.
    pub fn invalidate_group(&self, group: &str) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|_, e| e.group.as_deref() != Some(group));
        let dropped = before - inner.entries.len();
        inner.invalidations += dropped as u64;
        if let Some(m) = &inner.metrics {
            m.invalidations.add(dropped as u64);
        }
        dropped
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.order.clear();
        inner.invalidations += dropped;
        if let Some(m) = &inner.metrics {
            m.invalidations.add(dropped);
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            evictions: inner.evictions,
            entries: inner.entries.len(),
        }
    }
}

fn digest(domain: &str, body: &[u8], sig: &jaap_bigint::Nat) -> String {
    let mut h = Sha256::new();
    h.update(domain.as_bytes());
    h.update(body);
    h.update(b"|");
    h.update(&sig.to_bytes_be());
    hex(&h.finalize())
}

/// Digest of an identity certificate (body + signature).
#[must_use]
pub fn identity_digest(cert: &IdentityCertificate) -> String {
    let body = IdentityCertificate::body_bytes(
        &cert.issuer,
        &cert.subject,
        &cert.subject_key,
        cert.validity,
        cert.timestamp,
    );
    digest("jaap-cache-identity", &body, cert.signature.value())
}

/// Digest of a threshold attribute certificate (body + signature).
#[must_use]
pub fn threshold_digest(cert: &ThresholdAttributeCertificate) -> String {
    let body = ThresholdAttributeCertificate::body_bytes(
        &cert.issuer,
        &cert.subject,
        &cert.group,
        cert.validity,
        cert.timestamp,
    );
    digest("jaap-cache-threshold", &body, cert.signature.value())
}

/// Digest of a single-subject attribute certificate (body + signature).
#[must_use]
pub fn attribute_digest(cert: &AttributeCertificate) -> String {
    let body = AttributeCertificate::body_bytes(
        &cert.issuer,
        &cert.subject,
        &cert.subject_key,
        &cert.group,
        cert.validity,
        cert.timestamp,
    );
    digest("jaap-cache-attribute", &body, cert.signature.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_core::syntax::Message;

    fn msg(tag: &str) -> Message {
        Message::data(tag)
    }

    fn key(d: &str) -> CacheKey {
        (d.to_string(), "K".to_string())
    }

    #[test]
    fn hit_miss_and_expiry() {
        let cache = VerifyCache::new();
        assert_eq!(cache.lookup(&key("a"), Time(0)), None);
        cache.insert(key("a"), msg("m"), Time(10), vec!["U".into()], None);
        assert_eq!(cache.lookup(&key("a"), Time(5)), Some(msg("m")));
        // Past validity end: evicted, counted as miss + invalidation.
        assert_eq!(cache.lookup(&key("a"), Time(11)), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn subject_and_group_invalidation() {
        let cache = VerifyCache::new();
        cache.insert(key("id"), msg("id"), Time(100), vec!["U1".into()], None);
        cache.insert(
            key("ac"),
            msg("ac"),
            Time(100),
            vec!["U1".into(), "U2".into()],
            Some("G_write".into()),
        );
        assert_eq!(cache.invalidate_group("G_read"), 0);
        assert_eq!(cache.invalidate_group("G_write"), 1);
        assert_eq!(cache.invalidate_subject("U1"), 1);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache = VerifyCache::with_capacity(Some(2));
        cache.insert(key("a"), msg("a"), Time(100), vec![], None);
        cache.insert(key("b"), msg("b"), Time(100), vec![], None);
        cache.insert(key("c"), msg("c"), Time(100), vec![], None);
        // "a" (oldest) was evicted; "b" and "c" survive.
        assert_eq!(cache.lookup(&key("a"), Time(0)), None);
        assert_eq!(cache.lookup(&key("b"), Time(0)), Some(msg("b")));
        assert_eq!(cache.lookup(&key("c"), Time(0)), Some(msg("c")));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn reinsert_keeps_original_order_slot() {
        let cache = VerifyCache::with_capacity(Some(2));
        cache.insert(key("a"), msg("a"), Time(100), vec![], None);
        cache.insert(key("b"), msg("b"), Time(100), vec![], None);
        // Refreshing "a" does not make it newest: it keeps its original
        // insertion slot, so it is still the first to go.
        cache.insert(key("a"), msg("a2"), Time(100), vec![], None);
        cache.insert(key("c"), msg("c"), Time(100), vec![], None);
        assert_eq!(cache.lookup(&key("a"), Time(0)), None);
        assert_eq!(cache.lookup(&key("b"), Time(0)), Some(msg("b")));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn stale_order_keys_are_skipped_not_counted() {
        let cache = VerifyCache::with_capacity(Some(2));
        cache.insert(key("a"), msg("a"), Time(100), vec!["U".into()], None);
        cache.insert(key("b"), msg("b"), Time(100), vec![], None);
        // Invalidate "a" so its order-queue key goes stale.
        assert_eq!(cache.invalidate_subject("U"), 1);
        cache.insert(key("c"), msg("c"), Time(100), vec![], None);
        cache.insert(key("d"), msg("d"), Time(100), vec![], None);
        // The stale "a" key was skipped; "b" was the real eviction.
        assert_eq!(cache.lookup(&key("b"), Time(0)), None);
        assert_eq!(cache.lookup(&key("c"), Time(0)), Some(msg("c")));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn shrinking_capacity_trims_immediately() {
        let cache = VerifyCache::with_capacity(None);
        for i in 0..10 {
            cache.insert(key(&format!("k{i}")), msg("m"), Time(100), vec![], None);
        }
        assert_eq!(cache.stats().entries, 10);
        cache.set_capacity(Some(3));
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 7);
        assert_eq!(cache.lookup(&key("k9"), Time(0)), Some(msg("m")));
    }

    #[test]
    fn attached_registry_mirrors_counters() {
        let registry = jaap_obs::MetricsRegistry::new();
        let cache = VerifyCache::with_capacity(Some(1));
        cache.set_metrics(Some(&registry));
        cache.insert(key("a"), msg("a"), Time(100), vec![], None);
        assert_eq!(cache.lookup(&key("a"), Time(0)), Some(msg("a")));
        assert_eq!(cache.lookup(&key("zzz"), Time(0)), None);
        cache.insert(key("b"), msg("b"), Time(100), vec![], None); // evicts "a"
        assert_eq!(registry.counter_value("server.cache.hits"), Some(1));
        assert_eq!(registry.counter_value("server.cache.misses"), Some(1));
        assert_eq!(registry.counter_value("server.cache.evictions"), Some(1));
    }

    #[test]
    fn clones_share_state() {
        let cache = VerifyCache::new();
        let other = cache.clone();
        other.insert(key("a"), msg("m"), Time(10), vec![], None);
        assert_eq!(cache.lookup(&key("a"), Time(0)), Some(msg("m")));
        cache.clear();
        assert_eq!(other.stats().entries, 0);
    }
}
