//! m-of-n availability analysis (§3.3, experiment E6).
//!
//! > "Since only m out of the total n domains need to be on-line for
//! > application of joint signatures, threshold sharing increases domain
//! > availability as up to (n-m) domains can be down for maintenance or
//! > error recovery."
//!
//! [`analytic`] computes the binomial probability that a joint signature
//! can be formed; [`monte_carlo`] estimates the same by sampling; and
//! [`sweep`] produces the table benchmarked in E6.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// P[at least `m` of `n` domains are up], each up independently with
/// probability `p_up`.
///
/// ```
/// use jaap_coalition::availability::analytic;
///
/// // §3.3: a 2-of-3 threshold beats requiring all three domains.
/// assert!(analytic(3, 2, 0.9) > analytic(3, 3, 0.9));
/// assert!((analytic(3, 3, 0.9) - 0.729).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics unless `1 <= m <= n` and `0 <= p_up <= 1`.
#[must_use]
pub fn analytic(n: usize, m: usize, p_up: f64) -> f64 {
    assert!(m >= 1 && m <= n, "need 1 <= m <= n");
    assert!((0.0..=1.0).contains(&p_up), "p_up must be a probability");
    (m..=n).map(|k| binom_pmf(n, k, p_up)).sum()
}

fn binom_pmf(n: usize, k: usize, p: f64) -> f64 {
    binom_coeff(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

fn binom_coeff(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Monte-Carlo estimate of the same probability.
///
/// # Panics
///
/// Panics on invalid parameters (see [`analytic`]) or `trials == 0`.
#[must_use]
pub fn monte_carlo(n: usize, m: usize, p_up: f64, trials: u64, seed: u64) -> f64 {
    assert!(m >= 1 && m <= n, "need 1 <= m <= n");
    assert!(trials > 0, "need at least one trial");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok = 0u64;
    for _ in 0..trials {
        let up = (0..n)
            .filter(|_| {
                let roll = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                roll < p_up
            })
            .count();
        if up >= m {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

/// Empirical availability of the *actual* m-of-n signing session
/// ([`jaap_crypto::session::SigningSession`]): per trial, each domain is
/// independently up with probability `p_up`, the down domains are modeled
/// as crash-stop parties in the fault plan, and the first live domain
/// drives a real threshold signing session with failover. Returns the
/// fraction of trials that produced a verifying signature.
///
/// This is the executable cross-check of [`analytic`]: the session layer's
/// failover must make the two agree (within Monte-Carlo error), because a
/// session is *designed* to succeed exactly when ≥ `m` domains are live.
///
/// # Panics
///
/// Panics unless `2 <= m <= n` (the threshold scheme's own floor) or when
/// `trials == 0`, or on key-dealing failure.
#[must_use]
pub fn networked(n: usize, m: usize, p_up: f64, trials: u64, seed: u64) -> f64 {
    use jaap_crypto::session::{SessionConfig, SigningSession};
    use jaap_crypto::threshold::ThresholdKey;
    use jaap_net::FaultPlan;
    use std::time::Duration;

    assert!(m >= 2 && m <= n, "need 2 <= m <= n");
    assert!(trials > 0, "need at least one trial");
    let mut rng = StdRng::seed_from_u64(seed);
    let kp = jaap_crypto::rsa::RsaKeyPair::generate(&mut rng, 192).expect("keygen");
    let (public, shares) = ThresholdKey::deal(&mut rng, &kp, m, n).expect("deal");
    // Tight rounds: a down domain only costs one short timeout per trial.
    let config = SessionConfig {
        round_timeout: Duration::from_millis(30),
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
    };
    let mut ok = 0u64;
    for trial in 0..trials {
        let up: Vec<bool> = (0..n)
            .map(|_| {
                let roll = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                roll < p_up
            })
            .collect();
        let Some(requestor) = up.iter().position(|&u| u) else {
            continue; // nobody is up: definitionally unavailable
        };
        let mut faults = FaultPlan::seeded(seed ^ trial);
        for (i, &alive) in up.iter().enumerate() {
            if !alive {
                faults = faults.with_crash(i, 0);
            }
        }
        let outcome =
            SigningSession::sign_threshold(&public, &shares, requestor, b"E6", faults, &config);
        if let Ok((sig, _, _)) = outcome {
            if public.verify(b"E6", &sig) {
                ok += 1;
            }
        }
    }
    ok as f64 / trials as f64
}

/// One row of the availability table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityPoint {
    /// Total domains.
    pub n: usize,
    /// Signing threshold.
    pub m: usize,
    /// Per-domain availability.
    pub p_up: f64,
    /// Analytic joint-signature availability.
    pub analytic: f64,
    /// Monte-Carlo estimate.
    pub monte_carlo: f64,
}

/// Sweeps `(n, m)` pairs over per-domain availabilities, comparing n-of-n
/// (the paper's base scheme) to majority thresholds.
#[must_use]
pub fn sweep(ns: &[usize], p_ups: &[f64], trials: u64, seed: u64) -> Vec<AvailabilityPoint> {
    let mut out = Vec::new();
    for &n in ns {
        let majority = n / 2 + 1;
        for &m in &[n, majority] {
            for &p_up in p_ups {
                out.push(AvailabilityPoint {
                    n,
                    m,
                    p_up,
                    analytic: analytic(n, m, p_up),
                    monte_carlo: monte_carlo(n, m, p_up, trials, seed ^ (n as u64) << 8 | m as u64),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_probabilities() {
        assert!((analytic(3, 3, 1.0) - 1.0).abs() < 1e-12);
        assert!(analytic(3, 3, 0.0).abs() < 1e-12);
        assert!((analytic(3, 1, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_binomial_values() {
        // P[all 3 up | p=0.9] = 0.729
        assert!((analytic(3, 3, 0.9) - 0.729).abs() < 1e-12);
        // P[>=2 of 3 | p=0.9] = 0.972
        assert!((analytic(3, 2, 0.9) - 0.972).abs() < 1e-12);
        // P[>=1 of 3 | p=0.5] = 0.875
        assert!((analytic(3, 1, 0.5) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn threshold_dominates_n_of_n() {
        // The paper's §3.3 claim: m-of-n availability ≥ n-of-n.
        for n in [3usize, 5, 7, 9] {
            for p in [0.5, 0.9, 0.99] {
                let m = n / 2 + 1;
                assert!(
                    analytic(n, m, p) >= analytic(n, n, p),
                    "m-of-n must not lose to n-of-n"
                );
            }
        }
    }

    #[test]
    fn n_of_n_availability_degrades_with_n() {
        // Adding domains *hurts* availability under n-of-n — the cost of
        // requiring everyone.
        let p = 0.95;
        assert!(analytic(3, 3, p) > analytic(5, 5, p));
        assert!(analytic(5, 5, p) > analytic(9, 9, p));
    }

    #[test]
    fn monte_carlo_close_to_analytic() {
        for (n, m, p) in [(3, 2, 0.9), (5, 3, 0.8), (7, 7, 0.95)] {
            let a = analytic(n, m, p);
            let mc = monte_carlo(n, m, p, 60_000, 42);
            assert!(
                (a - mc).abs() < 0.01,
                "n={n} m={m} p={p}: analytic {a}, mc {mc}"
            );
        }
    }

    #[test]
    fn sweep_shape() {
        let points = sweep(&[3, 5], &[0.9, 0.99], 2_000, 7);
        // 2 n-values × 2 m-values × 2 p-values.
        assert_eq!(points.len(), 8);
        assert!(points.iter().all(|p| (0.0..=1.0).contains(&p.analytic)));
    }

    #[test]
    #[should_panic(expected = "1 <= m <= n")]
    fn zero_threshold_panics() {
        let _ = analytic(3, 0, 0.5);
    }
}
