//! A persistent worker pool for the decision front-end.
//!
//! [`CoalitionServer::verify_batch`](crate::server::CoalitionServer::verify_batch)
//! used to spawn a fresh `std::thread::scope` per call; under a sustained
//! request stream that pays thread creation and teardown on every batch.
//! The pool keeps a fixed set of workers (sized by
//! [`std::thread::available_parallelism`] for the shared
//! [`WorkerPool::global`] instance) alive for the process lifetime and
//! feeds them boxed jobs through a shared channel.
//!
//! The only public entry point beyond construction is
//! [`WorkerPool::run_indexed`], a *scoped* fan-out: it dispatches a borrowed
//! closure over the indices `0..n` and does not return until every worker
//! that saw the closure has finished with it. That barrier is what makes the
//! (internal) lifetime erasure sound — the borrow outlives every use.
//!
//! Nesting `run_indexed` inside a pool job is not supported: a job that
//! blocks on the pool it runs on can starve the pool. Fan out once, at the
//! outermost layer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    jobs: Sender<Job>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (jobs, rx) = crossbeam_channel::unbounded::<Job>();
        // The vendored channel's receiver is single-consumer; workers share
        // it through a mutex. The lock is held only while dequeuing, so job
        // *execution* is fully parallel — pickup is serialized, which is
        // harmless (jobs are coarse: a whole crypto verification or more).
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..threads {
            let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("jaap-pool-{i}"))
                .spawn(move || loop {
                    let job = rx.lock().recv();
                    match job {
                        Ok(job) => job(),
                        // All senders dropped: the pool is gone, retire.
                        Err(_) => break,
                    }
                })
                .expect("spawn pool worker");
        }
        WorkerPool { jobs, threads }
    }

    /// The process-wide pool, created on first use with one worker per
    /// available core.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            WorkerPool::new(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            )
        })
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..n` across at most `max_workers` pool
    /// workers (capped by the pool size and by `n`), returning the results
    /// in index order. Blocks until every dispatched worker is done with
    /// `f`, so `f` may freely borrow from the caller's stack.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) any panic that escaped `f` on a worker.
    pub fn run_indexed<T, F>(&self, n: usize, max_workers: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(max_workers.max(1)).min(n);
        if workers == 1 {
            // Nothing to fan out: run inline, skipping dispatch overhead
            // (and keeping single-worker callers deterministic and
            // pool-independent).
            return (0..n).map(f).collect();
        }

        let next = Arc::new(AtomicUsize::new(0));
        let (res_tx, res_rx) = crossbeam_channel::unbounded::<(usize, T)>();
        let (done_tx, done_rx) = crossbeam_channel::unbounded::<bool>();

        // SAFETY (lifetime erasure): the closure reference is transmuted to
        // `'static` so it can cross into the boxed `'static` jobs. Every
        // dispatched job signals `done_tx` when it stops touching `f`
        // (normally or via `catch_unwind`), and this function does not
        // return before it has received exactly `workers` such signals, so
        // no worker can observe `f` (or anything it borrows) after this
        // frame unwinds.
        let f_ref: &(dyn Fn(usize) -> T + Sync) = &f;
        let f_static: &'static (dyn Fn(usize) -> T + Sync) = unsafe { std::mem::transmute(f_ref) };

        for _ in 0..workers {
            let next = Arc::clone(&next);
            let res_tx = res_tx.clone();
            let done_tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let ok = catch_unwind(AssertUnwindSafe(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f_static(i);
                    if res_tx.send((i, out)).is_err() {
                        break;
                    }
                }))
                .is_ok();
                let _ = done_tx.send(ok);
            });
            assert!(self.jobs.send(job).is_ok(), "pool workers outlive the pool");
        }
        drop(res_tx);
        drop(done_tx);

        // The barrier: wait for every dispatched worker before touching the
        // results (and before `f` may be dropped).
        let mut panicked = false;
        for _ in 0..workers {
            match done_rx.recv() {
                Ok(ok) => panicked |= !ok,
                Err(_) => panicked = true,
            }
        }
        let mut results: Vec<Option<T>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        while let Ok((i, out)) = res_rx.try_recv() {
            results[i] = Some(out);
        }
        assert!(!panicked, "a worker-pool job panicked");
        results
            .into_iter()
            .map(|slot| slot.expect("every index produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_returns_results_in_order() {
        let pool = WorkerPool::new(4);
        let base = 7usize;
        // Borrows from the caller's stack — the scoped barrier makes this
        // sound.
        let out = pool.run_indexed(100, 4, |i| base + i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, base + i * 2);
        }
    }

    #[test]
    fn run_indexed_caps_workers_and_handles_tiny_inputs() {
        let pool = WorkerPool::new(2);
        assert!(pool.run_indexed(0, 8, |i| i).is_empty());
        assert_eq!(pool.run_indexed(1, 8, |i| i), vec![0]);
        assert_eq!(pool.run_indexed(3, 1, |i| i * i), vec![0, 1, 4]);
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let out = pool.run_indexed(17, 3, move |i| i + round);
            assert_eq!(out[16], 16 + round);
        }
    }

    #[test]
    fn worker_panic_is_propagated() {
        let pool = WorkerPool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(8, 2, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(res.is_err());
        // The pool itself stays usable afterwards.
        assert_eq!(pool.run_indexed(2, 2, |i| i), vec![0, 1]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }
}
